//! The write-back (token) client cache.

use std::collections::HashMap;

use lease_clock::{Dur, Time};
use lease_core::{ClientId, OpId, ReqId, Resource, Version};

use crate::msg::{Mode, Reservation, WbToClient, WbToServer};

/// Client configuration.
#[derive(Debug, Clone, Copy)]
pub struct WbClientConfig {
    /// Clock allowance ε subtracted from every term.
    pub epsilon: Dur,
    /// How often dirty entries are written back in the background.
    pub flush_interval: Dur,
}

impl Default for WbClientConfig {
    fn default() -> WbClientConfig {
        WbClientConfig {
            epsilon: Dur::from_millis(100),
            flush_interval: Dur::from_secs(2),
        }
    }
}

/// Client timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WbClientTimer {
    /// Periodic background flush of dirty entries.
    Flush,
}

/// Inputs to the client.
#[derive(Debug, Clone)]
pub enum WbInput<R, D> {
    /// The application reads.
    Read {
        /// Completion id.
        op: OpId,
        /// The resource.
        resource: R,
    },
    /// The application writes (buffered locally under a write lease).
    Write {
        /// Completion id.
        op: OpId,
        /// The resource.
        resource: R,
        /// New contents.
        data: D,
    },
    /// A server message.
    Msg(WbToClient<R, D>),
    /// A timer fired.
    Timer(WbClientTimer),
}

/// The outcome of a completed operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WbOutcome<D> {
    /// Read data at a version; `local` = served without server contact.
    Read {
        /// The data.
        data: D,
        /// Its version.
        version: Version,
        /// Served from the local cache.
        local: bool,
    },
    /// A write was applied (locally, under the token); `local` says
    /// whether it needed server contact first.
    Write {
        /// The locally-assigned version.
        version: Version,
        /// Applied without server contact.
        local: bool,
    },
}

/// Effects the harness applies.
#[derive(Debug, Clone)]
pub enum WbClientOutput<R, D> {
    /// Send to the server.
    Send(WbToServer<R, D>),
    /// Arm a timer.
    SetTimer {
        /// Fire time.
        at: Time,
        /// Which timer.
        timer: WbClientTimer,
    },
    /// An operation completed.
    Done {
        /// The operation.
        op: OpId,
        /// Its result (None = resource unknown).
        result: Option<WbOutcome<D>>,
    },
    /// A buffered write became visible (the history's Commit event): with
    /// an exclusive token, the local apply is the linearization point.
    LocalCommit {
        /// The resource.
        resource: R,
        /// The locally-assigned version.
        version: Version,
    },
    /// Buffered writes were lost (stale reservation on flush): the
    /// versions in `(last_durable, last_lost]` are gone.
    Lost {
        /// The resource.
        resource: R,
        /// The last surviving (written back) version.
        last_durable: Version,
        /// The highest buffered version destroyed.
        last_lost: Version,
    },
}

#[derive(Debug, Clone)]
struct WbEntry<D> {
    data: D,
    version: Version,
    expiry: Time,
    mode: Mode,
    dirty: bool,
    resv: Option<Resv>,
    /// Highest version known durable at the server.
    durable: Version,
    /// A flush is in flight (do not double-send).
    flushing: bool,
}

#[derive(Debug, Clone, Copy)]
struct Resv {
    id: u64,
    next: Version,
    last: Version,
}

#[derive(Debug, Clone, Copy)]
struct FlushRecord<R> {
    resource: R,
    version: Version,
    durable_before: Version,
}

#[derive(Debug, Clone)]
enum PendingAcq<D> {
    /// Ops waiting for a grant; writes carry their payloads.
    Waiting {
        reads: Vec<OpId>,
        writes: Vec<(OpId, D)>,
        first_sent: Time,
    },
}

/// Per-client counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct WbCounters {
    /// Reads served locally.
    pub local_reads: u64,
    /// Writes applied locally without server contact.
    pub local_writes: u64,
    /// Recalls honoured.
    pub recalls: u64,
    /// Background flushes sent.
    pub flushes: u64,
    /// Flushes rejected (lost writes).
    pub lost_flushes: u64,
}

/// The token client cache.
pub struct WbClient<R: Resource, D: Clone> {
    id: ClientId,
    cfg: WbClientConfig,
    entries: HashMap<R, WbEntry<D>>,
    acquires: HashMap<ReqId, (R, Mode, PendingAcq<D>)>,
    /// One outstanding acquire per resource.
    acq_inflight: HashMap<R, ReqId>,
    flush_reqs: HashMap<ReqId, FlushRecord<R>>,
    next_req: u64,
    /// Counters for experiments.
    pub counters: WbCounters,
}

impl<R: Resource, D: Clone> WbClient<R, D> {
    /// Creates a client cache.
    pub fn new(id: ClientId, cfg: WbClientConfig) -> WbClient<R, D> {
        WbClient {
            id,
            cfg,
            entries: HashMap::new(),
            acquires: HashMap::new(),
            acq_inflight: HashMap::new(),
            flush_reqs: HashMap::new(),
            next_req: 0,
            counters: WbCounters::default(),
        }
    }

    /// This cache's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Arms the periodic flush; call once at startup.
    pub fn start(&mut self, now: Time) -> Vec<WbClientOutput<R, D>> {
        vec![WbClientOutput::SetTimer {
            at: now + self.cfg.flush_interval,
            timer: WbClientTimer::Flush,
        }]
    }

    /// The dirty (not yet durable) state, for crash accounting: each entry
    /// is `(resource, last_durable, last_buffered)`.
    pub fn dirty_state(&self) -> Vec<(R, Version, Version)> {
        self.entries
            .iter()
            .filter(|(_, e)| e.dirty)
            .map(|(r, e)| (*r, e.durable, e.version))
            .collect()
    }

    /// Wipes all volatile state (crash). The harness should first record
    /// [`WbClient::dirty_state`] as Discard history events.
    pub fn crash(&mut self) {
        self.entries.clear();
        self.acquires.clear();
        self.acq_inflight.clear();
        self.flush_reqs.clear();
    }

    fn fresh_req(&mut self) -> ReqId {
        let r = ReqId(self.next_req);
        self.next_req += 1;
        r
    }

    fn valid(&self, resource: R, now: Time) -> Option<&WbEntry<D>> {
        self.entries.get(&resource).filter(|e| e.expiry > now)
    }

    /// Handles one input.
    pub fn handle(&mut self, now: Time, input: WbInput<R, D>) -> Vec<WbClientOutput<R, D>> {
        let mut out = Vec::new();
        match input {
            WbInput::Read { op, resource } => self.on_read(now, op, resource, &mut out),
            WbInput::Write { op, resource, data } => {
                self.on_write(now, op, resource, data, &mut out)
            }
            WbInput::Msg(m) => self.on_msg(now, m, &mut out),
            WbInput::Timer(WbClientTimer::Flush) => {
                self.flush_dirty(now, &mut out);
                out.push(WbClientOutput::SetTimer {
                    at: now + self.cfg.flush_interval,
                    timer: WbClientTimer::Flush,
                });
            }
        }
        out
    }

    fn on_read(&mut self, now: Time, op: OpId, resource: R, out: &mut Vec<WbClientOutput<R, D>>) {
        if let Some(e) = self.valid(resource, now) {
            let (data, version) = (e.data.clone(), e.version);
            self.counters.local_reads += 1;
            out.push(WbClientOutput::Done {
                op,
                result: Some(WbOutcome::Read {
                    data,
                    version,
                    local: true,
                }),
            });
            return;
        }
        self.enqueue(now, resource, Mode::Read, Some(op), None, out);
    }

    fn on_write(
        &mut self,
        now: Time,
        op: OpId,
        resource: R,
        data: D,
        out: &mut Vec<WbClientOutput<R, D>>,
    ) {
        if let Some(e) = self.entries.get_mut(&resource) {
            if e.expiry > now && e.mode == Mode::Write {
                if let Some(resv) = e.resv.as_mut() {
                    if resv.next <= resv.last {
                        // The token fast path: apply locally, no round trip.
                        let version = resv.next;
                        resv.next = Version(resv.next.0 + 1);
                        e.data = data;
                        e.version = version;
                        e.dirty = true;
                        self.counters.local_writes += 1;
                        out.push(WbClientOutput::LocalCommit { resource, version });
                        out.push(WbClientOutput::Done {
                            op,
                            result: Some(WbOutcome::Write {
                                version,
                                local: true,
                            }),
                        });
                        return;
                    }
                }
            }
        }
        self.enqueue(now, resource, Mode::Write, None, Some((op, data)), out);
    }

    /// Queues an op behind (or starts) an acquire for `resource`.
    fn enqueue(
        &mut self,
        now: Time,
        resource: R,
        mode: Mode,
        read: Option<OpId>,
        write: Option<(OpId, D)>,
        out: &mut Vec<WbClientOutput<R, D>>,
    ) {
        if let Some(req) = self.acq_inflight.get(&resource) {
            if let Some((_, pending_mode, PendingAcq::Waiting { reads, writes, .. })) =
                self.acquires.get_mut(req)
            {
                // A write needs Write mode; upgrade the pending request's
                // mode marker so the grant handler re-acquires if needed.
                let _ = pending_mode;
                if let Some(op) = read {
                    reads.push(op);
                }
                if let Some(w) = write {
                    writes.push(w);
                }
                return;
            }
        }
        // A dirty tail under a lapsed token is flushed *before* the new
        // acquire: the server still honours our reservation unless someone
        // else has taken the resource over (in which case the flush
        // bounces and the writes are genuinely lost).
        if let Some(e) = self.entries.get_mut(&resource) {
            if e.dirty && !e.flushing && e.mode == Mode::Write {
                let flush_req = ReqId(self.next_req);
                self.next_req += 1;
                e.flushing = true;
                self.counters.flushes += 1;
                self.flush_reqs.insert(
                    flush_req,
                    FlushRecord {
                        resource,
                        version: e.version,
                        durable_before: e.durable,
                    },
                );
                out.push(WbClientOutput::Send(WbToServer::WriteBack {
                    req: flush_req,
                    resource,
                    reservation: e.resv.expect("write lease").id,
                    version: e.version,
                    data: e.data.clone(),
                }));
            }
        }
        let req = self.fresh_req();
        let mode = if write.is_some() { Mode::Write } else { mode };
        let cached = self.entries.get(&resource).map(|e| e.version);
        self.acq_inflight.insert(resource, req);
        self.acquires.insert(
            req,
            (
                resource,
                mode,
                PendingAcq::Waiting {
                    reads: read.into_iter().collect(),
                    writes: write.into_iter().collect(),
                    first_sent: now,
                },
            ),
        );
        out.push(WbClientOutput::Send(WbToServer::Acquire {
            req,
            resource,
            mode,
            cached,
        }));
    }

    fn on_msg(&mut self, now: Time, msg: WbToClient<R, D>, out: &mut Vec<WbClientOutput<R, D>>) {
        match msg {
            WbToClient::Granted {
                req,
                resource,
                mode,
                version,
                data,
                term,
                reservation,
            } => {
                let Some((
                    _,
                    _,
                    PendingAcq::Waiting {
                        reads,
                        writes,
                        first_sent,
                    },
                )) = self.acquires.remove(&req)
                else {
                    return;
                };
                self.acq_inflight.remove(&resource);
                let expiry = first_sent + term.saturating_sub(self.cfg.epsilon);
                let data = match data {
                    Some(d) => d,
                    None => match self.entries.get(&resource) {
                        Some(e) => e.data.clone(),
                        None => return, // Cannot happen: we sent `cached`.
                    },
                };
                // A dirty tail buffered under an expired token that never
                // made it back is lost the moment we accept fresher state.
                if let Some(old) = self.entries.get(&resource) {
                    if old.dirty && old.version > version {
                        self.counters.lost_flushes += 1;
                        out.push(WbClientOutput::Lost {
                            resource,
                            last_durable: old.durable,
                            last_lost: old.version,
                        });
                    }
                }
                self.entries.insert(
                    resource,
                    WbEntry {
                        data: data.clone(),
                        version,
                        expiry,
                        mode,
                        dirty: false,
                        resv: reservation.map(|r: Reservation| Resv {
                            id: r.id,
                            next: r.first,
                            last: r.last,
                        }),
                        durable: version,
                        flushing: false,
                    },
                );
                // Serve the queued reads from the fresh grant.
                for op in reads {
                    out.push(WbClientOutput::Done {
                        op,
                        result: Some(WbOutcome::Read {
                            data: data.clone(),
                            version,
                            local: false,
                        }),
                    });
                }
                // Apply the queued writes locally (we may have been granted
                // Read while writes queued later; re-enter to upgrade).
                for (op, d) in writes {
                    if self
                        .entries
                        .get(&resource)
                        .is_some_and(|e| e.mode == Mode::Write)
                    {
                        let mut sub = Vec::new();
                        self.on_write(now, op, resource, d, &mut sub);
                        // Local applies, no counter for the first one.
                        for o in &mut sub {
                            if let WbClientOutput::Done {
                                result: Some(WbOutcome::Write { local, .. }),
                                ..
                            } = o
                            {
                                *local = false; // It did cost a round trip.
                            }
                        }
                        out.append(&mut sub);
                    } else {
                        let mut sub = Vec::new();
                        self.on_write(now, op, resource, d, &mut sub);
                        out.append(&mut sub);
                    }
                }
            }
            WbToClient::Flushed { req, resource } => {
                if let Some(rec) = self.flush_reqs.remove(&req) {
                    debug_assert_eq!(rec.resource, resource);
                    if let Some(e) = self.entries.get_mut(&resource) {
                        e.durable = e.durable.max(rec.version);
                        e.flushing = false;
                        if e.version <= rec.version {
                            e.dirty = false;
                        }
                    }
                }
            }
            WbToClient::FlushRejected { req, resource } => {
                self.counters.lost_flushes += 1;
                let rec = self.flush_reqs.remove(&req);
                let (durable, lost) = match (self.entries.remove(&resource), rec) {
                    (Some(e), _) => (e.durable, e.version),
                    (None, Some(rec)) => (rec.durable_before, rec.version),
                    (None, None) => return,
                };
                out.push(WbClientOutput::Lost {
                    resource,
                    last_durable: durable,
                    last_lost: lost,
                });
            }
            WbToClient::Recall { resource } => {
                self.counters.recalls += 1;
                if let Some(e) = self.entries.remove(&resource) {
                    let req = self.fresh_req();
                    let dirty = if e.dirty {
                        self.flush_reqs.insert(
                            req,
                            FlushRecord {
                                resource,
                                version: e.version,
                                durable_before: e.durable,
                            },
                        );
                        Some((e.version, e.data))
                    } else {
                        None
                    };
                    out.push(WbClientOutput::Send(WbToServer::Release {
                        req,
                        resource,
                        reservation: e.resv.map(|r| r.id),
                        dirty,
                    }));
                } else {
                    // Nothing held (already released or expired): the
                    // server's deadline covers it; no reply needed.
                }
            }
            WbToClient::Error { req } => {
                if let Some((resource, _, PendingAcq::Waiting { reads, writes, .. })) =
                    self.acquires.remove(&req)
                {
                    self.acq_inflight.remove(&resource);
                    for op in reads {
                        out.push(WbClientOutput::Done { op, result: None });
                    }
                    for (op, _) in writes {
                        out.push(WbClientOutput::Done { op, result: None });
                    }
                }
            }
        }
    }

    fn flush_dirty(&mut self, now: Time, out: &mut Vec<WbClientOutput<R, D>>) {
        // Expired entries are flushed too: the server accepts a write-back
        // for as long as our reservation has not been superseded, and
        // rejects it (-> Lost) otherwise.
        let _ = now;
        let dirty: Vec<R> = self
            .entries
            .iter()
            .filter(|(_, e)| e.dirty && !e.flushing && e.mode == Mode::Write)
            .map(|(r, _)| *r)
            .collect();
        for resource in dirty {
            let req = self.fresh_req();
            let e = self.entries.get_mut(&resource).expect("present");
            e.flushing = true;
            self.counters.flushes += 1;
            self.flush_reqs.insert(
                req,
                FlushRecord {
                    resource,
                    version: e.version,
                    durable_before: e.durable,
                },
            );
            out.push(WbClientOutput::Send(WbToServer::WriteBack {
                req,
                resource,
                reservation: e.resv.expect("write lease").id,
                version: e.version,
                data: e.data.clone(),
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type C = WbClient<u64, u64>;

    fn client() -> C {
        WbClient::new(
            ClientId(1),
            WbClientConfig {
                epsilon: Dur::from_millis(10),
                flush_interval: Dur::from_secs(2),
            },
        )
    }

    fn t(ms: u64) -> Time {
        Time::from_millis(ms)
    }

    fn grant(
        resource: u64,
        mode: Mode,
        version: u64,
        data: u64,
        resv: Option<Reservation>,
    ) -> WbToClient<u64, u64> {
        WbToClient::Granted {
            req: ReqId(0),
            resource,
            mode,
            version: Version(version),
            data: Some(data),
            term: Dur::from_secs(10),
            reservation: resv,
        }
    }

    fn resv(id: u64, first: u64, last: u64) -> Reservation {
        Reservation {
            id,
            first: Version(first),
            last: Version(last),
        }
    }

    #[test]
    fn read_acquires_then_hits() {
        let mut c = client();
        let out = c.handle(
            t(0),
            WbInput::Read {
                op: OpId(1),
                resource: 7,
            },
        );
        assert!(matches!(
            &out[0],
            WbClientOutput::Send(WbToServer::Acquire {
                mode: Mode::Read,
                ..
            })
        ));
        let out = c.handle(t(3), WbInput::Msg(grant(7, Mode::Read, 1, 42, None)));
        assert!(out.iter().any(|o| matches!(
            o,
            WbClientOutput::Done {
                result: Some(WbOutcome::Read { local: false, .. }),
                ..
            }
        )));
        let out = c.handle(
            t(100),
            WbInput::Read {
                op: OpId(2),
                resource: 7,
            },
        );
        assert!(matches!(
            &out[0],
            WbClientOutput::Done {
                result: Some(WbOutcome::Read { local: true, .. }),
                ..
            }
        ));
        assert_eq!(c.counters.local_reads, 1);
    }

    #[test]
    fn writes_buffer_locally_under_the_token() {
        let mut c = client();
        let out = c.handle(
            t(0),
            WbInput::Write {
                op: OpId(1),
                resource: 7,
                data: 10,
            },
        );
        assert!(matches!(
            &out[0],
            WbClientOutput::Send(WbToServer::Acquire {
                mode: Mode::Write,
                ..
            })
        ));
        let out = c.handle(
            t(2),
            WbInput::Msg(grant(7, Mode::Write, 1, 42, Some(resv(5, 2, 100)))),
        );
        // The queued write applies with the first reserved version.
        assert!(out.iter().any(|o| matches!(
            o,
            WbClientOutput::LocalCommit {
                version: Version(2),
                ..
            }
        )));
        // Further writes are pure local operations.
        let out = c.handle(
            t(10),
            WbInput::Write {
                op: OpId(2),
                resource: 7,
                data: 11,
            },
        );
        assert!(matches!(
            &out[0],
            WbClientOutput::LocalCommit {
                version: Version(3),
                ..
            }
        ));
        assert!(matches!(
            &out[1],
            WbClientOutput::Done {
                result: Some(WbOutcome::Write { local: true, .. }),
                ..
            }
        ));
        assert_eq!(c.counters.local_writes, 2);
        // Reading our own buffered data is a local hit at the new version.
        let out = c.handle(
            t(11),
            WbInput::Read {
                op: OpId(3),
                resource: 7,
            },
        );
        assert!(matches!(
            &out[0],
            WbClientOutput::Done {
                result: Some(WbOutcome::Read {
                    data: 11,
                    version: Version(3),
                    local: true
                }),
                ..
            }
        ));
    }

    #[test]
    fn flush_timer_writes_back_and_clears_dirty() {
        let mut c = client();
        c.handle(
            t(0),
            WbInput::Write {
                op: OpId(1),
                resource: 7,
                data: 10,
            },
        );
        c.handle(
            t(2),
            WbInput::Msg(grant(7, Mode::Write, 1, 42, Some(resv(5, 2, 100)))),
        );
        let out = c.handle(t(2000), WbInput::Timer(WbClientTimer::Flush));
        let wb = out.iter().find_map(|o| match o {
            WbClientOutput::Send(WbToServer::WriteBack {
                req, version, data, ..
            }) => Some((*req, *version, *data)),
            _ => None,
        });
        let (req, version, data) = wb.expect("flush sent");
        assert_eq!((version, data), (Version(2), 10));
        // And it re-arms the timer.
        assert!(out
            .iter()
            .any(|o| matches!(o, WbClientOutput::SetTimer { .. })));
        // The ack clears the dirty bit.
        c.handle(
            t(2005),
            WbInput::Msg(WbToClient::Flushed { req, resource: 7 }),
        );
        assert!(c.dirty_state().is_empty());
        // A second tick has nothing to send but re-arms.
        let out = c.handle(t(4000), WbInput::Timer(WbClientTimer::Flush));
        assert!(!out.iter().any(|o| matches!(o, WbClientOutput::Send(_))));
    }

    #[test]
    fn write_between_flush_and_ack_stays_dirty() {
        let mut c = client();
        c.handle(
            t(0),
            WbInput::Write {
                op: OpId(1),
                resource: 7,
                data: 10,
            },
        );
        c.handle(
            t(2),
            WbInput::Msg(grant(7, Mode::Write, 1, 42, Some(resv(5, 2, 100)))),
        );
        let out = c.handle(t(2000), WbInput::Timer(WbClientTimer::Flush));
        let req = out
            .iter()
            .find_map(|o| match o {
                WbClientOutput::Send(WbToServer::WriteBack { req, .. }) => Some(*req),
                _ => None,
            })
            .unwrap();
        // Another write lands while the flush is in flight.
        c.handle(
            t(2001),
            WbInput::Write {
                op: OpId(2),
                resource: 7,
                data: 11,
            },
        );
        c.handle(
            t(2005),
            WbInput::Msg(WbToClient::Flushed { req, resource: 7 }),
        );
        // v2 is durable but v3 is still dirty.
        assert_eq!(c.dirty_state(), vec![(7, Version(2), Version(3))]);
    }

    #[test]
    fn recall_flushes_dirty_and_releases() {
        let mut c = client();
        c.handle(
            t(0),
            WbInput::Write {
                op: OpId(1),
                resource: 7,
                data: 10,
            },
        );
        c.handle(
            t(2),
            WbInput::Msg(grant(7, Mode::Write, 1, 42, Some(resv(5, 2, 100)))),
        );
        let out = c.handle(t(50), WbInput::Msg(WbToClient::Recall { resource: 7 }));
        let released = out.iter().find_map(|o| match o {
            WbClientOutput::Send(WbToServer::Release {
                reservation, dirty, ..
            }) => Some((*reservation, *dirty)),
            _ => None,
        });
        assert_eq!(released, Some((Some(5), Some((Version(2), 10)))));
        assert_eq!(c.counters.recalls, 1);
        // Subsequent reads must re-acquire.
        let out = c.handle(
            t(60),
            WbInput::Read {
                op: OpId(2),
                resource: 7,
            },
        );
        assert!(matches!(
            &out[0],
            WbClientOutput::Send(WbToServer::Acquire { .. })
        ));
    }

    #[test]
    fn flush_rejection_reports_lost_writes() {
        let mut c = client();
        c.handle(
            t(0),
            WbInput::Write {
                op: OpId(1),
                resource: 7,
                data: 10,
            },
        );
        c.handle(
            t(2),
            WbInput::Msg(grant(7, Mode::Write, 1, 42, Some(resv(5, 2, 100)))),
        );
        let out = c.handle(t(2000), WbInput::Timer(WbClientTimer::Flush));
        let req = out
            .iter()
            .find_map(|o| match o {
                WbClientOutput::Send(WbToServer::WriteBack { req, .. }) => Some(*req),
                _ => None,
            })
            .unwrap();
        let out = c.handle(
            t(2005),
            WbInput::Msg(WbToClient::FlushRejected { req, resource: 7 }),
        );
        assert!(matches!(
            &out[0],
            WbClientOutput::Lost {
                resource: 7,
                last_durable: Version(1),
                last_lost: Version(2)
            }
        ));
        assert_eq!(c.counters.lost_flushes, 1);
    }

    #[test]
    fn dirty_state_reports_for_crash_accounting() {
        let mut c = client();
        c.handle(
            t(0),
            WbInput::Write {
                op: OpId(1),
                resource: 7,
                data: 10,
            },
        );
        c.handle(
            t(2),
            WbInput::Msg(grant(7, Mode::Write, 1, 42, Some(resv(5, 2, 100)))),
        );
        assert_eq!(c.dirty_state(), vec![(7, Version(1), Version(2))]);
        c.crash();
        assert!(c.dirty_state().is_empty());
        // Post-crash reads re-acquire from scratch.
        let out = c.handle(
            t(10),
            WbInput::Read {
                op: OpId(2),
                resource: 7,
            },
        );
        assert!(matches!(
            &out[0],
            WbClientOutput::Send(WbToServer::Acquire { .. })
        ));
    }

    #[test]
    fn reads_and_writes_coalesce_onto_one_acquire() {
        let mut c = client();
        c.handle(
            t(0),
            WbInput::Read {
                op: OpId(1),
                resource: 7,
            },
        );
        // A write joins the in-flight (read) acquire; the grant handler
        // re-acquires in write mode for it.
        let out = c.handle(
            t(1),
            WbInput::Write {
                op: OpId(2),
                resource: 7,
                data: 9,
            },
        );
        assert!(out.is_empty(), "queued behind the in-flight acquire");
        let out = c.handle(t(3), WbInput::Msg(grant(7, Mode::Read, 1, 42, None)));
        // Read completes; the write triggers a write-mode acquire.
        assert!(out
            .iter()
            .any(|o| matches!(o, WbClientOutput::Done { op: OpId(1), .. })));
        assert!(out.iter().any(|o| matches!(
            o,
            WbClientOutput::Send(WbToServer::Acquire {
                mode: Mode::Write,
                ..
            })
        )));
    }

    #[test]
    fn expired_token_reacquires_before_writing() {
        let mut c = client();
        c.handle(
            t(0),
            WbInput::Write {
                op: OpId(1),
                resource: 7,
                data: 10,
            },
        );
        c.handle(
            t(2),
            WbInput::Msg(grant(7, Mode::Write, 1, 42, Some(resv(5, 2, 100)))),
        );
        // Far past the 10 s term: the dirty tail is flushed under the old
        // reservation first, then a fresh token is acquired.
        let out = c.handle(
            t(60_000),
            WbInput::Write {
                op: OpId(2),
                resource: 7,
                data: 11,
            },
        );
        assert!(matches!(
            &out[0],
            WbClientOutput::Send(WbToServer::WriteBack {
                version: Version(2),
                ..
            })
        ));
        assert!(matches!(
            &out[1],
            WbClientOutput::Send(WbToServer::Acquire {
                mode: Mode::Write,
                ..
            })
        ));
    }
}
