//! Wire messages of the write-back (token) protocol.

use lease_clock::Dur;
use lease_core::{ReqId, Version};

/// Lease mode: shared read or exclusive write (a token).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Shared: many caches may read.
    Read,
    /// Exclusive: one cache may read *and buffer writes locally*.
    Write,
}

/// A pre-allocated version range handed out with a write lease.
///
/// The holder assigns `first..=last` to its local writes in order; the
/// server never reuses a reserved number, so versions stay globally unique
/// even when a crash destroys part of the range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Server-unique reservation id.
    pub id: u64,
    /// First version the holder may assign.
    pub first: Version,
    /// Last version the holder may assign.
    pub last: Version,
}

/// Client-to-server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum WbToServer<R, D> {
    /// Request a lease on `resource` in the given mode.
    Acquire {
        /// Echoed in the reply.
        req: ReqId,
        /// The resource.
        resource: R,
        /// Requested mode.
        mode: Mode,
        /// Version already cached, if any (elides data in the grant).
        cached: Option<Version>,
    },
    /// Flush dirty data while keeping the write lease.
    WriteBack {
        /// Echoed in the reply.
        req: ReqId,
        /// The resource.
        resource: R,
        /// The reservation the versions come from.
        reservation: u64,
        /// The (collapsed) latest buffered version.
        version: Version,
        /// Its contents.
        data: D,
    },
    /// Give a lease back, flushing any dirty tail with it.
    Release {
        /// Echoed in the flush ack/reject when `dirty` is present.
        req: ReqId,
        /// The resource.
        resource: R,
        /// The write reservation, if this was a write lease.
        reservation: Option<u64>,
        /// Dirty data to commit on the way out.
        dirty: Option<(Version, D)>,
    },
}

/// Server-to-client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum WbToClient<R, D> {
    /// A lease grant.
    Granted {
        /// The request answered.
        req: ReqId,
        /// The resource.
        resource: R,
        /// Granted mode (always the requested one).
        mode: Mode,
        /// Current committed version.
        version: Version,
        /// Contents, elided when `cached` matched.
        data: Option<D>,
        /// Lease term, measured at the server from receipt.
        term: Dur,
        /// The version range, for write grants.
        reservation: Option<Reservation>,
    },
    /// A write-back was applied durably.
    Flushed {
        /// The request answered.
        req: ReqId,
        /// The resource.
        resource: R,
    },
    /// A write-back arrived under a lapsed reservation: the resource has
    /// moved on and the buffered writes are lost.
    FlushRejected {
        /// The request answered.
        req: ReqId,
        /// The resource.
        resource: R,
    },
    /// Please flush and release `resource`: another cache needs it.
    Recall {
        /// The resource.
        resource: R,
    },
    /// The resource does not exist.
    Error {
        /// The failed request.
        req: ReqId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservation_carries_a_range() {
        let r = Reservation {
            id: 1,
            first: Version(10),
            last: Version(19),
        };
        assert!(r.first <= r.last);
        assert_eq!(r.last.0 - r.first.0 + 1, 10);
    }

    #[test]
    fn modes_are_distinct() {
        assert_ne!(Mode::Read, Mode::Write);
    }
}
