//! Building and running a write-back system on the simulator.

use lease_clock::{Dur, Time};
use lease_core::{ClientId, MemStorage};
use lease_net::{NetParams, SimNet};
use lease_sim::{ActorId, World};
use lease_vsys::driver::OpDriver;
use lease_vsys::{history, CrashEvent, NodeSel, RunReport, SharedHistory};
use lease_workload::Trace;

use crate::actors::{WbClientActor, WbNetMsg, WbServerActor};
use crate::client::{WbClient, WbClientConfig};
use crate::server::{WbServer, WbServerConfig};

/// Configuration of a write-back run.
#[derive(Debug, Clone)]
pub struct WbConfig {
    /// Lease term for reads and tokens.
    pub term: Dur,
    /// Background flush interval.
    pub flush_interval: Dur,
    /// Clock allowance ε.
    pub epsilon: Dur,
    /// Network timing (the transport is reliable; see the crate docs).
    pub net: NetParams,
    /// Measurements before this instant are discarded.
    pub warmup: Dur,
    /// Scheduled crashes.
    pub crashes: Vec<CrashEvent>,
    /// Extra run time after the last record.
    pub drain: Dur,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WbConfig {
    fn default() -> WbConfig {
        WbConfig {
            term: Dur::from_secs(10),
            flush_interval: Dur::from_secs(2),
            epsilon: Dur::from_millis(100),
            net: NetParams::v_lan(),
            warmup: Dur::ZERO,
            crashes: Vec::new(),
            drain: Dur::from_secs(120),
            seed: 42,
        }
    }
}

/// Builds and runs a write-back system over `trace`; returns the standard
/// run report plus the execution history (with Commit and Discard events)
/// for the oracle.
pub fn run_wb_with_history(cfg: &WbConfig, trace: &Trace) -> (RunReport, SharedHistory) {
    let n = trace.client_count().max(1);
    let net = SimNet::new(cfg.net);
    let mut world: World<WbNetMsg> = World::new(cfg.seed, net);
    let hist = history::shared();
    let warmup = Time::ZERO + cfg.warmup;

    let client_ids: Vec<ActorId> = (0..n).map(|i| ActorId(1 + i as usize)).collect();
    let mut storage = MemStorage::new();
    for f in &trace.files {
        storage.insert(f.id, 0);
    }
    let server = WbServer::new(WbServerConfig {
        term: cfg.term,
        reservation_range: 1 << 20,
    });
    let sid = world.add_actor(WbServerActor::new(
        server,
        storage,
        client_ids.clone(),
        warmup,
    ));
    debug_assert_eq!(sid, ActorId(0));

    for i in 0..n {
        let cache = WbClient::new(
            ClientId(i),
            WbClientConfig {
                epsilon: cfg.epsilon,
                flush_interval: cfg.flush_interval,
            },
        );
        let driver = OpDriver::new(trace, i, warmup);
        let cid = world.add_actor(WbClientActor::new(cache, driver, sid, hist.clone(), warmup));
        debug_assert_eq!(cid, client_ids[i as usize]);
    }

    for crash in &cfg.crashes {
        let victim = match crash.node {
            NodeSel::Server => sid,
            NodeSel::Client(i) => client_ids[i as usize],
        };
        if let NodeSel::Client(i) = crash.node {
            // Stamp the crash instant so Discard events carry real times.
            if let Some(actor) = world.actor_mut::<WbClientActor>(client_ids[i as usize]) {
                actor.set_crash_stamp(crash.at);
            }
        }
        world.schedule_crash(crash.at, victim);
        if let Some(r) = crash.recover_at {
            world.schedule_recover(r, victim);
        }
    }

    let end = Time::ZERO + trace.duration() + cfg.drain;
    world.run_until(end);
    let window = end.saturating_since(warmup).as_secs_f64();
    (RunReport::from_world(&mut world, window), hist)
}

/// Like [`run_wb_with_history`], returning only the report.
pub fn run_wb(cfg: &WbConfig, trace: &Trace) -> (RunReport, SharedHistory) {
    run_wb_with_history(cfg, trace)
}
