#![warn(missing_docs)]

//! Non-write-through leases: the paper's noted extension.
//!
//! Section 2 limits the presentation to write-through caches ("extending
//! the mechanism to support non-write-through caches is straightforward"),
//! and §6 points at Burrows's MFS and the Echo file system, whose *tokens*
//! "can be regarded as limited-term leases, but supporting non-write-through
//! caches". This crate builds that extension:
//!
//! * leases come in two modes — shared **read** leases (as in
//!   `lease-core`) and exclusive **write** leases (tokens);
//! * a write-lease holder buffers writes locally and completes them
//!   without any server round trip: the fast path the paper's
//!   write-through design gives up;
//! * the server hands each write lease a pre-allocated **version range**,
//!   so locally-assigned versions stay globally unique even when a crash
//!   burns part of a range;
//! * dirty data is written back on recall (when another client wants the
//!   resource), periodically, on release, and on eviction;
//! * a crash while dirty **loses the buffered writes** — exactly the
//!   failure semantics §2's write-through choice avoids ("no write that
//!   has been made visible to any client can be lost; applications must
//!   otherwise be prepared to recover from lost writes"). The execution
//!   history records these as
//!   [`Discard`](lease_vsys::HistoryEvent::Discard) events, and the
//!   consistency oracle verifies that *only* the crashed writer ever saw
//!   the lost versions.
//!
//! Because a write lease is exclusive, local writes are genuine
//! linearization points: nobody else can read the resource while the
//! token is held, so buffering preserves single-copy semantics for all
//! *surviving* data.
//!
//! Scope: the write-back harness models host crashes and recalls; message
//! loss and server recovery are studied on the write-through system in
//! `lease-vsys` (this crate's transport is reliable), which is also where
//! the paper's own evaluation lives.
//!
//! # Examples
//!
//! ```
//! use lease_clock::Dur;
//! use lease_wb::{run_wb, WbConfig};
//! use lease_workload::PoissonWorkload;
//!
//! let trace = PoissonWorkload { n: 2, r: 0.5, w: 0.5, s: 2,
//!     duration: Dur::from_secs(60), seed: 1 }.generate();
//! let (report, _history) = run_wb(&WbConfig::default(), &trace);
//! assert_eq!(report.op_failures, 0);
//! ```

pub mod actors;
pub mod client;
pub mod harness;
pub mod msg;
pub mod server;

pub use client::{WbClient, WbClientConfig, WbClientOutput, WbClientTimer, WbInput};
pub use harness::{run_wb, run_wb_with_history, WbConfig};
pub use msg::{Mode, Reservation, WbToClient, WbToServer};
pub use server::{WbServer, WbServerConfig, WbServerInput, WbServerOutput};
