//! Simulator actors for the write-back system.

use std::collections::HashMap;

use lease_clock::Time;
use lease_core::{ClientId, MemStorage, OpId};
use lease_sim::{Actor, ActorId, Ctx, TimerId};
use lease_vsys::driver::{OpDriver, DRIVER_TIMER_KEY};
use lease_vsys::{HistoryEvent, SharedHistory};
use lease_workload::TraceOp;

use crate::client::{WbClient, WbClientOutput, WbClientTimer, WbInput, WbOutcome};
use crate::msg::{WbToClient, WbToServer};
use crate::server::{WbServer, WbServerInput, WbServerOutput};

/// Trace resource and data aliases (same as the write-through system).
pub type Res = lease_vsys::Res;
/// Opaque contents token.
pub type Data = lease_vsys::Data;

/// Everything on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum WbNetMsg {
    /// Client to server.
    Up(WbToServer<Res, Data>),
    /// Server to client.
    Down(WbToClient<Res, Data>),
}

/// The server actor.
pub struct WbServerActor {
    /// The protocol machine.
    pub server: WbServer<Res, Data>,
    /// Primary storage (durable).
    pub storage: MemStorage<Res, Data>,
    clients: Vec<ActorId>,
    warmup: Time,
}

impl WbServerActor {
    /// Creates the actor; `clients[i]` is client `i`'s actor id.
    pub fn new(
        server: WbServer<Res, Data>,
        storage: MemStorage<Res, Data>,
        clients: Vec<ActorId>,
        warmup: Time,
    ) -> WbServerActor {
        WbServerActor {
            server,
            storage,
            clients,
            warmup,
        }
    }

    fn client_of(&self, a: ActorId) -> Option<ClientId> {
        self.clients
            .iter()
            .position(|x| *x == a)
            .map(|i| ClientId(i as u32))
    }

    fn apply(&mut self, ctx: &mut Ctx<'_, WbNetMsg>, outs: Vec<WbServerOutput<Res, Data>>) {
        let measuring = ctx.now() >= self.warmup;
        for o in outs {
            match o {
                WbServerOutput::Send { to, msg } => {
                    if measuring {
                        let name = match &msg {
                            WbToClient::Granted { .. } => "srv.tx.grants",
                            WbToClient::Flushed { .. } | WbToClient::FlushRejected { .. } => {
                                "srv.tx.write_done"
                            }
                            WbToClient::Recall { .. } => "srv.tx.approval_req",
                            WbToClient::Error { .. } => "srv.tx.error",
                        };
                        ctx.metrics().inc(name);
                    }
                    ctx.send(self.clients[to.0 as usize], WbNetMsg::Down(msg));
                }
                WbServerOutput::SetRecallTimer { at, resource } => {
                    ctx.set_timer_at(at, resource);
                }
                WbServerOutput::Durable { .. } => {
                    // Durability only; visibility was logged at the client.
                }
            }
        }
    }
}

impl Actor<WbNetMsg> for WbServerActor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, WbNetMsg>, from: ActorId, msg: WbNetMsg) {
        let WbNetMsg::Up(msg) = msg else {
            return;
        };
        let Some(client) = self.client_of(from) else {
            return;
        };
        if ctx.now() >= self.warmup {
            let name = match &msg {
                WbToServer::Acquire { .. } => "srv.rx.fetch",
                WbToServer::WriteBack { .. } => "srv.rx.write",
                WbToServer::Release { .. } => "srv.rx.approve",
            };
            ctx.metrics().inc(name);
        }
        let outs = self.server.handle(
            ctx.now(),
            WbServerInput::Msg { from: client, msg },
            &mut self.storage,
        );
        self.apply(ctx, outs);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, WbNetMsg>, _t: TimerId, key: u64) {
        let outs = self.server.handle(
            ctx.now(),
            WbServerInput::RecallTimer(key),
            &mut self.storage,
        );
        self.apply(ctx, outs);
    }
}

/// The client actor: token cache plus the open-loop trace driver.
pub struct WbClientActor {
    /// The cache.
    pub cache: WbClient<Res, Data>,
    /// The driver.
    pub driver: OpDriver,
    server: ActorId,
    id: ClientId,
    history: SharedHistory,
    op_meta: HashMap<OpId, (Res, bool)>,
    next_data: u64,
    warmup: Time,
    crash_stamp: Time,
}

impl WbClientActor {
    /// Creates the actor.
    pub fn new(
        cache: WbClient<Res, Data>,
        driver: OpDriver,
        server: ActorId,
        history: SharedHistory,
        warmup: Time,
    ) -> WbClientActor {
        let id = cache.id();
        WbClientActor {
            cache,
            driver,
            server,
            id,
            history,
            op_meta: HashMap::new(),
            next_data: 0,
            warmup,
            crash_stamp: Time::ZERO,
        }
    }

    const FLUSH_KEY: u64 = 1;

    fn schedule_driver(&mut self, ctx: &mut Ctx<'_, WbNetMsg>) {
        if let Some(at) = self.driver.next_due() {
            ctx.set_timer_at(at, DRIVER_TIMER_KEY);
        }
    }

    fn apply(&mut self, ctx: &mut Ctx<'_, WbNetMsg>, outs: Vec<WbClientOutput<Res, Data>>) {
        for o in outs {
            match o {
                WbClientOutput::Send(m) => ctx.send(self.server, WbNetMsg::Up(m)),
                WbClientOutput::SetTimer {
                    at,
                    timer: WbClientTimer::Flush,
                } => {
                    ctx.set_timer_at(at, Self::FLUSH_KEY);
                }
                WbClientOutput::LocalCommit { resource, version } => {
                    self.history.borrow_mut().push(HistoryEvent::Commit {
                        resource,
                        version,
                        writer: Some(self.id),
                        at: ctx.now(),
                    });
                }
                WbClientOutput::Lost {
                    resource,
                    last_durable,
                    last_lost,
                } => {
                    self.history.borrow_mut().push(HistoryEvent::Discard {
                        resource,
                        last_durable,
                        last_lost,
                        at: ctx.now(),
                    });
                }
                WbClientOutput::Done { op, result } => {
                    let meta = self.op_meta.remove(&op);
                    match result {
                        Some(outcome) => {
                            self.driver.complete(ctx.now(), op, ctx.metrics());
                            if ctx.now() >= self.warmup {
                                match &outcome {
                                    WbOutcome::Read { local: true, .. } => {
                                        ctx.metrics().inc("client.hit")
                                    }
                                    WbOutcome::Read { local: false, .. } => {
                                        ctx.metrics().inc("client.remote_read")
                                    }
                                    WbOutcome::Write { .. } => {
                                        ctx.metrics().inc("client.write_done")
                                    }
                                }
                            }
                            if let Some((resource, _)) = meta {
                                let ev = match outcome {
                                    WbOutcome::Read { version, local, .. } => {
                                        HistoryEvent::ReadDone {
                                            client: self.id,
                                            op,
                                            resource,
                                            version,
                                            at: ctx.now(),
                                            from_cache: local,
                                        }
                                    }
                                    WbOutcome::Write { version, .. } => HistoryEvent::WriteDone {
                                        client: self.id,
                                        op,
                                        resource,
                                        version,
                                        at: ctx.now(),
                                    },
                                };
                                self.history.borrow_mut().push(ev);
                            }
                        }
                        None => self.driver.fail(op, ctx.metrics()),
                    }
                }
            }
        }
    }

    fn issue_due(&mut self, ctx: &mut Ctx<'_, WbNetMsg>) {
        let due = self.driver.take_due(ctx.now(), ctx.metrics());
        for (op, trace_op) in due {
            let now = ctx.now();
            let input = match trace_op {
                TraceOp::Read { file } => {
                    self.history.borrow_mut().push(HistoryEvent::ReadStart {
                        client: self.id,
                        op,
                        resource: file,
                        at: now,
                    });
                    self.op_meta.insert(op, (file, true));
                    WbInput::Read { op, resource: file }
                }
                TraceOp::Write { file } => {
                    self.history.borrow_mut().push(HistoryEvent::WriteStart {
                        client: self.id,
                        op,
                        resource: file,
                        at: now,
                    });
                    self.op_meta.insert(op, (file, false));
                    let token = ((self.id.0 as u64) << 32) | self.next_data;
                    self.next_data += 1;
                    WbInput::Write {
                        op,
                        resource: file,
                        data: token,
                    }
                }
            };
            let outs = self.cache.handle(now, input);
            self.apply(ctx, outs);
        }
        self.schedule_driver(ctx);
    }
}

impl Actor<WbNetMsg> for WbClientActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, WbNetMsg>) {
        let outs = self.cache.start(ctx.now());
        self.apply(ctx, outs);
        self.schedule_driver(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, WbNetMsg>, _from: ActorId, msg: WbNetMsg) {
        let WbNetMsg::Down(msg) = msg else {
            return;
        };
        let outs = self.cache.handle(ctx.now(), WbInput::Msg(msg));
        self.apply(ctx, outs);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, WbNetMsg>, _t: TimerId, key: u64) {
        if key == DRIVER_TIMER_KEY {
            self.issue_due(ctx);
            return;
        }
        if key == Self::FLUSH_KEY {
            let outs = self
                .cache
                .handle(ctx.now(), WbInput::Timer(WbClientTimer::Flush));
            self.apply(ctx, outs);
        }
    }

    fn on_crash(&mut self) {
        // Buffered writes die with the host: record what was lost before
        // wiping. (History has no clock here; the harness stamps crash
        // events with the scheduled crash instant — see `crash_stamp`.)
        for (resource, last_durable, last_lost) in self.cache.dirty_state() {
            self.history.borrow_mut().push(HistoryEvent::Discard {
                resource,
                last_durable,
                last_lost,
                at: self.crash_stamp,
            });
        }
        self.cache.crash();
        self.driver.crash();
        self.op_meta.clear();
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, WbNetMsg>) {
        self.driver.skip_until(ctx.now());
        let outs = self.cache.start(ctx.now());
        self.apply(ctx, outs);
        self.schedule_driver(ctx);
    }
}

impl WbClientActor {
    /// The crash instant used to stamp Discard events; the harness sets it
    /// when scheduling the crash (on_crash has no clock access).
    pub fn set_crash_stamp(&mut self, at: Time) {
        self.crash_stamp = at;
    }
}
