//! Section 5 end-to-end: non-Byzantine failures cost delay, never
//! consistency; broken clocks break consistency — and the oracle sees it.

use lease_clock::{ClockModel, Dur, Time};
use lease_faults::{check_history, staleness_of, Violation};
use lease_net::Partition;
use lease_sim::ActorId;
use lease_vsys::{run_trace_with_history, CrashEvent, NodeSel, SystemConfig, TermSpec};
use lease_workload::{PoissonWorkload, Trace, VTrace};

fn fixed(term_secs: u64) -> SystemConfig {
    SystemConfig {
        term: TermSpec::Fixed(Dur::from_secs(term_secs)),
        max_retries: 500,
        ..SystemConfig::default()
    }
}

fn shared_workload(seed: u64) -> Trace {
    // 6 clients in groups of 3, with real write sharing.
    PoissonWorkload {
        n: 6,
        r: 0.8,
        w: 0.05,
        s: 3,
        duration: Dur::from_secs(400),
        seed,
    }
    .generate()
}

#[test]
fn fault_free_run_is_consistent() {
    let (_, h) = run_trace_with_history(&fixed(10), &shared_workload(1));
    check_history(&h.history.borrow()).expect("consistent");
}

#[test]
fn consistent_across_terms_including_zero_and_infinite() {
    for term in [Dur::ZERO, Dur::from_secs(1), Dur::from_secs(30), Dur::MAX] {
        let cfg = SystemConfig {
            term: TermSpec::Fixed(term),
            max_retries: 500,
            ..Default::default()
        };
        let (_, h) = run_trace_with_history(&cfg, &shared_workload(2));
        check_history(&h.history.borrow())
            .unwrap_or_else(|v| panic!("term {term:?}: violations {v:?}"));
    }
}

#[test]
fn message_loss_never_breaks_consistency() {
    for loss in [0.02, 0.10, 0.25] {
        let mut cfg = fixed(10);
        cfg.loss = loss;
        cfg.retry_interval = Dur::from_millis(300);
        let (_, h) = run_trace_with_history(&cfg, &shared_workload(3));
        check_history(&h.history.borrow())
            .unwrap_or_else(|v| panic!("loss {loss}: violations {v:?}"));
    }
}

#[test]
fn heavy_loss_stress_sweep_stays_consistent() {
    // Aggressive retransmission under heavy loss produces exactly the
    // duplicate/replay races that once broke the protocol (in-flight write
    // duplication, out-of-order WriteDone replays); sweep seeds to keep
    // them covered.
    for seed in [31u64, 33, 35, 37] {
        for loss in [0.30, 0.45] {
            let mut cfg = fixed(10);
            cfg.loss = loss;
            cfg.retry_interval = Dur::from_millis(300);
            let (_, h) = run_trace_with_history(&cfg, &shared_workload(seed));
            check_history(&h.history.borrow())
                .unwrap_or_else(|v| panic!("loss {loss} seed {seed}: violations {v:?}"));
        }
    }
}

#[test]
fn client_crashes_never_break_consistency() {
    let mut cfg = fixed(10);
    cfg.crashes = vec![
        CrashEvent {
            at: Time::from_secs(50),
            node: NodeSel::Client(0),
            recover_at: Some(Time::from_secs(120)),
        },
        CrashEvent {
            at: Time::from_secs(200),
            node: NodeSel::Client(3),
            recover_at: None,
        },
    ];
    let (_, h) = run_trace_with_history(&cfg, &shared_workload(4));
    check_history(&h.history.borrow()).expect("client crashes are safe");
}

#[test]
fn server_crash_and_recovery_never_breaks_consistency() {
    let mut cfg = fixed(10);
    cfg.crashes = vec![CrashEvent {
        at: Time::from_secs(100),
        node: NodeSel::Server,
        recover_at: Some(Time::from_secs(103)),
    }];
    let (_, h) = run_trace_with_history(&cfg, &shared_workload(5));
    check_history(&h.history.borrow()).expect("server recovery is safe");
}

#[test]
fn recovery_window_stalls_writes_deterministically() {
    use lease_workload::{FileClass, FileSpec, TraceOp, TraceRecord};
    // One read to set max_term = 10 s, a server crash, then a write that
    // lands inside the recovery window: it must stall until the window
    // closes (§2), and the run must stay consistent.
    let records = vec![
        TraceRecord {
            at: Time::from_secs(1),
            client: 0,
            op: TraceOp::Read { file: 1 },
        },
        TraceRecord {
            at: Time::from_secs(15),
            client: 0,
            op: TraceOp::Write { file: 1 },
        },
    ];
    let trace = lease_workload::Trace::new(
        vec![FileSpec {
            id: 1,
            class: FileClass::Regular,
            path: None,
        }],
        records,
    );
    let mut cfg = fixed(10);
    cfg.crashes = vec![CrashEvent {
        at: Time::from_secs(12),
        node: NodeSel::Server,
        recover_at: Some(Time::from_secs(13)),
    }];
    let (r, h) = run_trace_with_history(&cfg, &trace);
    check_history(&h.history.borrow()).expect("consistent");
    // Write at 15 s waits for recovery window end at 13 + 10 = 23 s.
    assert!(
        r.write_delay.max > 7.0 && r.write_delay.max < 9.0,
        "recovery stall {}",
        r.write_delay.max
    );
}

#[test]
fn partition_never_breaks_consistency() {
    let mut cfg = fixed(10);
    // Clients 0-2 (actors 1-3) cut off for 60 s.
    cfg.partitions = vec![Partition::new(
        Time::from_secs(100),
        Time::from_secs(160),
        [ActorId(1), ActorId(2), ActorId(3)],
    )];
    cfg.retry_interval = Dur::from_millis(400);
    let (_, h) = run_trace_with_history(&cfg, &shared_workload(6));
    check_history(&h.history.borrow()).expect("partitions are safe");
}

#[test]
fn compile_trace_with_everything_thrown_at_it_is_consistent() {
    let trace = VTrace::calibrated(99).generate();
    let mut cfg = fixed(10);
    cfg.loss = 0.05;
    cfg.crashes = vec![CrashEvent {
        at: Time::from_secs(300),
        node: NodeSel::Server,
        recover_at: Some(Time::from_secs(302)),
    }];
    let (_, h) = run_trace_with_history(&cfg, &trace);
    check_history(&h.history.borrow()).expect("combined faults are safe");
}

#[test]
fn fast_server_clock_breaks_consistency_and_oracle_catches_it() {
    // The one §5 failure mode leases cannot survive: the server's clock
    // races ahead, it considers leases expired early, and commits writes
    // while clients still trust their copies.
    let mut cfg = fixed(10);
    cfg.server_clock = ClockModel::drifting(2_000_000.0); // 3x fast
    let (_, h) = run_trace_with_history(&cfg, &shared_workload(7));
    let violations = check_history(&h.history.borrow())
        .expect_err("a 3x-fast server clock must produce stale reads");
    assert!(violations
        .iter()
        .any(|v| matches!(v, Violation::StaleRead { .. })));
    let st = staleness_of(&violations);
    assert!(!st.is_empty());
}

#[test]
fn slow_client_clock_breaks_consistency() {
    // The dual failure: a client whose clock runs slow keeps using leases
    // the server already considers expired.
    let mut cfg = fixed(10);
    cfg.client_clocks = vec![ClockModel::drifting(-600_000.0)]; // 0.4x speed
    let (_, h) = run_trace_with_history(&cfg, &shared_workload(8));
    let violations =
        check_history(&h.history.borrow()).expect_err("a slow client clock must go stale");
    assert!(violations
        .iter()
        .any(|v| matches!(v, Violation::StaleRead { .. })));
}

#[test]
fn harmless_clock_errors_slow_server_fast_client() {
    // §5: "The opposite errors — a slow server clock or fast client clock
    // — do not result in inconsistencies, but do generate extra traffic."
    let mut cfg = fixed(10);
    cfg.server_clock = ClockModel::drifting(-300_000.0); // slow server
    cfg.client_clocks = (0..6).map(|_| ClockModel::drifting(300_000.0)).collect(); // fast clients
    let (_, h) = run_trace_with_history(&cfg, &shared_workload(9));
    check_history(&h.history.borrow()).expect("conservative clock errors are safe");
}

#[test]
fn small_skew_within_epsilon_is_safe() {
    let mut cfg = fixed(10);
    cfg.epsilon = Dur::from_millis(100);
    // Clients skewed by up to ±50 ms: inside the allowance.
    cfg.client_clocks = (0..6)
        .map(|i| ClockModel::skewed(if i % 2 == 0 { 50_000_000 } else { -50_000_000 }))
        .collect();
    let (_, h) = run_trace_with_history(&cfg, &shared_workload(10));
    check_history(&h.history.borrow()).expect("skew within epsilon is safe");
}

#[test]
fn shorter_terms_bound_crash_induced_write_delay() {
    use lease_workload::{FileClass, FileSpec, TraceOp, TraceRecord};
    // §2: short terms "minimize the delay resulting from client and server
    // failures". Client 1 takes a lease just before crashing; client 0's
    // write then stalls for the lease's remaining term.
    let records = vec![
        TraceRecord {
            at: Time::from_secs(59),
            client: 1,
            op: TraceOp::Read { file: 1 },
        },
        TraceRecord {
            at: Time::from_secs(61),
            client: 0,
            op: TraceOp::Write { file: 1 },
        },
    ];
    let trace = lease_workload::Trace::new(
        vec![FileSpec {
            id: 1,
            class: FileClass::Regular,
            path: None,
        }],
        records,
    );
    let mut delays = Vec::new();
    for term in [5u64, 20] {
        let mut cfg = fixed(term);
        cfg.crashes = vec![CrashEvent {
            at: Time::from_secs(60),
            node: NodeSel::Client(1),
            recover_at: None,
        }];
        let (r, h) = run_trace_with_history(&cfg, &trace);
        check_history(&h.history.borrow()).expect("crash is safe");
        delays.push(r.write_delay.max);
    }
    // Term 5: lease from 59 s expires at 64 s -> ~3 s stall.
    // Term 20: expires at 79 s -> ~18 s stall.
    assert!(
        delays[0] < delays[1],
        "5 s term stall {} should be below 20 s term stall {}",
        delays[0],
        delays[1]
    );
    assert!(
        delays[0] > 2.0 && delays[0] <= 5.5,
        "stall bounded by the term: {}",
        delays[0]
    );
    assert!(
        delays[1] > 15.0 && delays[1] <= 20.5,
        "stall bounded by the term: {}",
        delays[1]
    );
}

#[test]
fn kitchen_sink_configuration_is_consistent() {
    // Everything at once: adaptive terms, batched extensions, anticipatory
    // renewal, the installed-file multicast, message loss, a crash, and a
    // partition — still single-copy.
    use lease_vsys::{InstalledMode, TermSpec};
    use lease_workload::{FileClass, FileSpec, Trace, TraceOp, TraceRecord};

    // Mixed workload: shared regular file + installed pool.
    let mut records = Vec::new();
    for s in 1..250u64 {
        let c = (s % 4) as u32;
        records.push(TraceRecord {
            at: Time::from_millis(s * 800),
            client: c,
            op: if s % 9 == 0 {
                TraceOp::Write { file: 1 }
            } else {
                TraceOp::Read { file: 1 }
            },
        });
        records.push(TraceRecord {
            at: Time::from_millis(s * 800 + 200),
            client: (c + 1) % 4,
            op: TraceOp::Read { file: 2 + (s % 3) },
        });
    }
    let mut files = vec![FileSpec {
        id: 1,
        class: FileClass::Regular,
        path: None,
    }];
    for id in 2..5u64 {
        files.push(FileSpec {
            id,
            class: FileClass::Installed,
            path: None,
        });
    }
    let trace = Trace::new(files, records);

    let cfg = SystemConfig {
        term: TermSpec::Adaptive {
            theta: 0.1,
            min: Dur::from_secs(1),
            max: Dur::from_secs(30),
        },
        installed: InstalledMode::Multicast {
            tick: Dur::from_secs(15),
            term: Dur::from_secs(40),
        },
        anticipatory: Some(Dur::from_secs(7)),
        batch_extensions: true,
        loss: 0.05,
        retry_interval: Dur::from_millis(300),
        max_retries: 1000,
        crashes: vec![CrashEvent {
            at: Time::from_secs(90),
            node: NodeSel::Client(2),
            recover_at: Some(Time::from_secs(120)),
        }],
        partitions: vec![Partition::new(
            Time::from_secs(140),
            Time::from_secs(170),
            [ActorId(1)],
        )],
        ..SystemConfig::default()
    };
    let (r, h) = run_trace_with_history(&cfg, &trace);
    check_history(&h.history.borrow()).expect("kitchen sink stays single-copy");
    // The crashed client skips the ops that were due while it was down
    // (30 s of its quarter of the trace), so allow for that gap.
    let done = r.hits + r.remote_reads + r.writes + r.op_failures;
    let total = trace.records.len() as u64;
    assert!(
        done >= total - 40 && done <= total,
        "done {done} of {total}"
    );
}
