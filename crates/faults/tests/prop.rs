//! Property-based end-to-end checking: random workloads, random faults,
//! random terms — every execution must satisfy single-copy semantics.

use lease_clock::{Dur, Time};
use lease_faults::{check_history, Violation};
use lease_net::Partition;
use lease_sim::ActorId;
use lease_vsys::{
    run_trace_with_history, CrashEvent, History, HistoryEvent, NodeSel, SystemConfig, TermSpec,
};
use lease_workload::{BurstyWorkload, PoissonWorkload, Trace};
use proptest::prelude::*;

fn poisson(n: u32, s: u32, seed: u64) -> Trace {
    PoissonWorkload {
        n,
        r: 1.2,
        w: 0.15,
        s,
        duration: Dur::from_secs(120),
        seed,
    }
    .generate()
}

/// Case count: 24 by default (CI-friendly), override with LEASE_PROP_CASES.
fn cases() -> u32 {
    std::env::var("LEASE_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(), ..ProptestConfig::default() })]

    /// Random sharing degree, lease term, and loss rate: consistent.
    #[test]
    fn random_poisson_runs_are_consistent(
        seed in 0u64..1000,
        term_ms in prop_oneof![Just(0u64), 500u64..30_000],
        s in 1u32..5,
        loss in 0.0f64..0.25,
    ) {
        let n = s * 2;
        let trace = poisson(n, s, seed);
        let cfg = SystemConfig {
            term: TermSpec::Fixed(Dur::from_millis(term_ms)),
            loss,
            retry_interval: Dur::from_millis(250),
            max_retries: 2000,
            seed: seed.wrapping_mul(31),
            ..SystemConfig::default()
        };
        let (_, h) = run_trace_with_history(&cfg, &trace);
        let res = check_history(&h.history.borrow());
        prop_assert!(res.is_ok(), "violations: {:?}", res.err());
    }

    /// Random crash/recovery schedules on clients and the server.
    #[test]
    fn random_crash_schedules_are_consistent(
        seed in 0u64..1000,
        crash_at in 10u64..100,
        down_secs in 1u64..40,
        victim in 0u32..5u32,
        term_s in 1u64..20,
    ) {
        let trace = poisson(4, 2, seed);
        let node = if victim == 4 { NodeSel::Server } else { NodeSel::Client(victim % 4) };
        let cfg = SystemConfig {
            term: TermSpec::Fixed(Dur::from_secs(term_s)),
            crashes: vec![CrashEvent {
                at: Time::from_secs(crash_at),
                node,
                recover_at: Some(Time::from_secs(crash_at + down_secs)),
            }],
            max_retries: 2000,
            seed,
            ..SystemConfig::default()
        };
        let (_, h) = run_trace_with_history(&cfg, &trace);
        let res = check_history(&h.history.borrow());
        prop_assert!(res.is_ok(), "violations: {:?}", res.err());
    }

    /// Random partitions: any island, any window.
    #[test]
    fn random_partitions_are_consistent(
        seed in 0u64..1000,
        from in 10u64..80,
        len in 5u64..50,
        island_bits in 1u32..15u32, // nonempty strict subset of 4 clients
    ) {
        let trace = poisson(4, 2, seed);
        let island: Vec<ActorId> = (0..4)
            .filter(|i| island_bits & (1 << i) != 0)
            .map(|i| ActorId(1 + i as usize))
            .collect();
        let cfg = SystemConfig {
            term: TermSpec::Fixed(Dur::from_secs(8)),
            partitions: vec![Partition::new(
                Time::from_secs(from),
                Time::from_secs(from + len),
                island,
            )],
            retry_interval: Dur::from_millis(250),
            max_retries: 2000,
            seed,
            ..SystemConfig::default()
        };
        let (_, h) = run_trace_with_history(&cfg, &trace);
        let res = check_history(&h.history.borrow());
        prop_assert!(res.is_ok(), "violations: {:?}", res.err());
    }

    /// Clock skew within epsilon plus bursty traffic: consistent.
    #[test]
    fn skew_within_epsilon_and_bursts_are_consistent(
        seed in 0u64..1000,
        skew_ms in -90i64..90,
        term_s in 1u64..15,
    ) {
        let trace = BurstyWorkload {
            n: 4,
            r: 1.0,
            w: 0.1,
            s: 2,
            on: Dur::from_secs(3),
            off: Dur::from_secs(10),
            duration: Dur::from_secs(120),
            seed,
        }
        .generate();
        let cfg = SystemConfig {
            term: TermSpec::Fixed(Dur::from_secs(term_s)),
            epsilon: Dur::from_millis(100),
            client_clocks: (0..4)
                .map(|i| lease_clock::ClockModel::skewed(skew_ms * 1_000_000 * if i % 2 == 0 { 1 } else { -1 }))
                .collect(),
            max_retries: 2000,
            seed,
            ..SystemConfig::default()
        };
        let (_, h) = run_trace_with_history(&cfg, &trace);
        let res = check_history(&h.history.borrow());
        prop_assert!(res.is_ok(), "violations: {:?}", res.err());
    }

    /// Jitter (reordering) and duplication stress the at-most-once and
    /// version-floor machinery: still consistent.
    #[test]
    fn jitter_and_duplication_are_consistent(
        seed in 0u64..1000,
        jitter_ms in 0u64..50,
        duplicate in 0.0f64..0.3,
        loss in 0.0f64..0.15,
        term_s in 1u64..15,
    ) {
        let trace = poisson(4, 2, seed);
        let cfg = SystemConfig {
            term: TermSpec::Fixed(Dur::from_secs(term_s)),
            jitter: Dur::from_millis(jitter_ms),
            duplicate,
            loss,
            retry_interval: Dur::from_millis(250),
            max_retries: 2000,
            seed,
            ..SystemConfig::default()
        };
        let (_, h) = run_trace_with_history(&cfg, &trace);
        let res = check_history(&h.history.borrow());
        prop_assert!(res.is_ok(), "violations: {:?}", res.err());
    }

    /// The at-most-one-grantor check agrees with a brute-force interval
    /// reference on random grantor claim schedules: a TwoGrantors
    /// violation is reported iff two claims of distinct replicas overlap
    /// in true time, and the reported windows match.
    #[test]
    fn grantor_overlap_check_matches_reference(
        seed in 0u64..100_000,
        n_claims in 1usize..8,
    ) {
        // Derive the claim schedule from the seed (the proptest shim has
        // no vec strategy).
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut draw = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        // (replica, ballot, from, until): until == Time::MAX when never ceded.
        let mut claims: Vec<(u32, u64, Time, Time)> = Vec::new();
        let mut h = History::new();
        for i in 0..n_claims {
            let replica = (draw() % 3) as u32;
            let ballot = i as u64; // unique per claim
            let from = Time::from_secs(draw() % 100);
            let closed = draw() % 4 != 0; // 1 in 4 claims never cedes
            let until = if closed {
                from + Dur::from_secs(draw() % 30)
            } else {
                Time::MAX
            };
            h.push(HistoryEvent::GrantorAcquired { replica, ballot, at: from });
            if closed {
                h.push(HistoryEvent::GrantorCeded { replica, ballot, at: until });
            }
            claims.push((replica, ballot, from, until));
        }
        let mut expected = 0usize;
        for i in 0..claims.len() {
            for j in i + 1..claims.len() {
                let (ra, _, fa, ua) = claims[i];
                let (rb, _, fb, ub) = claims[j];
                if ra != rb && fa.max(fb) < ua.min(ub) {
                    expected += 1;
                }
            }
        }
        let found = match check_history(&h) {
            Ok(()) => Vec::new(),
            Err(v) => v,
        };
        let two_grantors: Vec<&Violation> = found
            .iter()
            .filter(|v| matches!(v, Violation::TwoGrantors { .. }))
            .collect();
        prop_assert_eq!(
            two_grantors.len(),
            expected,
            "claims: {:?}, violations: {:?}",
            claims,
            two_grantors
        );
        for v in &two_grantors {
            if let Violation::TwoGrantors { overlap_from, overlap_until, .. } = v {
                prop_assert!(overlap_from < overlap_until);
            }
        }
    }

    /// The adaptive policy is as safe as any fixed term.
    #[test]
    fn adaptive_policy_is_consistent(seed in 0u64..1000, loss in 0.0f64..0.15) {
        let trace = poisson(4, 2, seed);
        let cfg = SystemConfig {
            term: TermSpec::Adaptive {
                theta: 0.1,
                min: Dur::from_secs(1),
                max: Dur::from_secs(60),
            },
            loss,
            retry_interval: Dur::from_millis(250),
            max_retries: 2000,
            seed,
            ..SystemConfig::default()
        };
        let (_, h) = run_trace_with_history(&cfg, &trace);
        let res = check_history(&h.history.borrow());
        prop_assert!(res.is_ok(), "violations: {:?}", res.err());
    }
}
