//! Property tests pinning down what the oracle must accept and reject
//! around server crashes and clock faults.
//!
//! These histories are fabricated directly (no simulator run): the first
//! family models a §5 MaxTerm crash/restart — writes delayed by up to the
//! max term plus a recovery margin, reads always serving the version
//! current at their instant — and must always pass. The second family
//! models the schedule a *fast server clock* produces — the server
//! expires a lease early and commits a write inside the client's
//! true-time lease, after which the client's cache serves the old
//! version — and must always be caught as a stale read.

use lease_clock::Time;
use lease_core::{ClientId, OpId, Version};
use lease_faults::{check_history, Violation};
use lease_vsys::{History, HistoryEvent};
use proptest::prelude::*;

const RES: u64 = 1;

fn commit(h: &mut History, v: u64, at: Time) {
    h.push(HistoryEvent::Commit {
        resource: RES,
        version: Version(v),
        writer: None,
        at,
    });
}

fn write(h: &mut History, client: u32, op: u64, v: u64, start: Time, done: Time) {
    h.push(HistoryEvent::WriteStart {
        client: ClientId(client),
        op: OpId(op),
        resource: RES,
        at: start,
    });
    commit(h, v, done);
    h.push(HistoryEvent::WriteDone {
        client: ClientId(client),
        op: OpId(op),
        resource: RES,
        version: Version(v),
        at: done,
    });
}

fn read(h: &mut History, client: u32, op: u64, v: u64, at: Time) {
    h.push(HistoryEvent::ReadStart {
        client: ClientId(client),
        op: OpId(op),
        resource: RES,
        at,
    });
    h.push(HistoryEvent::ReadDone {
        client: ClientId(client),
        op: OpId(op),
        resource: RES,
        version: Version(v),
        at,
        from_cache: true,
    });
}

proptest! {
    /// Crash/restart schedules are consistent: the server stalls every
    /// write landing in the recovery window `[crash, crash + max_term +
    /// margin)` until the window passes, and readers keep serving the
    /// version that was current when the server went down. The oracle
    /// must accept every such history.
    #[test]
    fn oracle_accepts_crash_restart_histories(
        gap_ms in 50u64..2_000,
        writes in 1usize..12,
        crash_after in 0usize..12,
        max_term_ms in 100u64..5_000,
        margin_ms in 0u64..500,
        read_offsets in proptest::collection::vec(0u64..10_000, 0..20),
    ) {
        let mut h = History::new();
        let gap = gap_ms * 1_000_000;
        let window = (max_term_ms + margin_ms) * 1_000_000;
        let crash_at = (crash_after as u64 + 1) * gap + gap / 2;

        // Writes at a steady cadence; any write due inside the recovery
        // window is delayed to the window's end (§5: a rebooted server
        // defers writes for the persisted max term).
        let mut commits: Vec<(u64, u64)> = vec![(0, 1)]; // (time, version)
        for i in 0..writes {
            let due = (i as u64 + 1) * gap;
            let committed = if due >= crash_at && due < crash_at + window {
                crash_at + window
            } else {
                due
            };
            let v = i as u64 + 2;
            write(&mut h, 0, i as u64, v, Time(due.min(committed)), Time(committed));
            commits.push((committed, v));
        }
        commits.sort_unstable();

        // Readers observe whatever is current at their instant — during
        // the stall that is simply the pre-crash version.
        let horizon = (writes as u64 + 2) * gap + window;
        for (j, off) in read_offsets.iter().enumerate() {
            let at = off % horizon.max(1);
            let v = commits.iter().rev().find(|(t, _)| *t <= at).map(|(_, v)| *v).unwrap_or(1);
            read(&mut h, 1, 1_000 + j as u64, v, Time(at));
        }

        let res = check_history(&h);
        prop_assert!(res.is_ok(), "violations: {:?}", res.err());
    }

    /// The schedule a fast server clock produces is always caught. The
    /// server's clock runs `rho` times too fast, so it believes a lease
    /// granted at `g` for `term` expires at `g + term/rho` of true time
    /// and lets a write commit inside the client's real lease; the
    /// leaseholder's subsequent cache hit serves the superseded version.
    #[test]
    fn oracle_rejects_fast_clock_stale_reads(
        grant_ms in 0u64..5_000,
        term_ms in 100u64..10_000,
        rho in 1.5f64..8.0,
        commit_frac in 0.05f64..0.90,
        read_frac in 0.05f64..0.95,
    ) {
        let g = grant_ms * 1_000_000;
        let term = term_ms * 1_000_000;
        // The server wrongly frees the resource at g + term/rho.
        let early_expiry = g + (term as f64 / rho) as u64;
        let lease_end = g + term;
        prop_assume!(early_expiry + 2 < lease_end);

        // A write commits somewhere in the unprotected gap...
        let gap = lease_end - early_expiry;
        let t_commit = early_expiry + 1 + (gap as f64 * commit_frac) as u64 % gap.max(1);
        // ...and the leaseholder serves its cache strictly after that,
        // still inside its true-time lease.
        let tail = lease_end.saturating_sub(t_commit + 1).max(1);
        let t_read = t_commit + 1 + (tail as f64 * read_frac) as u64 % tail;

        let mut h = History::new();
        read(&mut h, 1, 0, 1, Time(g)); // The grant-time read: version 1.
        write(&mut h, 0, 1, 2, Time(t_commit), Time(t_commit));
        read(&mut h, 1, 2, 1, Time(t_read)); // Stale cache hit.

        let violations = check_history(&h).expect_err("stale read must be flagged");
        prop_assert!(
            violations.iter().any(|v| matches!(v, Violation::StaleRead { .. })),
            "expected StaleRead, got {violations:?}"
        );
    }
}
