#![warn(missing_docs)]

//! Fault-tolerance analysis for the leases reproduction.
//!
//! Section 5 of the paper claims that leases "ensure consistency provided
//! that the hosts and network do not suffer certain Byzantine failures
//! including clock failure": message loss, partitions, and crashes cost
//! only delay, while a fast server clock or slow client clock can produce
//! genuinely stale reads. This crate provides the instrument that makes
//! those claims checkable:
//!
//! * [`check_history`] — the consistency oracle. It replays a recorded
//!   [`History`](lease_vsys::History) against single-copy semantics: every
//!   read must return a version that was current at some instant during
//!   the read's lifetime, commits must be monotone, and every completed
//!   write must correspond to a commit. The oracle judges executions on
//!   the *true* timeline, which the protocol itself never sees.
//! * [`staleness_of`] — how stale each violating read was, the measure the
//!   paper's TTL/callback baselines trade away.
//! * [`check_goodput`] — the overload-liveness oracle: after an overload
//!   burst ends, completed-operation throughput must recover to a
//!   fraction of its pre-overload baseline within a bounded number of
//!   lease-term windows, or the run is flagged as a congestion collapse.
//!
//! # Examples
//!
//! ```
//! use lease_clock::Time;
//! use lease_core::{ClientId, OpId, Version};
//! use lease_faults::check_history;
//! use lease_vsys::{History, HistoryEvent};
//!
//! let mut h = History::new();
//! h.push(HistoryEvent::ReadStart {
//!     client: ClientId(0), op: OpId(0), resource: 1, at: Time::from_secs(1),
//! });
//! h.push(HistoryEvent::ReadDone {
//!     client: ClientId(0), op: OpId(0), resource: 1, version: Version(1),
//!     at: Time::from_secs(1), from_cache: false,
//! });
//! assert!(check_history(&h).is_ok());
//! ```

pub mod oracle;

pub use oracle::{check_goodput, check_history, staleness_of, GoodputSpec, Violation};
