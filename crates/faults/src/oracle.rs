//! The single-copy consistency oracle.

use std::collections::HashMap;

use lease_clock::{Dur, Time};
use lease_core::{ClientId, OpId, Version};
use lease_vsys::{History, HistoryEvent, Res};

/// A consistency violation found by the oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A read returned a version that was not current at any instant of
    /// the read's lifetime — stale data served under a broken lease.
    StaleRead {
        /// The reader.
        client: ClientId,
        /// The operation.
        op: OpId,
        /// The resource.
        resource: Res,
        /// The version returned.
        version: Version,
        /// Read start (true time).
        start: Time,
        /// Read completion (true time).
        end: Time,
        /// When the returned version stopped being current.
        valid_until: Time,
    },
    /// A read returned a version the server never committed (or one from
    /// the future of its completion).
    UnknownVersion {
        /// The reader.
        client: ClientId,
        /// The operation.
        op: OpId,
        /// The resource.
        resource: Res,
        /// The version returned.
        version: Version,
    },
    /// Commits on a resource were not strictly increasing.
    NonMonotonicCommit {
        /// The resource.
        resource: Res,
        /// The offending version.
        version: Version,
        /// Commit time.
        at: Time,
    },
    /// A write completed at its client without a matching commit —
    /// a lost write, violating write-through durability.
    LostWrite {
        /// The writer.
        client: ClientId,
        /// The operation.
        op: OpId,
        /// The resource.
        resource: Res,
        /// The version the client believed committed.
        version: Version,
    },
    /// Goodput never recovered after an overload burst ended: within the
    /// allowed number of recovery windows, no window's completed-operation
    /// rate reached the required fraction of the pre-overload baseline.
    /// This is the signature of a congestion collapse — retry storms or
    /// unshed queues keeping the server saturated long after offered load
    /// dropped — which graceful degradation (admission control, retry
    /// budgets) exists to prevent.
    GoodputCollapse {
        /// Completed ops/sec over the pre-overload baseline interval.
        baseline: f64,
        /// The best windowed ops/sec observed after the overload ended.
        achieved: f64,
        /// The ops/sec the system had to reach (`recover_frac` × baseline).
        required: f64,
        /// End of the last allowed recovery window.
        deadline: Time,
    },
    /// Two distinct grantor replicas both held a live grantor claim over
    /// the same true-time window — the replicated grantor's analogue of a
    /// broken lease. With two grantors serving at once, each can grant
    /// conflicting file leases, so single-copy semantics are gone even if
    /// no client happened to observe it in this run.
    TwoGrantors {
        /// The replica whose claim started first.
        replica_a: u32,
        /// Its ballot.
        ballot_a: u64,
        /// The other replica.
        replica_b: u32,
        /// Its ballot.
        ballot_b: u64,
        /// Start of the overlap (true time).
        overlap_from: Time,
        /// End of the overlap (true time); [`Time::MAX`] when both claims
        /// were still open at the end of the recorded history.
        overlap_until: Time,
    },
}

/// Checks a recorded execution against single-copy (atomic) semantics.
///
/// For each resource, the committed versions form a timeline: version `v`
/// is *current* from its commit until the next commit (the initial version
/// 1 is current from the beginning). A read that returns `v` is legal iff
/// `v` was current at some instant between the read's start and its
/// completion. This is exactly the paper's definition of consistency:
/// "the behavior is equivalent to there being only a single (uncached)
/// copy of the data except for the performance benefit of the cache" (§1).
///
/// Replicated-grantor histories are additionally checked for the quorum
/// invariant: **at most one valid grantor at any true time**. Serving
/// claims are the half-open intervals `[GrantorAcquired, GrantorCeded)`
/// per `(replica, ballot)`; a claim never ceded stays open to the end of
/// the history. Any true-time overlap between claims of *distinct*
/// replicas is a [`Violation::TwoGrantors`] — flagged even if no client
/// request happened to land in the window, because the hazard (two
/// grantors free to issue conflicting file leases) exists regardless.
pub fn check_history(history: &History) -> Result<(), Vec<Violation>> {
    let mut violations = Vec::new();

    check_grantor_claims(history, &mut violations);

    // Collect commit timelines and discards (write-back lost writes) per
    // resource.
    let mut commits: HashMap<Res, Vec<(Time, Version)>> = HashMap::new();
    let mut discards: HashMap<Res, Vec<(Time, Version, Version)>> = HashMap::new();
    for e in &history.events {
        match e {
            HistoryEvent::Commit {
                resource,
                version,
                at,
                ..
            } => {
                commits.entry(*resource).or_default().push((*at, *version));
            }
            HistoryEvent::Discard {
                resource,
                last_durable,
                last_lost,
                at,
            } => {
                discards
                    .entry(*resource)
                    .or_default()
                    .push((*at, *last_durable, *last_lost));
            }
            _ => {}
        }
    }
    // A version is discarded if a crash occurred after its commit while it
    // was above the durable high-water mark: it was visible only to its
    // (exclusive) writer, from its commit until the crash.
    let discarded_until = |resource: Res, commit_at: Time, v: Version| -> Option<Time> {
        discards
            .get(&resource)?
            .iter()
            .find_map(|(at, last, lost)| {
                // Exactly the range the discard names, committed strictly
                // before it (another holder's reservation is untouched).
                if v > *last && v <= *lost && commit_at < *at {
                    Some(*at)
                } else {
                    None
                }
            })
    };
    for (resource, list) in commits.iter_mut() {
        list.sort();
        for w in list.windows(2) {
            if w[1].1 <= w[0].1 {
                violations.push(Violation::NonMonotonicCommit {
                    resource: *resource,
                    version: w[1].1,
                    at: w[1].0,
                });
            }
        }
    }

    // Index op starts.
    let mut starts: HashMap<(ClientId, OpId), Time> = HashMap::new();
    for e in &history.events {
        match e {
            HistoryEvent::ReadStart { client, op, at, .. }
            | HistoryEvent::WriteStart { client, op, at, .. } => {
                starts.insert((*client, *op), *at);
            }
            _ => {}
        }
    }

    let empty: Vec<(Time, Version)> = Vec::new();
    for e in &history.events {
        match e {
            HistoryEvent::ReadDone {
                client,
                op,
                resource,
                version,
                at,
                ..
            } => {
                let start = starts.get(&(*client, *op)).copied().unwrap_or(*at);
                let list = commits.get(resource).unwrap_or(&empty);
                // Window of `version`: from its commit (or time zero for
                // the initial version) to the next commit (or forever).
                let valid_from = if version.0 <= 1 {
                    Time::ZERO
                } else {
                    match list.iter().find(|(_, v)| v == version) {
                        Some((t, _)) => *t,
                        None => {
                            violations.push(Violation::UnknownVersion {
                                client: *client,
                                op: *op,
                                resource: *resource,
                                version: *version,
                            });
                            continue;
                        }
                    }
                };
                // A discarded (lost write-back) version is valid only
                // until the crash that destroyed it; an ordinary version
                // until the next non-discarded commit.
                let valid_until = match discarded_until(*resource, valid_from, *version) {
                    Some(crash) => crash,
                    None => list
                        .iter()
                        .find(|(t, v)| {
                            *v > *version && discarded_until(*resource, *t, *v).is_none()
                        })
                        .map(|(t, _)| *t)
                        .unwrap_or(Time::MAX),
                };
                // Overlap test between [start, end] and [valid_from, valid_until).
                let end = *at;
                if valid_from > end || valid_until <= start {
                    violations.push(Violation::StaleRead {
                        client: *client,
                        op: *op,
                        resource: *resource,
                        version: *version,
                        start,
                        end,
                        valid_until,
                    });
                }
            }
            HistoryEvent::WriteDone {
                client,
                op,
                resource,
                version,
                ..
            } => {
                let committed = commits
                    .get(resource)
                    .is_some_and(|l| l.iter().any(|(_, v)| v == version));
                if !committed {
                    violations.push(Violation::LostWrite {
                        client: *client,
                        op: *op,
                        resource: *resource,
                        version: *version,
                    });
                }
            }
            _ => {}
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// What [`check_goodput`] needs to know about the run: when the overload
/// burst sat on the true-time axis and how fast recovery must be.
#[derive(Debug, Clone, Copy)]
pub struct GoodputSpec {
    /// Baseline interval start (usually [`Time::ZERO`]).
    pub baseline_from: Time,
    /// When the overload burst began; the baseline is the completed-op
    /// rate over `[baseline_from, overload_start)`.
    pub overload_start: Time,
    /// When the overload burst ended; recovery windows start here.
    pub overload_end: Time,
    /// Width of one recovery window — the ISSUE's "lease term" unit.
    pub window: Dur,
    /// How many windows recovery may take (K).
    pub windows: u32,
    /// Fraction of baseline goodput that counts as recovered (e.g. 0.9).
    pub recover_frac: f64,
}

/// Checks the liveness half of overload robustness: once an overload
/// burst ends, goodput (completed reads + writes per second) must climb
/// back to `recover_frac` of its pre-overload baseline within
/// `windows` windows of `window` each. A system whose unbudgeted retries
/// keep it saturated after offered load drops fails here with
/// [`Violation::GoodputCollapse`] even though every individual reply it
/// does produce is consistent.
pub fn check_goodput(history: &History, spec: GoodputSpec) -> Result<(), Violation> {
    let done_at = |e: &HistoryEvent| match e {
        HistoryEvent::ReadDone { at, .. } | HistoryEvent::WriteDone { at, .. } => Some(*at),
        _ => None,
    };
    let base_span = spec
        .overload_start
        .saturating_since(spec.baseline_from)
        .as_secs_f64();
    if base_span <= 0.0 {
        return Ok(()); // No baseline interval: nothing to recover to.
    }
    let base_done = history
        .events
        .iter()
        .filter_map(done_at)
        .filter(|t| *t >= spec.baseline_from && *t < spec.overload_start)
        .count();
    let baseline = base_done as f64 / base_span;
    let required = baseline * spec.recover_frac;
    if baseline == 0.0 {
        return Ok(()); // An idle run cannot collapse.
    }
    let mut achieved: f64 = 0.0;
    for k in 0..spec.windows {
        let from = spec.overload_end + spec.window.mul_f64(f64::from(k));
        let until = from + spec.window;
        let done = history
            .events
            .iter()
            .filter_map(done_at)
            .filter(|t| *t >= from && *t < until)
            .count();
        achieved = achieved.max(done as f64 / spec.window.as_secs_f64());
        if achieved >= required {
            return Ok(());
        }
    }
    Err(Violation::GoodputCollapse {
        baseline,
        achieved,
        required,
        deadline: spec.overload_end + spec.window.mul_f64(f64::from(spec.windows)),
    })
}

/// One grantor serving claim: `[from, until)` in true time.
struct Claim {
    replica: u32,
    ballot: u64,
    from: Time,
    until: Time,
}

/// Collects grantor serving intervals and flags any true-time overlap
/// between claims of distinct replicas.
fn check_grantor_claims(history: &History, violations: &mut Vec<Violation>) {
    let mut open: Vec<(u32, u64, Time)> = Vec::new();
    let mut claims: Vec<Claim> = Vec::new();
    for e in &history.events {
        match e {
            HistoryEvent::GrantorAcquired {
                replica,
                ballot,
                at,
            } => {
                open.push((*replica, *ballot, *at));
            }
            HistoryEvent::GrantorCeded {
                replica,
                ballot,
                at,
            } => {
                // Match the earliest open claim with the same identity;
                // a cede without a matching acquire is ignored (a replica
                // may notice expiry of a claim recorded before the
                // recorder attached).
                if let Some(pos) = open
                    .iter()
                    .position(|(r, b, _)| r == replica && b == ballot)
                {
                    let (_, _, from) = open.remove(pos);
                    claims.push(Claim {
                        replica: *replica,
                        ballot: *ballot,
                        // Backdated cedes saturate at the acquire instant:
                        // an empty claim is fine, a negative one is not
                        // representable.
                        until: (*at).max(from),
                        from,
                    });
                }
            }
            _ => {}
        }
    }
    // Claims never ceded stay open to the end of the recorded history.
    for (replica, ballot, from) in open {
        claims.push(Claim {
            replica,
            ballot,
            from,
            until: Time::MAX,
        });
    }
    claims.sort_by_key(|c| (c.from, c.replica, c.ballot));
    for i in 0..claims.len() {
        for j in i + 1..claims.len() {
            let (a, b) = (&claims[i], &claims[j]);
            if a.replica == b.replica {
                // One host re-acquiring (renewal, or a fresh ballot after
                // its own claim lapsed) is not a split brain.
                continue;
            }
            let overlap_from = a.from.max(b.from);
            let overlap_until = a.until.min(b.until);
            if overlap_from < overlap_until {
                violations.push(Violation::TwoGrantors {
                    replica_a: a.replica,
                    ballot_a: a.ballot,
                    replica_b: b.replica,
                    ballot_b: b.ballot,
                    overlap_from,
                    overlap_until,
                });
            }
        }
    }
}

/// The staleness of each violating read: how long before the read
/// *completed* its returned version had already been superseded. For
/// [`Violation::TwoGrantors`] the reported span is the length of the
/// split-brain window itself (saturating when a claim was still open at
/// the end of the history).
pub fn staleness_of(violations: &[Violation]) -> Vec<Dur> {
    violations
        .iter()
        .filter_map(|v| match v {
            Violation::StaleRead {
                end, valid_until, ..
            } => Some(end.saturating_since(*valid_until)),
            Violation::TwoGrantors {
                overlap_from,
                overlap_until,
                ..
            } => Some(overlap_until.saturating_since(*overlap_from)),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: ClientId = ClientId(0);

    fn read(h: &mut History, op: u64, res: Res, v: u64, start_s: u64, end_s: u64) {
        h.push(HistoryEvent::ReadStart {
            client: C,
            op: OpId(op),
            resource: res,
            at: Time::from_secs(start_s),
        });
        h.push(HistoryEvent::ReadDone {
            client: C,
            op: OpId(op),
            resource: res,
            version: Version(v),
            at: Time::from_secs(end_s),
            from_cache: false,
        });
    }

    fn commit(h: &mut History, res: Res, v: u64, at_s: u64) {
        h.push(HistoryEvent::Commit {
            resource: res,
            version: Version(v),
            writer: None,
            at: Time::from_secs(at_s),
        });
    }

    #[test]
    fn initial_version_reads_are_legal() {
        let mut h = History::new();
        read(&mut h, 1, 1, 1, 1, 2);
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn read_of_current_version_is_legal() {
        let mut h = History::new();
        commit(&mut h, 1, 2, 5);
        read(&mut h, 1, 1, 2, 6, 7);
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn read_overlapping_commit_may_return_either_version() {
        let mut h = History::new();
        commit(&mut h, 1, 2, 5);
        // Read spanning the commit: old version legal...
        read(&mut h, 1, 1, 1, 4, 6);
        // ...and new version legal.
        read(&mut h, 2, 1, 2, 4, 6);
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn stale_read_is_flagged_with_staleness() {
        let mut h = History::new();
        commit(&mut h, 1, 2, 5);
        // Entirely after the commit, yet returned version 1.
        read(&mut h, 1, 1, 1, 8, 9);
        let violations = check_history(&h).unwrap_err();
        assert_eq!(violations.len(), 1);
        assert!(
            matches!(violations[0], Violation::StaleRead { valid_until, .. }
            if valid_until == Time::from_secs(5))
        );
        let st = staleness_of(&violations);
        assert_eq!(st, vec![Dur::from_secs(4)]);
    }

    #[test]
    fn future_version_before_commit_is_flagged() {
        let mut h = History::new();
        commit(&mut h, 1, 2, 10);
        // Read completed at 5 s but returned version 2 (committed at 10 s).
        read(&mut h, 1, 1, 2, 4, 5);
        let violations = check_history(&h).unwrap_err();
        assert!(matches!(violations[0], Violation::StaleRead { .. }));
    }

    #[test]
    fn unknown_version_is_flagged() {
        let mut h = History::new();
        read(&mut h, 1, 1, 7, 1, 2);
        let violations = check_history(&h).unwrap_err();
        assert!(matches!(
            violations[0],
            Violation::UnknownVersion {
                version: Version(7),
                ..
            }
        ));
    }

    #[test]
    fn non_monotonic_commits_flagged() {
        let mut h = History::new();
        commit(&mut h, 1, 3, 5);
        commit(&mut h, 1, 2, 6);
        let violations = check_history(&h).unwrap_err();
        assert!(violations.iter().any(|v| matches!(
            v,
            Violation::NonMonotonicCommit {
                version: Version(2),
                ..
            }
        )));
    }

    #[test]
    fn lost_write_is_flagged() {
        let mut h = History::new();
        h.push(HistoryEvent::WriteStart {
            client: C,
            op: OpId(1),
            resource: 1,
            at: Time::from_secs(1),
        });
        h.push(HistoryEvent::WriteDone {
            client: C,
            op: OpId(1),
            resource: 1,
            version: Version(2),
            at: Time::from_secs(2),
        });
        let violations = check_history(&h).unwrap_err();
        assert!(matches!(violations[0], Violation::LostWrite { .. }));
    }

    #[test]
    fn write_with_commit_is_legal() {
        let mut h = History::new();
        h.push(HistoryEvent::WriteStart {
            client: C,
            op: OpId(1),
            resource: 1,
            at: Time::from_secs(1),
        });
        commit(&mut h, 1, 2, 1);
        h.push(HistoryEvent::WriteDone {
            client: C,
            op: OpId(1),
            resource: 1,
            version: Version(2),
            at: Time::from_secs(2),
        });
        assert!(check_history(&h).is_ok());
    }

    fn acquire(h: &mut History, replica: u32, ballot: u64, at_s: u64) {
        h.push(HistoryEvent::GrantorAcquired {
            replica,
            ballot,
            at: Time::from_secs(at_s),
        });
    }

    fn cede(h: &mut History, replica: u32, ballot: u64, at_s: u64) {
        h.push(HistoryEvent::GrantorCeded {
            replica,
            ballot,
            at: Time::from_secs(at_s),
        });
    }

    #[test]
    fn sequential_grantor_handoff_is_legal() {
        let mut h = History::new();
        acquire(&mut h, 0, 10, 1);
        cede(&mut h, 0, 10, 5);
        acquire(&mut h, 1, 21, 5); // back-to-back handoff at the boundary
        cede(&mut h, 1, 21, 9);
        acquire(&mut h, 2, 32, 12);
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn overlapping_grantors_are_flagged_with_the_window() {
        let mut h = History::new();
        acquire(&mut h, 0, 10, 1);
        acquire(&mut h, 1, 21, 4);
        cede(&mut h, 0, 10, 6);
        cede(&mut h, 1, 21, 9);
        let violations = check_history(&h).unwrap_err();
        assert_eq!(violations.len(), 1);
        match &violations[0] {
            Violation::TwoGrantors {
                replica_a,
                replica_b,
                overlap_from,
                overlap_until,
                ..
            } => {
                assert_eq!((*replica_a, *replica_b), (0, 1));
                assert_eq!(*overlap_from, Time::from_secs(4));
                assert_eq!(*overlap_until, Time::from_secs(6));
            }
            other => panic!("expected TwoGrantors, got {other:?}"),
        }
        // staleness_of reports the split-brain window length.
        assert_eq!(staleness_of(&violations), vec![Dur::from_secs(2)]);
    }

    #[test]
    fn unceded_claim_overlaps_everything_after_it() {
        let mut h = History::new();
        acquire(&mut h, 0, 10, 1); // never ceded — e.g. fencing disabled
        acquire(&mut h, 1, 21, 50);
        let violations = check_history(&h).unwrap_err();
        assert!(matches!(
            violations[0],
            Violation::TwoGrantors {
                overlap_until: Time::MAX,
                ..
            }
        ));
    }

    #[test]
    fn same_replica_reacquiring_is_not_split_brain() {
        let mut h = History::new();
        // Renewal under a new ballot before the backdated cede of the old
        // claim lands: one host, no hazard.
        acquire(&mut h, 2, 10, 1);
        acquire(&mut h, 2, 30, 4);
        cede(&mut h, 2, 10, 6);
        cede(&mut h, 2, 30, 9);
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn backdated_cede_before_acquire_clamps_to_empty_claim() {
        let mut h = History::new();
        acquire(&mut h, 0, 10, 5);
        cede(&mut h, 0, 10, 3); // backdated past the acquire: clamps to [5,5)
        acquire(&mut h, 1, 21, 4);
        cede(&mut h, 1, 21, 9);
        assert!(check_history(&h).is_ok());
    }

    /// `n` completed reads spread uniformly over `[from_s, until_s)`.
    fn completions(h: &mut History, n: u64, from_s: u64, until_s: u64) {
        let span = (until_s - from_s) * 1_000; // milliseconds
        for i in 0..n {
            let at = Time::from_secs(from_s) + Dur::from_millis(i * span / n);
            h.push(HistoryEvent::ReadDone {
                client: C,
                op: OpId(i),
                resource: 1,
                version: Version(1),
                at,
                from_cache: true,
            });
        }
    }

    fn spec() -> GoodputSpec {
        GoodputSpec {
            baseline_from: Time::ZERO,
            overload_start: Time::from_secs(10),
            overload_end: Time::from_secs(20),
            window: Dur::from_secs(5),
            windows: 4,
            recover_frac: 0.9,
        }
    }

    #[test]
    fn recovered_goodput_passes() {
        let mut h = History::new();
        completions(&mut h, 100, 0, 10); // baseline: 10 ops/s
        completions(&mut h, 10, 10, 20); // collapse *during* overload is fine
        completions(&mut h, 200, 25, 40); // second window onward: ~13 ops/s
        assert!(check_goodput(&h, spec()).is_ok());
    }

    #[test]
    fn unrecovered_goodput_is_flagged() {
        let mut h = History::new();
        completions(&mut h, 100, 0, 10); // baseline: 10 ops/s
        completions(&mut h, 40, 20, 40); // post-overload: 2 ops/s forever
        let v = check_goodput(&h, spec()).unwrap_err();
        match v {
            Violation::GoodputCollapse {
                baseline,
                achieved,
                required,
                deadline,
            } => {
                assert!((baseline - 10.0).abs() < 0.1);
                assert!(achieved < required, "{achieved} vs {required}");
                assert_eq!(deadline, Time::from_secs(40));
            }
            other => panic!("expected GoodputCollapse, got {other:?}"),
        }
    }

    #[test]
    fn late_recovery_within_k_windows_passes() {
        let mut h = History::new();
        completions(&mut h, 100, 0, 10); // baseline: 10 ops/s
                                         // Dead for three windows, roars back in the fourth.
        completions(&mut h, 60, 35, 40);
        assert!(check_goodput(&h, spec()).is_ok());
    }

    #[test]
    fn idle_baseline_cannot_collapse() {
        let h = History::new();
        assert!(check_goodput(&h, spec()).is_ok());
    }

    #[test]
    fn reads_between_many_commits() {
        let mut h = History::new();
        for (v, t) in [(2u64, 10u64), (3, 20), (4, 30)] {
            commit(&mut h, 1, v, t);
        }
        read(&mut h, 1, 1, 3, 22, 23); // current then: ok
        read(&mut h, 2, 1, 2, 25, 26); // superseded at 20: stale
        read(&mut h, 3, 1, 4, 35, 36); // ok
        let violations = check_history(&h).unwrap_err();
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::StaleRead { op: OpId(2), .. }
        ));
    }
}
