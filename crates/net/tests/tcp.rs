//! The TCP transport against a live sharded service, in-process but over
//! real loopback sockets: the grant path, batching, Shed, deadline
//! propagation across the socket boundary, and reconnection.

use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lease_clock::{Clock, Dur, WallClock};
use lease_core::{
    ClientId, ErrorReason, LeaseServer, MemStorage, ReqId, ServerConfig, Storage, ToClient,
    ToServer,
};
use lease_net::tcp::FrameAccum;
use lease_net::{connect_as, NetServer};
use lease_svc::{Egress, EgressSink, LeaseService, SvcConfig, SvcHooks};
use lease_wire::{frame_len, frame_messages, Dir, FrameBuilder};

type R = u64;
type D = u64;

struct Harness {
    service: LeaseService<R, D>,
    net: NetServer,
    clock: Arc<dyn Clock>,
}

fn start(shards: usize, clients: usize, files: u64) -> Harness {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let egress: Egress<R, D> = Egress::new(clients, 1024);
    let sink = Arc::new(EgressSink::new(egress.clone()));
    let service = LeaseService::spawn(
        SvcConfig {
            shards,
            ..SvcConfig::default()
        },
        sink,
        SvcHooks {
            clock: Some(Arc::clone(&clock)),
            ..SvcHooks::default()
        },
        move |_| {
            let mut store: MemStorage<R, D> = MemStorage::new();
            for r in 0..files {
                store.insert(r, r);
            }
            (
                LeaseServer::new(ServerConfig::fixed(Dur::from_secs(5))),
                Box::new(store) as Box<dyn Storage<R, D> + Send>,
            )
        },
    );
    let net = NetServer::bind("127.0.0.1:0", service.handle(), &egress, Arc::clone(&clock))
        .expect("bind loopback");
    Harness {
        service,
        net,
        clock,
    }
}

/// A minimal blocking wire client: one socket, synchronous RPC.
struct WireClient {
    stream: std::net::TcpStream,
    accum: FrameAccum,
    out: Vec<u8>,
    who: ClientId,
}

impl WireClient {
    fn connect(h: &Harness, who: ClientId) -> WireClient {
        let stream = connect_as(&h.net.local_addr(), who).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .expect("set timeout");
        WireClient {
            stream,
            accum: FrameAccum::new(),
            out: Vec::new(),
            who,
        }
    }

    fn send(&mut self, msgs: &[(ToServer<R, D>, Option<Dur>)]) {
        self.out.clear();
        let mut fb = FrameBuilder::begin(&mut self.out, Dir::C2s, self.who);
        for (m, d) in msgs {
            fb.push_c2s(&mut self.out, m, *d);
        }
        fb.finish(&mut self.out);
        self.stream.write_all(&self.out).expect("write frame");
    }

    /// Receives replies until `n` messages have arrived or 5s pass.
    fn recv(&mut self, n: usize) -> Vec<ToClient<R, D>> {
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.len() < n && Instant::now() < deadline {
            while let Ok(Some(len)) = frame_len(self.accum.bytes()) {
                if self.accum.bytes().len() < len {
                    break;
                }
                {
                    let frame = &self.accum.bytes()[..len];
                    let (_, mut it) = frame_messages(frame).expect("valid reply frame");
                    while let Some(m) = it.next_s2c::<R, D>().expect("decode reply") {
                        got.push(m);
                    }
                }
                self.accum.consume(len);
            }
            if got.len() >= n {
                break;
            }
            match self.accum.fill(&mut self.stream) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => panic!("read: {e}"),
            }
        }
        got
    }
}

#[test]
fn fetch_over_tcp_grants() {
    let h = start(2, 2, 16);
    let mut c = WireClient::connect(&h, ClientId(0));
    c.send(&[(
        ToServer::Fetch {
            req: ReqId(1),
            resource: 3,
            cached: None,
            also_extend: Vec::new(),
        },
        None,
    )]);
    let replies = c.recv(1);
    match &replies[..] {
        [ToClient::Grants { req, grants }] => {
            assert_eq!(*req, ReqId(1));
            assert_eq!(grants.len(), 1);
            assert_eq!(grants[0].resource, 3);
            assert_eq!(grants[0].data, Some(3));
            assert!(grants[0].term > Dur::ZERO);
        }
        other => panic!("expected one grant, got {other:?}"),
    }
    let snap = h.net.counters().snapshot();
    assert!(snap.msgs_in >= 1 && snap.msgs_out >= 1);
    h.net.shutdown();
    h.service.shutdown();
}

#[test]
fn batched_fetches_coalesce_on_the_wire() {
    let h = start(2, 1, 64);
    let mut c = WireClient::connect(&h, ClientId(0));
    // One frame carrying 32 fetches; replies must arrive in far fewer
    // writes than messages (the writer coalesces per wakeup).
    let batch: Vec<(ToServer<R, D>, Option<Dur>)> = (0..32)
        .map(|i| {
            (
                ToServer::Fetch {
                    req: ReqId(i),
                    resource: i,
                    cached: None,
                    also_extend: Vec::new(),
                },
                None,
            )
        })
        .collect();
    c.send(&batch);
    let replies = c.recv(32);
    assert_eq!(replies.len(), 32, "all 32 fetches answered");
    let snap = h.net.counters().snapshot();
    assert_eq!(snap.msgs_out, 32);
    assert!(
        snap.write_calls < 32,
        "replies must coalesce: {} writes for {} msgs",
        snap.write_calls,
        snap.msgs_out
    );
    h.net.shutdown();
    h.service.shutdown();
}

/// The satellite test: an op whose deadline expires in flight is dropped
/// server-side — counted, never granted.
#[test]
fn expired_deadline_is_dropped_never_granted() {
    let h = start(1, 1, 8);
    let mut c = WireClient::connect(&h, ClientId(0));

    // Remaining = 0: by the time the reader anchors it and the shard
    // (or the door check) looks again, it has expired. The op must die
    // server-side.
    c.send(&[(
        ToServer::Fetch {
            req: ReqId(7),
            resource: 1,
            cached: None,
            also_extend: Vec::new(),
        },
        Some(Dur::ZERO),
    )]);
    // A live op behind it, so we can bound the wait by its reply.
    c.send(&[(
        ToServer::Fetch {
            req: ReqId(8),
            resource: 2,
            cached: None,
            also_extend: Vec::new(),
        },
        Some(Dur::from_secs(30)),
    )]);

    let replies = c.recv(1);
    for r in &replies {
        if let ToClient::Grants { req, .. } = r {
            assert_ne!(*req, ReqId(7), "expired op must never be granted");
        }
    }
    assert!(
        replies
            .iter()
            .any(|r| matches!(r, ToClient::Grants { req, .. } if *req == ReqId(8))),
        "live op must be granted; got {replies:?}"
    );

    let door = h.net.counters().snapshot().expired_at_door;
    let shard = h.service.stats().expect("stats").counters.expired_drops;
    assert_eq!(
        door + shard,
        1,
        "the dead op must be counted exactly once (door={door}, shard={shard})"
    );
    h.net.shutdown();
    h.service.shutdown();
}

/// Shed must cross the wire like any reply: admission control refuses,
/// the client sees `ErrorReason::Shed` with a retry hint.
#[test]
fn shed_crosses_the_wire() {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let egress: Egress<R, D> = Egress::new(1, 1024);
    let sink = Arc::new(EgressSink::new(egress.clone()));
    let service = LeaseService::spawn(
        SvcConfig {
            shards: 1,
            // Watermark 0: every cold fetch is shed.
            admission: Some(lease_svc::AdmissionControl {
                shed_watermark: 0.0,
                ..lease_svc::AdmissionControl::default()
            }),
            ..SvcConfig::default()
        },
        sink,
        SvcHooks {
            clock: Some(Arc::clone(&clock)),
            ..SvcHooks::default()
        },
        move |_| {
            let mut store: MemStorage<R, D> = MemStorage::new();
            store.insert(1, 1);
            (
                LeaseServer::new(ServerConfig::fixed(Dur::from_secs(5))),
                Box::new(store) as Box<dyn Storage<R, D> + Send>,
            )
        },
    );
    let net = NetServer::bind("127.0.0.1:0", service.handle(), &egress, Arc::clone(&clock))
        .expect("bind");
    let h = Harness {
        service,
        net,
        clock,
    };
    let mut c = WireClient::connect(&h, ClientId(0));
    c.send(&[(
        ToServer::Fetch {
            req: ReqId(1),
            resource: 1,
            cached: None,
            also_extend: Vec::new(),
        },
        None,
    )]);
    let replies = c.recv(1);
    match &replies[..] {
        [ToClient::Error {
            req,
            reason: ErrorReason::Shed { retry_after },
        }] => {
            assert_eq!(*req, ReqId(1));
            assert!(*retry_after > Dur::ZERO);
        }
        other => panic!("expected Shed over TCP, got {other:?}"),
    }
    h.net.shutdown();
    h.service.shutdown();
}

/// A client that disconnects and reconnects picks its replies back up;
/// replies sent while it was gone are discarded (not stalled on), and
/// retransmission recovers them.
#[test]
fn reconnect_resumes_replies() {
    let h = start(1, 1, 8);
    let fetch = |req: u64| {
        (
            ToServer::Fetch {
                req: ReqId(req),
                resource: 1,
                cached: None,
                also_extend: Vec::new(),
            },
            None,
        )
    };

    let mut c1 = WireClient::connect(&h, ClientId(0));
    c1.send(&[fetch(1)]);
    assert_eq!(c1.recv(1).len(), 1);
    drop(c1);

    // Reconnect with the same id; retransmit (the reply to a request
    // sent while disconnected would have been discarded).
    let mut c2 = WireClient::connect(&h, ClientId(0));
    c2.send(&[fetch(2)]);
    let replies = c2.recv(1);
    assert!(
        replies
            .iter()
            .any(|r| matches!(r, ToClient::Grants { req, .. } if *req == ReqId(2))),
        "reply after reconnect; got {replies:?}"
    );
    h.net.shutdown();
    h.service.shutdown();
}

/// Corrupt bytes drop the connection (counted), they never panic the
/// server, and other clients are unaffected.
#[test]
fn garbage_drops_connection_not_server() {
    let h = start(1, 2, 8);
    let bad = connect_as(&h.net.local_addr(), ClientId(0)).expect("connect");
    (&bad).write_all(b"GARBAGEGARBAGEGARBAGE").expect("write");
    // Give the reader a moment to refuse.
    let t0 = Instant::now();
    while h.net.counters().snapshot().bad_frames == 0 && t0.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(h.net.counters().snapshot().bad_frames, 1);

    // The server still serves a well-behaved client.
    let mut good = WireClient::connect(&h, ClientId(1));
    good.send(&[(
        ToServer::Fetch {
            req: ReqId(9),
            resource: 2,
            cached: None,
            also_extend: Vec::new(),
        },
        None,
    )]);
    assert_eq!(good.recv(1).len(), 1);
    h.net.shutdown();
    h.service.shutdown();
}

/// The deadline actually uses the server's clock: a remaining of 30s on
/// an op that is processed immediately is *not* dropped — guarding
/// against an accidental absolute-time interpretation of the wire field.
#[test]
fn generous_remaining_is_not_dropped() {
    let h = start(1, 1, 8);
    // Sanity-anchor: the harness clock has advanced well past zero, so a
    // mistaken "deadline = remaining as absolute time" reading would drop.
    assert!(h.clock.now().as_nanos() > 0);
    let mut c = WireClient::connect(&h, ClientId(0));
    c.send(&[(
        ToServer::Fetch {
            req: ReqId(1),
            resource: 1,
            cached: None,
            also_extend: Vec::new(),
        },
        Some(Dur::from_micros(1)),
    )]);
    c.send(&[(
        ToServer::Fetch {
            req: ReqId(2),
            resource: 1,
            cached: None,
            also_extend: Vec::new(),
        },
        Some(Dur::from_secs(30)),
    )]);
    let replies = c.recv(1);
    assert!(
        replies
            .iter()
            .any(|r| matches!(r, ToClient::Grants { req, .. } if *req == ReqId(2))),
        "30s-remaining op must be granted; got {replies:?}"
    );
    h.net.shutdown();
    h.service.shutdown();
}
