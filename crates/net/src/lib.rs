#![warn(missing_docs)]

//! Simulated network substrate for the leases reproduction.
//!
//! The paper (Gray & Cheriton, SOSP 1989, §3.1) charges communication with
//! two parameters: a propagation delay `m_prop` and a per-message processing
//! time `m_proc` spent on the critical path at both sender and receiver, so
//! that a unicast request–response costs `2·m_prop + 4·m_proc` and a
//! multicast with `n` replies costs `2·m_prop + (n+3)·m_proc` — the replies
//! serialize through the originator's CPU ("implosion of responses", §4).
//!
//! [`SimNet`] reproduces exactly that cost model by giving every host a CPU
//! that processes one message at a time, and adds the failure modes a
//! distributed system suffers: message loss, duplication, partitions, and
//! per-host extra propagation delay for wide-area experiments (§3.3).
//!
//! # Examples
//!
//! ```
//! use lease_clock::{Dur, Time};
//! use lease_net::{NetParams, SimNet};
//! use lease_sim::{Dest, Medium, SimRng};
//! use lease_sim::ActorId;
//!
//! let params = NetParams { m_prop: Dur::from_micros(500), m_proc: Dur::from_micros(500) };
//! let mut net = SimNet::new(params);
//! let mut rng = SimRng::seed(0);
//! let mut d = Vec::new();
//! net.route(Time::ZERO, &mut rng, ActorId(0), Dest::One(ActorId(1)), (), &mut d);
//! // One m_proc at the sender, m_prop on the wire, one m_proc at the receiver.
//! assert_eq!(d[0].at, Time::from_micros(1500));
//! ```

pub mod fault;
pub mod params;
pub mod simnet;
pub mod tcp;

pub use fault::{FaultPlanNet, Partition};
pub use params::NetParams;
pub use simnet::SimNet;
pub use tcp::{connect_as, FrameAccum, NetCounters, NetCountersSnapshot, NetServer};
