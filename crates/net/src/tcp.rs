//! Real sockets: the TCP transport that carries `lease-wire` frames
//! between processes.
//!
//! [`NetServer`] is the server half. It bridges a socket's byte stream
//! onto the in-process fast paths **without adding a queue of its own**:
//!
//! * **Ingress** — each connection's reader thread accumulates bytes in
//!   one reusable buffer, decodes complete frames *in place*
//!   (`lease_wire::frame_messages` slices, it does not copy), stages the
//!   messages into a [`BatchBuf`] and publishes them with
//!   `SvcHandle::try_send_batch_at` — the same shard-affine,
//!   one-Release-store-per-shard ring ingress the in-process benchmarks
//!   use. Zero allocations per message in steady state for fixed-size
//!   datum types (pinned by `zero_alloc_wire`). Backpressure from a full
//!   shard lane stops the reader *before* it reads more bytes, so TCP's
//!   own flow control propagates the stall back to the client.
//! * **Deadlines** — frames carry each op's *remaining* time-to-live
//!   (never a remote clock reading); the reader re-anchors it on the
//!   server's clock at decode time. Already-dead ops are dropped at the
//!   door (`expired_at_door`), in-flight expiry is dropped by the owning
//!   shard into `expired_drops` — exactly the in-process contract.
//! * **Egress** — one *perpetual* writer thread per client id owns that
//!   client's [`EgressRx`] lanes and parks on its doorbell. A wakeup
//!   drains every lane, encodes the whole run into one frame batch, and
//!   issues **one** `write_all` on the (Nagle-off) socket — so write
//!   syscalls per op track the measured wakes/op of the ring path, not
//!   the message count. The writer outlives connections: while its
//!   client is disconnected it keeps draining and discards (clients
//!   recover by retransmission, and a full lane nobody drains would
//!   stall shard workers); a reconnect just installs a new stream.
//!
//! The client half lives where the clients live: `lease-rt`'s
//! `NetClient` (real caches over a socket) and `svc_load --net`'s
//! generator processes (raw open-loop load).

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use lease_clock::Clock;
use lease_core::{ClientId, Resource, ToClient};
use lease_svc::{BatchBuf, Egress, EgressRx, SvcError, SvcHandle};
use lease_wire::{frame_len, frame_messages, Dir, FrameBuilder, WireError, WireValue};

/// How long blocked socket reads and parked writers wait before
/// re-checking the shutdown flag.
const POLL: Duration = Duration::from_millis(100);

/// Read chunk size: how much the reader tries to pull per syscall.
const READ_CHUNK: usize = 256 * 1024;

/// Transport-level counters, shared by every connection. All relaxed:
/// they are measurements, not synchronization.
#[derive(Debug, Default)]
pub struct NetCounters {
    /// `read(2)` calls that returned data.
    pub read_calls: AtomicU64,
    /// Bytes received.
    pub bytes_in: AtomicU64,
    /// Messages decoded from received frames.
    pub msgs_in: AtomicU64,
    /// `write(2)`/`writev`-equivalent flushes issued by writer threads.
    pub write_calls: AtomicU64,
    /// Bytes sent.
    pub bytes_out: AtomicU64,
    /// Messages encoded into sent frames.
    pub msgs_out: AtomicU64,
    /// Ops whose propagated deadline had already passed when the reader
    /// staged them (dropped before reaching a shard; the shard-side
    /// count for ops that die later in flight is
    /// `ServerCounters::expired_drops`).
    pub expired_at_door: AtomicU64,
    /// Frames refused by the decoder (corrupt stream → connection drop).
    pub bad_frames: AtomicU64,
}

/// A point-in-time copy of [`NetCounters`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NetCountersSnapshot {
    /// See [`NetCounters::read_calls`].
    pub read_calls: u64,
    /// See [`NetCounters::bytes_in`].
    pub bytes_in: u64,
    /// See [`NetCounters::msgs_in`].
    pub msgs_in: u64,
    /// See [`NetCounters::write_calls`].
    pub write_calls: u64,
    /// See [`NetCounters::bytes_out`].
    pub bytes_out: u64,
    /// See [`NetCounters::msgs_out`].
    pub msgs_out: u64,
    /// See [`NetCounters::expired_at_door`].
    pub expired_at_door: u64,
    /// See [`NetCounters::bad_frames`].
    pub bad_frames: u64,
}

impl NetCounters {
    /// Reads every counter (relaxed).
    pub fn snapshot(&self) -> NetCountersSnapshot {
        NetCountersSnapshot {
            read_calls: self.read_calls.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            msgs_in: self.msgs_in.load(Ordering::Relaxed),
            write_calls: self.write_calls.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            msgs_out: self.msgs_out.load(Ordering::Relaxed),
            expired_at_door: self.expired_at_door.load(Ordering::Relaxed),
            bad_frames: self.bad_frames.load(Ordering::Relaxed),
        }
    }
}

/// The TCP server: accepts connections, feeds decoded frames into a
/// running `lease-svc` service, and streams its egress back out.
///
/// Client identity is by [`ClientId`], established by the connection's
/// opening hello frame; ids must be `< egress.clients()`. A client that
/// reconnects (same id, new socket) resumes exactly where retransmission
/// puts it — the server keeps no per-connection protocol state.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    threads: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving `svc`.
    ///
    /// `egress` must be the same registry the service's `EgressSink` was
    /// built over, with one slot per client id, and `clock` must be the
    /// clock the service's shards compare deadlines against — the reader
    /// anchors wire deadlines on it. Takes over the registry's receiving
    /// half: one perpetual writer thread per client id is spawned here
    /// (each calls [`Egress::rx`], so nothing else may).
    pub fn bind<R, D>(
        addr: &str,
        svc: SvcHandle<R, D>,
        egress: &Egress<R, D>,
        clock: Arc<dyn Clock>,
    ) -> std::io::Result<NetServer>
    where
        R: Resource + WireValue,
        D: Clone + Send + WireValue + 'static,
    {
        let sockaddr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "no address"))?;
        let listener = bind_reuse(sockaddr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(NetCounters::default());
        let mut threads = Vec::new();

        // Perpetual writers: one per client id, for the server's
        // lifetime. Draining unconditionally is what keeps a dead
        // client's lanes from stalling shard workers.
        let slots: Vec<Arc<Mutex<Option<TcpStream>>>> = (0..egress.clients())
            .map(|_| Arc::new(Mutex::new(None)))
            .collect();
        for (c, slot) in slots.iter().enumerate() {
            let rx = egress.rx(c);
            let slot = Arc::clone(slot);
            let stop2 = Arc::clone(&stop);
            let ctrs = Arc::clone(&counters);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("net-writer-{c}"))
                    .spawn(move || writer_loop(rx, slot, stop2, ctrs))
                    .expect("spawn net writer"),
            );
        }

        // The accept loop owns the SvcHandle and clones it per
        // connection (a clone registers a fresh set of ingress lanes —
        // one producer per reader thread, as the ring contract wants).
        let stop2 = Arc::clone(&stop);
        let ctrs = Arc::clone(&counters);
        threads.push(
            std::thread::Builder::new()
                .name("net-accept".into())
                .spawn(move || accept_loop(listener, svc, slots, clock, stop2, ctrs))
                .expect("spawn net accept"),
        );

        Ok(NetServer {
            addr,
            stop,
            counters,
            threads,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared transport counters.
    pub fn counters(&self) -> &NetCounters {
        &self.counters
    }

    /// Stops accepting, closes writers, and joins every thread.
    /// Connected readers exit at their next poll tick.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds a listener with `SO_REUSEADDR` set (Linux; a plain bind
/// elsewhere). A restarted server must re-bind its old port *now*: §5
/// budgets the persisted max term for the outage, and a kernel
/// `TIME_WAIT` timer left behind by the killed process's accepted
/// connections must not stretch that window to a minute. Declared raw to
/// stay dependency-free, like `lease_core::affinity`.
#[cfg(target_os = "linux")]
fn bind_reuse(addr: SocketAddr) -> std::io::Result<TcpListener> {
    use std::os::fd::FromRawFd;
    let SocketAddr::V4(v4) = addr else {
        return TcpListener::bind(addr); // v6: std path, no reuse
    };
    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    // SAFETY: plain syscalls on an fd we own until `from_raw_fd` adopts
    // it; the 16-byte sockaddr_in buffer outlives the bind call.
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let fail = |fd: i32| {
            let e = std::io::Error::last_os_error();
            close(fd);
            e
        };
        let one: i32 = 1;
        if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) != 0 {
            return Err(fail(fd));
        }
        // struct sockaddr_in: family, port (BE), addr (BE), 8 pad bytes.
        let mut sa = [0u8; 16];
        sa[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
        sa[2..4].copy_from_slice(&v4.port().to_be_bytes());
        sa[4..8].copy_from_slice(&v4.ip().octets());
        if bind(fd, sa.as_ptr(), sa.len() as u32) != 0 || listen(fd, 1024) != 0 {
            return Err(fail(fd));
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

/// Fallback for non-Linux hosts: a plain bind, no `SO_REUSEADDR`.
#[cfg(not(target_os = "linux"))]
fn bind_reuse(addr: SocketAddr) -> std::io::Result<TcpListener> {
    TcpListener::bind(addr)
}

fn accept_loop<R, D>(
    listener: TcpListener,
    svc: SvcHandle<R, D>,
    slots: Vec<Arc<Mutex<Option<TcpStream>>>>,
    clock: Arc<dyn Clock>,
    stop: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
) where
    R: Resource + WireValue,
    D: Clone + Send + WireValue + 'static,
{
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let svc = svc.clone();
                let slots = slots.clone();
                let clock = Arc::clone(&clock);
                let stop = Arc::clone(&stop);
                let ctrs = Arc::clone(&counters);
                readers.push(
                    std::thread::Builder::new()
                        .name("net-reader".into())
                        .spawn(move || {
                            let _ = serve_conn(stream, svc, &slots, &clock, &stop, &ctrs);
                        })
                        .expect("spawn net reader"),
                );
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
    for r in readers {
        let _ = r.join();
    }
}

/// One connection's receive loop: hello, then frames until EOF/stop.
fn serve_conn<R, D>(
    mut stream: TcpStream,
    svc: SvcHandle<R, D>,
    slots: &[Arc<Mutex<Option<TcpStream>>>],
    clock: &Arc<dyn Clock>,
    stop: &AtomicBool,
    counters: &NetCounters,
) -> std::io::Result<()>
where
    R: Resource + WireValue,
    D: Clone + Send + WireValue + 'static,
{
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL))?;

    let mut rd = FrameAccum::new();
    let mut batch: BatchBuf<R, D> = BatchBuf::new();
    let mut who: Option<usize> = None;

    'conn: while !stop.load(Ordering::SeqCst) {
        // Decode every complete frame currently buffered.
        loop {
            let complete = match frame_len(rd.bytes()) {
                Ok(Some(len)) if rd.bytes().len() >= len => len,
                Ok(_) => break,
                Err(_) => {
                    counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                    break 'conn;
                }
            };
            let frame = &rd.bytes()[..complete];
            match decode_into(frame, clock, &mut batch, counters) {
                Ok(DecodedFrame::Hello(from)) => {
                    let c = from.0 as usize;
                    if c >= slots.len() {
                        break 'conn; // unknown client id: refuse
                    }
                    who = Some(c);
                    // Install the write half with the client's writer
                    // (replacing any stale stream from a prior
                    // connection).
                    let out = stream.try_clone()?;
                    *slots[c].lock().expect("writer slot poisoned") = Some(out);
                }
                Ok(DecodedFrame::Batch) => {
                    if who.is_none() {
                        break 'conn; // messages before hello: refuse
                    }
                }
                Err(_) => {
                    counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                    break 'conn;
                }
            }
            rd.consume(complete);

            // Publish before reading more: a full shard lane must stall
            // the socket, not grow a buffer.
            while !batch.is_empty() {
                match svc.try_send_batch_at(&mut batch, Some(clock.now())) {
                    Ok(_) => {
                        if !batch.is_empty() {
                            std::thread::yield_now();
                        }
                    }
                    Err(SvcError::Closed) => break 'conn,
                    Err(_) => std::thread::yield_now(),
                }
            }
            if batch.expired > 0 {
                counters
                    .expired_at_door
                    .fetch_add(batch.expired, Ordering::Relaxed);
                batch.expired = 0;
            }
        }

        match rd.fill(&mut stream) {
            Ok(0) => break, // EOF: client closed
            Ok(n) => {
                counters.read_calls.fetch_add(1, Ordering::Relaxed);
                counters.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }

    // Drop our installed write half so the writer stops writing into a
    // dead socket (a reconnect installs a fresh one).
    if let Some(c) = who {
        let mut slot = slots[c].lock().expect("writer slot poisoned");
        if slot.is_some() {
            *slot = None;
        }
    }
    Ok(())
}

enum DecodedFrame {
    Hello(ClientId),
    Batch,
}

/// Decodes one complete frame into `batch`, re-anchoring wire deadlines
/// (remaining time-to-live) on the server's clock.
fn decode_into<R, D>(
    frame: &[u8],
    clock: &Arc<dyn Clock>,
    batch: &mut BatchBuf<R, D>,
    counters: &NetCounters,
) -> Result<DecodedFrame, WireError>
where
    R: Resource + WireValue,
    D: Clone + Send + WireValue + 'static,
{
    let (h, mut it) = frame_messages(frame)?;
    match h.dir {
        Dir::Hello => Ok(DecodedFrame::Hello(h.from)),
        Dir::C2s => {
            let now = clock.now();
            let mut n = 0u64;
            while let Some((msg, remaining)) = it.next_c2s::<R, D>()? {
                let deadline = remaining.map(|rem| now.saturating_add(rem));
                batch.push_deadline(h.from, msg, deadline);
                n += 1;
            }
            counters.msgs_in.fetch_add(n, Ordering::Relaxed);
            Ok(DecodedFrame::Batch)
        }
        Dir::S2c => Err(WireError::BadDir(1)), // servers don't receive replies
    }
}

/// One client's perpetual writer: drain lanes → encode one frame batch →
/// one corked write. Runs for the server's lifetime; while the client is
/// disconnected it drains and discards.
fn writer_loop<R, D>(
    mut rx: EgressRx<R, D>,
    slot: Arc<Mutex<Option<TcpStream>>>,
    stop: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
) where
    R: Resource + WireValue,
    D: Clone + Send + WireValue + 'static,
{
    let mut msgs: Vec<ToClient<R, D>> = Vec::new();
    let mut wire: Vec<u8> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let ticket = rx.bell().ticket();
        if rx.drain_into(&mut msgs, usize::MAX) == 0 {
            rx.bell().wait(ticket, POLL);
            continue;
        }
        // Keep draining until the burst is over: every message that
        // arrives while we're here rides the same write.
        while rx.drain_into(&mut msgs, usize::MAX) > 0 {}

        let mut guard = slot.lock().expect("writer slot poisoned");
        let Some(stream) = guard.as_mut() else {
            msgs.clear(); // disconnected: discard, client will retransmit
            continue;
        };
        wire.clear();
        // A frame holds at most u16::MAX messages; a larger burst rides
        // the same write as several back-to-back frames.
        for chunk in msgs.chunks(u16::MAX as usize) {
            let mut fb = FrameBuilder::begin(&mut wire, Dir::S2c, ClientId(0));
            for m in chunk {
                fb.push_s2c(&mut wire, m);
            }
            fb.finish(&mut wire);
        }
        let n = msgs.len() as u64;
        msgs.clear();
        match stream.write_all(&wire) {
            Ok(()) => {
                counters.write_calls.fetch_add(1, Ordering::Relaxed);
                counters
                    .bytes_out
                    .fetch_add(wire.len() as u64, Ordering::Relaxed);
                counters.msgs_out.fetch_add(n, Ordering::Relaxed);
            }
            Err(_) => *guard = None, // dead socket: discard until reconnect
        }
    }
}

/// A reusable receive buffer: bytes accumulate at the tail, complete
/// frames are consumed from the head, and the remainder slides to the
/// front — no per-read allocation once warm.
pub struct FrameAccum {
    buf: Vec<u8>,
    filled: usize,
}

impl Default for FrameAccum {
    fn default() -> FrameAccum {
        FrameAccum::new()
    }
}

impl FrameAccum {
    /// An empty accumulator.
    pub fn new() -> FrameAccum {
        FrameAccum {
            buf: Vec::new(),
            filled: 0,
        }
    }

    /// The buffered, not-yet-consumed bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf[..self.filled]
    }

    /// Discards `n` consumed bytes from the head.
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.filled);
        self.buf.copy_within(n..self.filled, 0);
        self.filled -= n;
    }

    /// One `read(2)` into the tail. Returns the byte count (0 = EOF).
    pub fn fill<S: Read>(&mut self, stream: &mut S) -> std::io::Result<usize> {
        if self.buf.len() < self.filled + READ_CHUNK {
            self.buf.resize(self.filled + READ_CHUNK, 0);
        }
        let n = stream.read(&mut self.buf[self.filled..])?;
        self.filled += n;
        Ok(n)
    }

    /// Appends bytes directly (tests, non-socket sources).
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        if self.buf.len() < self.filled + bytes.len() {
            self.buf.resize(self.filled + bytes.len(), 0);
        }
        self.buf[self.filled..self.filled + bytes.len()].copy_from_slice(bytes);
        self.filled += bytes.len();
    }
}

/// Client-side connection helper: connects, sets Nagle off, and sends
/// the hello frame that names `who`. Used by `lease-rt`'s `NetClient`
/// and the bench generators.
pub fn connect_as(addr: &SocketAddr, who: ClientId) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut hello = Vec::with_capacity(lease_wire::HEADER_LEN);
    lease_wire::hello_frame(&mut hello, who);
    (&stream).write_all(&hello)?;
    Ok(stream)
}
