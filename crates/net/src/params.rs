//! Network timing parameters (Table 1 of the paper).

use lease_clock::Dur;
use serde::{Deserialize, Serialize};

/// The paper's two message-cost parameters.
///
/// `m_prop` is the one-way propagation delay; `m_proc` is the processing
/// time spent on the critical path for each send and each receive. A
/// message is received `m_prop + 2·m_proc` after the sender decides to send
/// it, and a unicast request–response takes `2·m_prop + 4·m_proc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetParams {
    /// One-way propagation delay.
    pub m_prop: Dur,
    /// Per-message processing time (send or receive).
    pub m_proc: Dur,
}

impl NetParams {
    /// The local-area parameters used for the V-system experiments:
    /// `m_prop = m_proc = 0.5 ms`, giving a 3 ms request–response, in the
    /// "few milliseconds" range of V IPC on MicroVAX II workstations.
    pub fn v_lan() -> NetParams {
        NetParams {
            m_prop: Dur::from_micros(500),
            m_proc: Dur::from_micros(500),
        }
    }

    /// The wide-area parameters of the paper's Figure 3: a 100 ms
    /// round-trip (`2·m_prop + 4·m_proc = 100 ms`).
    pub fn wan_100ms() -> NetParams {
        NetParams {
            m_prop: Dur::from_millis(48),
            m_proc: Dur::from_millis(1),
        }
    }

    /// One-way latency seen by a receiver: `m_prop + 2·m_proc`.
    pub fn one_way(&self) -> Dur {
        self.m_prop + self.m_proc * 2
    }

    /// Unicast request–response time: `2·m_prop + 4·m_proc`.
    pub fn round_trip(&self) -> Dur {
        self.m_prop * 2 + self.m_proc * 4
    }

    /// Multicast-with-`n`-replies completion time:
    /// `2·m_prop + (n+3)·m_proc`.
    pub fn multicast_round(&self, n_replies: u64) -> Dur {
        self.m_prop * 2 + self.m_proc * (n_replies + 3)
    }
}

impl Default for NetParams {
    fn default() -> NetParams {
        NetParams::v_lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v_lan_round_trip_is_3ms() {
        assert_eq!(NetParams::v_lan().round_trip(), Dur::from_millis(3));
    }

    #[test]
    fn wan_round_trip_is_100ms() {
        assert_eq!(NetParams::wan_100ms().round_trip(), Dur::from_millis(100));
    }

    #[test]
    fn multicast_round_matches_paper_formula() {
        let p = NetParams::v_lan();
        // With one reply, multicast degenerates to the unicast cost.
        assert_eq!(p.multicast_round(1), p.round_trip());
        // Each extra reply adds one m_proc at the originator.
        assert_eq!(p.multicast_round(5), p.round_trip() + p.m_proc * 4);
    }

    #[test]
    fn one_way_latency() {
        let p = NetParams::v_lan();
        assert_eq!(p.one_way(), Dur::from_micros(1500));
    }
}
