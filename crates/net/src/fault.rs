//! Network fault descriptions: loss, duplication, partitions.

use std::collections::BTreeSet;

use lease_clock::Time;
use lease_sim::ActorId;
use serde::{Deserialize, Serialize};

/// A network partition: during `[from, until)`, hosts inside `island` can
/// talk among themselves, hosts outside can talk among themselves, but no
/// message crosses the boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Start of the partition (inclusive).
    pub from: Time,
    /// End of the partition (exclusive); heal time.
    pub until: Time,
    /// The isolated island.
    pub island: BTreeSet<ActorId>,
}

impl Partition {
    /// Creates a partition isolating `island` during `[from, until)`.
    pub fn new(from: Time, until: Time, island: impl IntoIterator<Item = ActorId>) -> Partition {
        Partition {
            from,
            until,
            island: island.into_iter().collect(),
        }
    }

    /// Whether a message sent at `now` from `a` to `b` crosses the cut.
    pub fn blocks(&self, now: Time, a: ActorId, b: ActorId) -> bool {
        now >= self.from
            && now < self.until
            && (self.island.contains(&a) != self.island.contains(&b))
    }
}

/// Probabilistic and scheduled network faults applied by
/// [`SimNet`](crate::SimNet).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlanNet {
    /// Probability that any given message is silently lost.
    pub loss_prob: f64,
    /// Probability that a delivered message is delivered twice.
    pub duplicate_prob: f64,
    /// Scheduled partitions.
    #[serde(skip)]
    pub partitions: Vec<Partition>,
}

impl FaultPlanNet {
    /// A fault-free network.
    pub fn none() -> FaultPlanNet {
        FaultPlanNet::default()
    }

    /// A plan with uniform message loss.
    pub fn with_loss(loss_prob: f64) -> FaultPlanNet {
        FaultPlanNet {
            loss_prob,
            ..FaultPlanNet::default()
        }
    }

    /// Adds a scheduled partition.
    pub fn partition(mut self, p: Partition) -> FaultPlanNet {
        self.partitions.push(p);
        self
    }

    /// Whether any scheduled partition blocks `a -> b` at `now`.
    pub fn partitioned(&self, now: Time, a: ActorId, b: ActorId) -> bool {
        self.partitions.iter().any(|p| p.blocks(now, a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_blocks_only_across_cut_in_window() {
        let p = Partition::new(Time::from_secs(10), Time::from_secs(20), [ActorId(1)]);
        // Inside the window, crossing the cut.
        assert!(p.blocks(Time::from_secs(15), ActorId(1), ActorId(2)));
        assert!(p.blocks(Time::from_secs(15), ActorId(2), ActorId(1)));
        // Same side.
        assert!(!p.blocks(Time::from_secs(15), ActorId(2), ActorId(3)));
        assert!(!p.blocks(Time::from_secs(15), ActorId(1), ActorId(1)));
        // Outside the window.
        assert!(!p.blocks(Time::from_secs(5), ActorId(1), ActorId(2)));
        assert!(!p.blocks(Time::from_secs(20), ActorId(1), ActorId(2)));
    }

    #[test]
    fn plan_aggregates_partitions() {
        let plan = FaultPlanNet::none()
            .partition(Partition::new(Time::ZERO, Time::from_secs(1), [ActorId(0)]))
            .partition(Partition::new(
                Time::from_secs(5),
                Time::from_secs(6),
                [ActorId(1)],
            ));
        assert!(plan.partitioned(Time::ZERO, ActorId(0), ActorId(1)));
        assert!(!plan.partitioned(Time::from_secs(2), ActorId(0), ActorId(1)));
        assert!(plan.partitioned(Time::from_millis(5500), ActorId(1), ActorId(2)));
    }
}
