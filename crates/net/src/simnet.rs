//! The simulated network medium.

use std::collections::HashMap;

use lease_clock::{Dur, Time};
use lease_sim::{ActorId, Delivery, Dest, Medium, SimRng};

use crate::fault::FaultPlanNet;
use crate::params::NetParams;

/// A network medium with the paper's `m_prop`/`m_proc` cost model.
///
/// Every host owns a CPU that handles one message at a time: a send costs
/// `m_proc` at the sender, the wire costs `m_prop` (plus any per-host extra
/// propagation), and a receive costs `m_proc` at the receiver, queued behind
/// whatever the receiver's CPU is already doing. A multicast pays the send
/// `m_proc` once, which is what makes multicast approval requests cheaper
/// than per-holder unicasts (§3.1, footnote 6).
///
/// Faults (loss, duplication, partitions) are applied per message at send
/// time from the attached [`FaultPlanNet`].
pub struct SimNet {
    params: NetParams,
    faults: FaultPlanNet,
    /// Uniform extra propagation in `[0, jitter)` per delivery.
    jitter: Dur,
    /// Extra one-way propagation applied to any message to or from a host
    /// (models distant clients, §3.3/§4).
    extra_prop: HashMap<ActorId, Dur>,
    /// When each host's CPU becomes free.
    cpu_free: HashMap<ActorId, Time>,
    /// Sends routed (unicast counts 1, multicast counts 1).
    pub sends: u64,
    /// Deliveries scheduled.
    pub deliveries: u64,
    /// Messages lost to probabilistic loss or partitions.
    pub lost: u64,
}

impl SimNet {
    /// Creates a fault-free network with the given timing parameters.
    pub fn new(params: NetParams) -> SimNet {
        SimNet {
            params,
            faults: FaultPlanNet::none(),
            jitter: Dur::ZERO,
            extra_prop: HashMap::new(),
            cpu_free: HashMap::new(),
            sends: 0,
            deliveries: 0,
            lost: 0,
        }
    }

    /// Attaches a fault plan.
    pub fn with_faults(mut self, faults: FaultPlanNet) -> SimNet {
        self.faults = faults;
        self
    }

    /// Adds uniform random jitter in `[0, jitter)` to every delivery's
    /// propagation; deliveries on the same link may reorder.
    pub fn with_jitter(mut self, jitter: Dur) -> SimNet {
        self.jitter = jitter;
        self
    }

    /// Adds extra one-way propagation for messages to or from `host`.
    pub fn with_extra_prop(mut self, host: ActorId, extra: Dur) -> SimNet {
        self.extra_prop.insert(host, extra);
        self
    }

    /// The timing parameters in force.
    pub fn params(&self) -> NetParams {
        self.params
    }

    fn prop_between(&self, a: ActorId, b: ActorId) -> Dur {
        let extra = self.extra_prop.get(&a).copied().unwrap_or(Dur::ZERO)
            + self.extra_prop.get(&b).copied().unwrap_or(Dur::ZERO);
        self.params.m_prop + extra
    }

    fn occupy_cpu(&mut self, host: ActorId, ready: Time) -> Time {
        let free = self.cpu_free.entry(host).or_insert(Time::ZERO);
        let start = ready.max(*free);
        let done = start + self.params.m_proc;
        *free = done;
        done
    }

    /// Routes one recipient's share of a send: loss, timing, duplication.
    /// The fault dice roll in a fixed order per recipient (loss, then
    /// jitter, then duplication) so runs are bit-identical whatever the
    /// message type or copy strategy.
    #[allow(clippy::too_many_arguments)] // private helper: every arg is hot-path state
    fn route_one<M: Clone>(
        &mut self,
        now: Time,
        rng: &mut SimRng,
        from: ActorId,
        to: ActorId,
        send_done: Time,
        msg: M,
        out: &mut Vec<Delivery<M>>,
    ) {
        if self.faults.partitioned(now, from, to) || rng.chance(self.faults.loss_prob) {
            self.lost += 1;
            return;
        }
        if to == from {
            // Loopback: no wire, but still a receive-side processing slot.
            let at = self.occupy_cpu(to, send_done);
            self.deliveries += 1;
            out.push(Delivery { at, to, msg });
            return;
        }
        let mut arrive = send_done + self.prop_between(from, to);
        if !self.jitter.is_zero() {
            arrive += Dur(rng.below(self.jitter.as_nanos().max(1)));
        }
        let at = self.occupy_cpu(to, arrive);
        self.deliveries += 1;
        if rng.chance(self.faults.duplicate_prob) {
            // The only unicast case that genuinely needs a copy.
            let dup_at = self.occupy_cpu(to, at);
            self.deliveries += 1;
            out.push(Delivery {
                at,
                to,
                msg: msg.clone(),
            });
            out.push(Delivery {
                at: dup_at,
                to,
                msg,
            });
        } else {
            out.push(Delivery { at, to, msg });
        }
    }
}

impl<M: Clone> Medium<M> for SimNet {
    fn route(
        &mut self,
        now: Time,
        rng: &mut SimRng,
        from: ActorId,
        dest: Dest,
        msg: M,
        out: &mut Vec<Delivery<M>>,
    ) {
        self.sends += 1;
        // One send-side m_proc, paid once even for multicast.
        let send_done = self.occupy_cpu(from, now);
        match dest {
            // The unicast fast path moves the message: zero clones unless
            // a duplication fault fires.
            Dest::One(to) => self.route_one(now, rng, from, to, send_done, msg, out),
            Dest::Many(tos) => {
                // n recipients cost n-1 clones: the last takes the original.
                let mut msg = Some(msg);
                let last = tos.len().wrapping_sub(1);
                for (i, to) in tos.into_iter().enumerate() {
                    let m = if i == last {
                        msg.take().expect("original still held")
                    } else {
                        msg.clone().expect("original still held")
                    };
                    self.route_one(now, rng, from, to, send_done, m, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Partition;

    fn net() -> SimNet {
        SimNet::new(NetParams::v_lan())
    }

    fn rng() -> SimRng {
        SimRng::seed(42)
    }

    /// Collects the out-buffer form back into a `Vec` for assertions.
    fn send<M: Clone>(
        n: &mut SimNet,
        now: Time,
        r: &mut SimRng,
        from: ActorId,
        dest: Dest,
        msg: M,
    ) -> Vec<Delivery<M>> {
        let mut out = Vec::new();
        n.route(now, r, from, dest, msg, &mut out);
        out
    }

    const A: ActorId = ActorId(0);
    const B: ActorId = ActorId(1);
    const C: ActorId = ActorId(2);

    #[test]
    fn unicast_latency_is_prop_plus_two_proc() {
        let mut n = net();
        let d = send(&mut n, Time::ZERO, &mut rng(), A, Dest::One(B), ());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].at, Time::ZERO + NetParams::v_lan().one_way());
    }

    #[test]
    fn request_response_costs_paper_round_trip() {
        // A sends to B at t0; B replies the instant it processes the message.
        let mut n = net();
        let mut r = rng();
        let d1 = send(&mut n, Time::ZERO, &mut r, A, Dest::One(B), ());
        let got = d1[0].at;
        let d2 = send(&mut n, got, &mut r, B, Dest::One(A), ());
        assert_eq!(d2[0].at, Time::ZERO + NetParams::v_lan().round_trip());
    }

    #[test]
    fn multicast_replies_serialize_at_originator() {
        // A multicasts to n hosts; all reply. The last reply lands at
        // 2*m_prop + (n+3)*m_proc, the paper's multicast cost.
        let n_replies = 5u64;
        let mut n = net();
        let mut r = rng();
        let members: Vec<ActorId> = (1..=n_replies as usize).map(ActorId).collect();
        let reqs = send(
            &mut n,
            Time::ZERO,
            &mut r,
            A,
            Dest::Many(members.clone()),
            (),
        );
        assert_eq!(reqs.len(), n_replies as usize);
        let mut last = Time::ZERO;
        for d in reqs {
            let replies = send(&mut n, d.at, &mut r, d.to, Dest::One(A), ());
            last = last.max(replies[0].at);
        }
        assert_eq!(
            last,
            Time::ZERO + NetParams::v_lan().multicast_round(n_replies)
        );
    }

    #[test]
    fn sender_cpu_serializes_back_to_back_sends() {
        let mut n = net();
        let mut r = rng();
        let d1 = send(&mut n, Time::ZERO, &mut r, A, Dest::One(B), ());
        let d2 = send(&mut n, Time::ZERO, &mut r, A, Dest::One(C), ());
        // The second send waits for the sender CPU to finish the first.
        assert_eq!(d2[0].at, d1[0].at + NetParams::v_lan().m_proc);
    }

    #[test]
    fn loopback_skips_the_wire() {
        let mut n = net();
        let d = send(&mut n, Time::ZERO, &mut rng(), A, Dest::One(A), ());
        // Send m_proc + receive m_proc, no m_prop.
        assert_eq!(d[0].at, Time::ZERO + NetParams::v_lan().m_proc * 2);
    }

    #[test]
    fn total_loss_drops_everything() {
        let mut n = net().with_faults(FaultPlanNet::with_loss(1.0));
        let d = send(&mut n, Time::ZERO, &mut rng(), A, Dest::One(B), ());
        assert!(d.is_empty());
        assert_eq!(n.lost, 1);
    }

    #[test]
    fn partition_blocks_cross_island_traffic() {
        let plan =
            FaultPlanNet::none().partition(Partition::new(Time::ZERO, Time::from_secs(10), [B]));
        let mut n = net().with_faults(plan);
        let mut r = rng();
        assert!(send(&mut n, Time::from_secs(1), &mut r, A, Dest::One(B), ()).is_empty());
        // Same-side traffic flows.
        assert_eq!(
            send(&mut n, Time::from_secs(1), &mut r, A, Dest::One(C), ()).len(),
            1
        );
        // After healing, traffic flows again.
        assert_eq!(
            send(&mut n, Time::from_secs(11), &mut r, A, Dest::One(B), ()).len(),
            1
        );
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut n = net();
        n.faults.duplicate_prob = 1.0;
        let d = send(&mut n, Time::ZERO, &mut rng(), A, Dest::One(B), ());
        assert_eq!(d.len(), 2);
        assert!(d[1].at > d[0].at);
    }

    #[test]
    fn extra_prop_slows_distant_host() {
        let mut n = net().with_extra_prop(B, Dur::from_millis(50));
        let mut r = rng();
        let d = send(&mut n, Time::ZERO, &mut r, A, Dest::One(B), ());
        assert_eq!(
            d[0].at,
            Time::ZERO + NetParams::v_lan().one_way() + Dur::from_millis(50)
        );
        // C is unaffected: only its own CPU contention applies.
        let d2 = send(&mut n, Time::from_secs(1), &mut r, A, Dest::One(C), ());
        assert_eq!(d2[0].at, Time::from_secs(1) + NetParams::v_lan().one_way());
    }

    #[test]
    fn jitter_spreads_and_can_reorder_deliveries() {
        let mut n = net().with_jitter(Dur::from_millis(20));
        let mut r = rng();
        let mut times = Vec::new();
        for i in 0..40u64 {
            let d = send(
                &mut n,
                Time::from_millis(i * 100),
                &mut r,
                A,
                Dest::One(B),
                (),
            );
            times.push(d[0].at);
        }
        // All deliveries respect the floor (base latency, no negative jitter).
        for (i, t) in times.iter().enumerate() {
            assert!(*t >= Time::from_millis(i as u64 * 100) + NetParams::v_lan().one_way());
        }
        // And the added jitter is not constant.
        let gaps: std::collections::HashSet<u64> = times
            .iter()
            .enumerate()
            .map(|(i, t)| t.as_nanos() - (i as u64 * 100_000_000))
            .collect();
        assert!(gaps.len() > 5, "jitter should vary");
    }

    #[test]
    fn counters_track_traffic() {
        let mut n = net();
        let mut r = rng();
        send(&mut n, Time::ZERO, &mut r, A, Dest::Many(vec![B, C]), ());
        assert_eq!(n.sends, 1);
        assert_eq!(n.deliveries, 2);
    }

    /// A payload whose clones tattle: cloning it is observable.
    #[derive(Debug)]
    struct Tattle(std::rc::Rc<std::cell::Cell<u32>>);
    impl Clone for Tattle {
        fn clone(&self) -> Tattle {
            self.0.set(self.0.get() + 1);
            Tattle(std::rc::Rc::clone(&self.0))
        }
    }

    #[test]
    fn unicast_moves_the_message_without_cloning() {
        let clones = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut n = net();
        let d = send(
            &mut n,
            Time::ZERO,
            &mut rng(),
            A,
            Dest::One(B),
            Tattle(std::rc::Rc::clone(&clones)),
        );
        assert_eq!(d.len(), 1);
        assert_eq!(clones.get(), 0, "a single recipient needs no copy");
    }

    #[test]
    fn duplication_fault_costs_exactly_one_clone() {
        let clones = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut n = net();
        n.faults.duplicate_prob = 1.0;
        let d = send(
            &mut n,
            Time::ZERO,
            &mut rng(),
            A,
            Dest::One(B),
            Tattle(std::rc::Rc::clone(&clones)),
        );
        assert_eq!(d.len(), 2);
        assert_eq!(clones.get(), 1, "only the duplicate is a copy");
    }

    #[test]
    fn multicast_clones_exactly_recipients_minus_one() {
        let clones = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut n = net();
        let d = send(
            &mut n,
            Time::ZERO,
            &mut rng(),
            A,
            Dest::Many(vec![B, C, ActorId(3)]),
            Tattle(std::rc::Rc::clone(&clones)),
        );
        assert_eq!(d.len(), 3);
        assert_eq!(clones.get(), 2, "the last recipient takes the original");
    }
}
