#![warn(missing_docs)]

//! File-server substrate for the leases reproduction.
//!
//! The paper evaluates leases on the V file service; this crate is our
//! stand-in for that service's storage layer: a hierarchical namespace of
//! versioned files with permission bits and the file classes the paper's
//! cache treats specially — *temporary* files (write-mostly, handled outside
//! the consistency protocol, §2) and *installed* files (widely shared,
//! read-mostly commands/headers/libraries, §4).
//!
//! Consistency is *not* this crate's job: the store is the primary copy the
//! lease protocol in `lease-core` protects. What the store does guarantee is
//! write-through durability — a committed write survives a server crash —
//! plus small durable slots the server uses to persist its maximum granted
//! lease term for crash recovery (§2).
//!
//! # Examples
//!
//! ```
//! use bytes::Bytes;
//! use lease_clock::Time;
//! use lease_store::{FileKind, Perms, Store};
//!
//! let mut store = Store::new();
//! let bin = store.mkdir_p("/bin").unwrap();
//! let latex = store
//!     .create_file(bin, "latex", FileKind::Installed, Perms::rx(), Time::ZERO)
//!     .unwrap();
//! store.write(latex, Bytes::from_static(b"ELF..."), Time::from_secs(1)).unwrap();
//! let resolved = store.lookup("/bin/latex").unwrap();
//! assert_eq!(resolved.file().unwrap(), latex);
//! ```

pub mod node;
pub mod path;
pub mod store;

pub use node::{DirEntry, DirId, FileId, FileKind, FileNode, Perms, Version};
pub use store::{Resolved, Store, StoreError};
