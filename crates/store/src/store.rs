//! The store proper: namespace, file bodies, durable slots.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use bytes::Bytes;
use lease_clock::Time;

use crate::node::{DirEntry, DirId, FileId, FileKind, FileNode, Perms, Version};
use crate::path;

/// Errors returned by [`Store`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// The named file or directory does not exist.
    NotFound,
    /// An entry with this name already exists.
    Exists,
    /// A path component named a file where a directory was needed.
    NotADirectory,
    /// The operation needed a file but found a directory.
    IsADirectory,
    /// The path was not an absolute, well-formed name.
    InvalidPath,
    /// A directory slated for removal still has entries.
    NotEmpty,
    /// The file's permission bits forbid the operation.
    PermissionDenied,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StoreError::NotFound => "not found",
            StoreError::Exists => "already exists",
            StoreError::NotADirectory => "not a directory",
            StoreError::IsADirectory => "is a directory",
            StoreError::InvalidPath => "invalid path",
            StoreError::NotEmpty => "directory not empty",
            StoreError::PermissionDenied => "permission denied",
        };
        f.write_str(s)
    }
}

impl std::error::Error for StoreError {}

/// Outcome of a path lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolved {
    /// The path named a file, whose parent directory is also reported —
    /// callers need it because the *name binding* lives in the directory
    /// and is itself leased (§2: supporting repeated opens).
    File {
        /// The file.
        file: FileId,
        /// The directory holding the binding.
        parent: DirId,
    },
    /// The path named a directory.
    Dir(DirId),
}

impl Resolved {
    /// The file id, if the path named a file.
    pub fn file(self) -> Option<FileId> {
        match self {
            Resolved::File { file, .. } => Some(file),
            Resolved::Dir(_) => None,
        }
    }

    /// The directory id, if the path named a directory.
    pub fn dir(self) -> Option<DirId> {
        match self {
            Resolved::Dir(d) => Some(d),
            Resolved::File { .. } => None,
        }
    }
}

#[derive(Debug, Clone)]
struct DirNode {
    entries: BTreeMap<String, DirEntry>,
    /// Bumped on any binding change (create, remove, rename): the version
    /// of the name-to-file information a name lease covers.
    version: Version,
    mtime: Time,
}

/// The primary copy of all data: a hierarchical, versioned file store.
///
/// The store models a disk: everything in it survives a server crash.
/// Volatile server state (the lease table) lives in `lease-core` and is
/// lost on crash; the server's persisted maximum lease term goes through
/// [`Store::put_slot`].
#[derive(Debug, Clone)]
pub struct Store {
    files: HashMap<FileId, FileNode>,
    dirs: HashMap<DirId, DirNode>,
    next_id: u64,
    /// Small named durable values (e.g. `"max_lease_term"`).
    slots: HashMap<String, Vec<u8>>,
    /// Count of committed file writes, for write-through accounting.
    writes_committed: u64,
}

impl Store {
    /// Creates a store containing only an empty root directory.
    pub fn new() -> Store {
        let mut dirs = HashMap::new();
        dirs.insert(
            DirId::ROOT,
            DirNode {
                entries: BTreeMap::new(),
                version: Version(0),
                mtime: Time::ZERO,
            },
        );
        Store {
            files: HashMap::new(),
            dirs,
            next_id: 1,
            slots: HashMap::new(),
            writes_committed: 0,
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Creates an empty file named `name` in `dir`.
    pub fn create_file(
        &mut self,
        dir: DirId,
        name: &str,
        kind: FileKind,
        perms: Perms,
        now: Time,
    ) -> Result<FileId, StoreError> {
        if name.is_empty() || name.contains('/') {
            return Err(StoreError::InvalidPath);
        }
        let id = FileId(self.fresh_id());
        let d = self.dirs.get_mut(&dir).ok_or(StoreError::NotFound)?;
        if d.entries.contains_key(name) {
            return Err(StoreError::Exists);
        }
        d.entries.insert(name.to_owned(), DirEntry::File(id));
        d.version = d.version.next();
        d.mtime = now;
        self.files.insert(id, FileNode::empty(kind, perms, now));
        Ok(id)
    }

    /// Creates a subdirectory named `name` in `dir`.
    pub fn mkdir(&mut self, dir: DirId, name: &str, now: Time) -> Result<DirId, StoreError> {
        if name.is_empty() || name.contains('/') {
            return Err(StoreError::InvalidPath);
        }
        let id = DirId(self.fresh_id());
        let d = self.dirs.get_mut(&dir).ok_or(StoreError::NotFound)?;
        if d.entries.contains_key(name) {
            return Err(StoreError::Exists);
        }
        d.entries.insert(name.to_owned(), DirEntry::Dir(id));
        d.version = d.version.next();
        d.mtime = now;
        self.dirs.insert(
            id,
            DirNode {
                entries: BTreeMap::new(),
                version: Version(0),
                mtime: now,
            },
        );
        Ok(id)
    }

    /// Creates every missing directory along `path` and returns the last.
    pub fn mkdir_p(&mut self, p: &str) -> Result<DirId, StoreError> {
        let parts = path::split(p).ok_or(StoreError::InvalidPath)?;
        let mut cur = DirId::ROOT;
        for part in parts {
            let existing = self
                .dirs
                .get(&cur)
                .ok_or(StoreError::NotFound)?
                .entries
                .get(part)
                .copied();
            cur = match existing {
                Some(DirEntry::Dir(d)) => d,
                Some(DirEntry::File(_)) => return Err(StoreError::NotADirectory),
                None => self.mkdir(cur, part, Time::ZERO)?,
            };
        }
        Ok(cur)
    }

    /// Resolves an absolute path.
    pub fn lookup(&self, p: &str) -> Result<Resolved, StoreError> {
        let parts = path::split(p).ok_or(StoreError::InvalidPath)?;
        let mut cur = DirId::ROOT;
        for (i, part) in parts.iter().enumerate() {
            let d = self.dirs.get(&cur).ok_or(StoreError::NotFound)?;
            match d.entries.get(*part) {
                Some(DirEntry::Dir(next)) => cur = *next,
                Some(DirEntry::File(f)) => {
                    if i + 1 == parts.len() {
                        return Ok(Resolved::File {
                            file: *f,
                            parent: cur,
                        });
                    }
                    return Err(StoreError::NotADirectory);
                }
                None => return Err(StoreError::NotFound),
            }
        }
        Ok(Resolved::Dir(cur))
    }

    /// Reads a file's contents and version.
    pub fn read(&self, file: FileId) -> Result<(&Bytes, Version), StoreError> {
        let f = self.files.get(&file).ok_or(StoreError::NotFound)?;
        if !f.perms.read {
            return Err(StoreError::PermissionDenied);
        }
        Ok((&f.data, f.version))
    }

    /// Metadata access without a permission check (for the server side).
    pub fn file(&self, file: FileId) -> Option<&FileNode> {
        self.files.get(&file)
    }

    /// Overwrites a file (write-through commit); returns the new version.
    pub fn write(&mut self, file: FileId, data: Bytes, now: Time) -> Result<Version, StoreError> {
        let f = self.files.get_mut(&file).ok_or(StoreError::NotFound)?;
        if !f.perms.write && f.kind != FileKind::Installed {
            // Installed files are updated administratively (new versions of
            // commands get installed) even though clients cannot write them.
            return Err(StoreError::PermissionDenied);
        }
        f.data = data;
        f.version = f.version.next();
        f.mtime = now;
        self.writes_committed += 1;
        Ok(f.version)
    }

    /// Writes regardless of permission bits: the administrative path used
    /// for installing new versions of system files (§4).
    pub fn install(&mut self, file: FileId, data: Bytes, now: Time) -> Result<Version, StoreError> {
        let f = self.files.get_mut(&file).ok_or(StoreError::NotFound)?;
        f.data = data;
        f.version = f.version.next();
        f.mtime = now;
        self.writes_committed += 1;
        Ok(f.version)
    }

    /// Removes the named file from `dir`.
    pub fn unlink(&mut self, dir: DirId, name: &str, now: Time) -> Result<FileId, StoreError> {
        let d = self.dirs.get_mut(&dir).ok_or(StoreError::NotFound)?;
        match d.entries.get(name) {
            Some(DirEntry::File(f)) => {
                let f = *f;
                d.entries.remove(name);
                d.version = d.version.next();
                d.mtime = now;
                self.files.remove(&f);
                Ok(f)
            }
            Some(DirEntry::Dir(_)) => Err(StoreError::IsADirectory),
            None => Err(StoreError::NotFound),
        }
    }

    /// Removes an empty subdirectory.
    pub fn rmdir(&mut self, dir: DirId, name: &str, now: Time) -> Result<(), StoreError> {
        let target = {
            let d = self.dirs.get(&dir).ok_or(StoreError::NotFound)?;
            match d.entries.get(name) {
                Some(DirEntry::Dir(t)) => *t,
                Some(DirEntry::File(_)) => return Err(StoreError::NotADirectory),
                None => return Err(StoreError::NotFound),
            }
        };
        if !self
            .dirs
            .get(&target)
            .ok_or(StoreError::NotFound)?
            .entries
            .is_empty()
        {
            return Err(StoreError::NotEmpty);
        }
        self.dirs.remove(&target);
        let d = self.dirs.get_mut(&dir).expect("parent vanished");
        d.entries.remove(name);
        d.version = d.version.next();
        d.mtime = now;
        Ok(())
    }

    /// Renames an entry within or across directories. Renaming is a write
    /// to the *name binding* — both directory versions advance, which is
    /// exactly what invalidates name leases (§2).
    pub fn rename(
        &mut self,
        from_dir: DirId,
        from_name: &str,
        to_dir: DirId,
        to_name: &str,
        now: Time,
    ) -> Result<(), StoreError> {
        if to_name.is_empty() || to_name.contains('/') {
            return Err(StoreError::InvalidPath);
        }
        if !self.dirs.contains_key(&to_dir) {
            return Err(StoreError::NotFound);
        }
        if self
            .dirs
            .get(&to_dir)
            .is_some_and(|d| d.entries.contains_key(to_name))
            && !(from_dir == to_dir && from_name == to_name)
        {
            return Err(StoreError::Exists);
        }
        let entry = {
            let src = self.dirs.get_mut(&from_dir).ok_or(StoreError::NotFound)?;
            let e = src.entries.remove(from_name).ok_or(StoreError::NotFound)?;
            src.version = src.version.next();
            src.mtime = now;
            e
        };
        let dst = self.dirs.get_mut(&to_dir).expect("checked above");
        dst.entries.insert(to_name.to_owned(), entry);
        dst.version = dst.version.next();
        dst.mtime = now;
        Ok(())
    }

    /// A directory's binding version (what a name lease covers).
    pub fn dir_version(&self, dir: DirId) -> Option<Version> {
        self.dirs.get(&dir).map(|d| d.version)
    }

    /// Lists a directory's entries in name order.
    pub fn list(&self, dir: DirId) -> Result<Vec<(&str, DirEntry)>, StoreError> {
        let d = self.dirs.get(&dir).ok_or(StoreError::NotFound)?;
        Ok(d.entries.iter().map(|(k, v)| (k.as_str(), *v)).collect())
    }

    /// Stores a small durable value (survives crashes).
    pub fn put_slot(&mut self, name: &str, value: Vec<u8>) {
        self.slots.insert(name.to_owned(), value);
    }

    /// Reads a durable value.
    pub fn get_slot(&self, name: &str) -> Option<&[u8]> {
        self.slots.get(name).map(Vec::as_slice)
    }

    /// Removes a durable value.
    pub fn remove_slot(&mut self, name: &str) -> Option<Vec<u8>> {
        self.slots.remove(name)
    }

    /// Number of committed writes (write-through accounting).
    pub fn writes_committed(&self) -> u64 {
        self.writes_committed
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

impl Default for Store {
    fn default() -> Store {
        Store::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> Time {
        Time::from_secs(s)
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut s = Store::new();
        let f = s
            .create_file(DirId::ROOT, "a", FileKind::Regular, Perms::rw(), t(0))
            .unwrap();
        assert_eq!(s.read(f).unwrap().1, Version(0));
        let v = s.write(f, Bytes::from_static(b"hello"), t(1)).unwrap();
        assert_eq!(v, Version(1));
        let (data, v2) = s.read(f).unwrap();
        assert_eq!(&data[..], b"hello");
        assert_eq!(v2, Version(1));
        assert_eq!(s.writes_committed(), 1);
    }

    #[test]
    fn lookup_resolves_nested_paths() {
        let mut s = Store::new();
        let usr = s.mkdir(DirId::ROOT, "usr", t(0)).unwrap();
        let lib = s.mkdir(usr, "lib", t(0)).unwrap();
        let f = s
            .create_file(lib, "libc.a", FileKind::Installed, Perms::ro(), t(0))
            .unwrap();
        match s.lookup("/usr/lib/libc.a").unwrap() {
            Resolved::File { file, parent } => {
                assert_eq!(file, f);
                assert_eq!(parent, lib);
            }
            _ => panic!("expected file"),
        }
        assert_eq!(s.lookup("/usr/lib").unwrap().dir(), Some(lib));
        assert_eq!(s.lookup("/").unwrap().dir(), Some(DirId::ROOT));
    }

    #[test]
    fn lookup_errors() {
        let mut s = Store::new();
        let f = s
            .create_file(DirId::ROOT, "f", FileKind::Regular, Perms::rw(), t(0))
            .unwrap();
        let _ = f;
        assert_eq!(s.lookup("/missing").unwrap_err(), StoreError::NotFound);
        assert_eq!(
            s.lookup("/f/deeper").unwrap_err(),
            StoreError::NotADirectory
        );
        assert_eq!(s.lookup("bad").unwrap_err(), StoreError::InvalidPath);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut s = Store::new();
        s.create_file(DirId::ROOT, "x", FileKind::Regular, Perms::rw(), t(0))
            .unwrap();
        assert_eq!(
            s.create_file(DirId::ROOT, "x", FileKind::Regular, Perms::rw(), t(0))
                .unwrap_err(),
            StoreError::Exists
        );
        assert_eq!(
            s.mkdir(DirId::ROOT, "x", t(0)).unwrap_err(),
            StoreError::Exists
        );
    }

    #[test]
    fn mkdir_p_is_idempotent() {
        let mut s = Store::new();
        let a = s.mkdir_p("/a/b/c").unwrap();
        let b = s.mkdir_p("/a/b/c").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn directory_version_advances_on_binding_changes() {
        let mut s = Store::new();
        let v0 = s.dir_version(DirId::ROOT).unwrap();
        s.create_file(DirId::ROOT, "x", FileKind::Regular, Perms::rw(), t(1))
            .unwrap();
        let v1 = s.dir_version(DirId::ROOT).unwrap();
        assert!(v1 > v0);
        s.rename(DirId::ROOT, "x", DirId::ROOT, "y", t(2)).unwrap();
        let v2 = s.dir_version(DirId::ROOT).unwrap();
        assert!(v2 > v1);
        s.unlink(DirId::ROOT, "y", t(3)).unwrap();
        assert!(s.dir_version(DirId::ROOT).unwrap() > v2);
    }

    #[test]
    fn file_writes_do_not_touch_directory_version() {
        let mut s = Store::new();
        let f = s
            .create_file(DirId::ROOT, "x", FileKind::Regular, Perms::rw(), t(0))
            .unwrap();
        let v = s.dir_version(DirId::ROOT).unwrap();
        s.write(f, Bytes::from_static(b"data"), t(1)).unwrap();
        assert_eq!(s.dir_version(DirId::ROOT).unwrap(), v);
    }

    #[test]
    fn rename_across_directories() {
        let mut s = Store::new();
        let a = s.mkdir(DirId::ROOT, "a", t(0)).unwrap();
        let b = s.mkdir(DirId::ROOT, "b", t(0)).unwrap();
        let f = s
            .create_file(a, "f", FileKind::Regular, Perms::rw(), t(0))
            .unwrap();
        s.rename(a, "f", b, "g", t(1)).unwrap();
        assert_eq!(s.lookup("/b/g").unwrap().file(), Some(f));
        assert_eq!(s.lookup("/a/f").unwrap_err(), StoreError::NotFound);
    }

    #[test]
    fn rename_onto_existing_rejected() {
        let mut s = Store::new();
        s.create_file(DirId::ROOT, "x", FileKind::Regular, Perms::rw(), t(0))
            .unwrap();
        s.create_file(DirId::ROOT, "y", FileKind::Regular, Perms::rw(), t(0))
            .unwrap();
        assert_eq!(
            s.rename(DirId::ROOT, "x", DirId::ROOT, "y", t(1))
                .unwrap_err(),
            StoreError::Exists
        );
    }

    #[test]
    fn unlink_and_rmdir() {
        let mut s = Store::new();
        let d = s.mkdir(DirId::ROOT, "d", t(0)).unwrap();
        let f = s
            .create_file(d, "f", FileKind::Regular, Perms::rw(), t(0))
            .unwrap();
        assert_eq!(
            s.rmdir(DirId::ROOT, "d", t(1)).unwrap_err(),
            StoreError::NotEmpty
        );
        assert_eq!(s.unlink(d, "f", t(1)).unwrap(), f);
        assert!(s.read(f).is_err());
        s.rmdir(DirId::ROOT, "d", t(2)).unwrap();
        assert_eq!(s.lookup("/d").unwrap_err(), StoreError::NotFound);
    }

    #[test]
    fn permissions_enforced() {
        let mut s = Store::new();
        let ro = s
            .create_file(DirId::ROOT, "ro", FileKind::Regular, Perms::ro(), t(0))
            .unwrap();
        assert_eq!(
            s.write(ro, Bytes::from_static(b"x"), t(1)).unwrap_err(),
            StoreError::PermissionDenied
        );
        let hidden = s
            .create_file(
                DirId::ROOT,
                "hidden",
                FileKind::Regular,
                Perms {
                    read: false,
                    write: true,
                    exec: false,
                },
                t(0),
            )
            .unwrap();
        assert_eq!(s.read(hidden).unwrap_err(), StoreError::PermissionDenied);
    }

    #[test]
    fn install_bypasses_write_protection() {
        let mut s = Store::new();
        let bin = s
            .create_file(DirId::ROOT, "latex", FileKind::Installed, Perms::rx(), t(0))
            .unwrap();
        // Clients cannot write it...
        assert!(s.write(bin, Bytes::new(), t(1)).is_ok());
        // (Installed files accept the administrative write path.)
        let v = s.install(bin, Bytes::from_static(b"v2"), t(2)).unwrap();
        assert_eq!(v, Version(2));
    }

    #[test]
    fn durable_slots_roundtrip() {
        let mut s = Store::new();
        assert!(s.get_slot("max_term").is_none());
        s.put_slot("max_term", vec![1, 2, 3]);
        assert_eq!(s.get_slot("max_term"), Some(&[1u8, 2, 3][..]));
        assert_eq!(s.remove_slot("max_term"), Some(vec![1, 2, 3]));
        assert!(s.get_slot("max_term").is_none());
    }

    #[test]
    fn list_is_name_ordered() {
        let mut s = Store::new();
        s.create_file(DirId::ROOT, "b", FileKind::Regular, Perms::rw(), t(0))
            .unwrap();
        s.create_file(DirId::ROOT, "a", FileKind::Regular, Perms::rw(), t(0))
            .unwrap();
        let names: Vec<&str> = s
            .list(DirId::ROOT)
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
