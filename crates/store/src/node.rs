//! Identifiers and on-"disk" node types.

use bytes::Bytes;
use lease_clock::Time;
use serde::{Deserialize, Serialize};

/// Identifies a file within a [`Store`](crate::Store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u64);

/// Identifies a directory within a [`Store`](crate::Store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DirId(pub u64);

impl DirId {
    /// The root directory.
    pub const ROOT: DirId = DirId(0);
}

/// A monotonically increasing per-object version number.
///
/// Version 0 means "never written"; the first write produces version 1.
/// The lease protocol and the consistency oracle both key on versions.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Version(pub u64);

impl Version {
    /// The next version.
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

/// The access classes the paper's cache distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileKind {
    /// Ordinary files: fully covered by the consistency protocol.
    Regular,
    /// Temporary files: write-mostly, handled outside the protocol (the V
    /// cache treats them like a local disk, §2/§3.2).
    Temporary,
    /// Installed files: widely shared, read-mostly system files eligible
    /// for the §4 directory-granularity lease optimization.
    Installed,
}

/// Unix-flavoured permission bits, enough to make opens meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Perms {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable (program loading counts as a read in the traces).
    pub exec: bool,
}

impl Perms {
    /// Read-write, the default for user files.
    pub fn rw() -> Perms {
        Perms {
            read: true,
            write: true,
            exec: false,
        }
    }

    /// Read-execute, typical for installed binaries.
    pub fn rx() -> Perms {
        Perms {
            read: true,
            write: false,
            exec: true,
        }
    }

    /// Read-only.
    pub fn ro() -> Perms {
        Perms {
            read: true,
            write: false,
            exec: false,
        }
    }
}

impl Default for Perms {
    fn default() -> Perms {
        Perms::rw()
    }
}

/// A directory entry: name → file or subdirectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirEntry {
    /// A file.
    File(FileId),
    /// A subdirectory.
    Dir(DirId),
}

/// A file's full state.
#[derive(Debug, Clone)]
pub struct FileNode {
    /// Contents.
    pub data: Bytes,
    /// Current version (0 until first written).
    pub version: Version,
    /// Last modification time (server clock).
    pub mtime: Time,
    /// Permission bits.
    pub perms: Perms,
    /// Access class.
    pub kind: FileKind,
}

impl FileNode {
    /// A freshly created, empty file.
    pub fn empty(kind: FileKind, perms: Perms, now: Time) -> FileNode {
        FileNode {
            data: Bytes::new(),
            version: Version(0),
            mtime: now,
            perms,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_next_increments() {
        assert_eq!(Version(0).next(), Version(1));
        assert_eq!(Version(41).next(), Version(42));
    }

    #[test]
    fn perms_presets() {
        assert!(Perms::rw().write);
        assert!(!Perms::rx().write);
        assert!(Perms::rx().exec);
        assert!(!Perms::ro().exec && Perms::ro().read);
    }

    #[test]
    fn empty_file_is_version_zero() {
        let f = FileNode::empty(FileKind::Regular, Perms::rw(), Time::from_secs(3));
        assert_eq!(f.version, Version(0));
        assert!(f.data.is_empty());
        assert_eq!(f.mtime, Time::from_secs(3));
    }
}
