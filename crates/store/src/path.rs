//! Slash-separated path handling.

/// Splits an absolute path into components, rejecting malformed input.
///
/// Rules: the path must start with `/`; empty components (`//`), `.` and
/// `..` are rejected — the file service resolves plain absolute names, like
/// the V naming protocol did. The root `/` yields an empty component list.
///
/// # Examples
///
/// ```
/// use lease_store::path::split;
///
/// assert_eq!(split("/bin/latex").unwrap(), vec!["bin", "latex"]);
/// assert_eq!(split("/").unwrap(), Vec::<&str>::new());
/// assert!(split("relative").is_none());
/// assert!(split("/a//b").is_none());
/// assert!(split("/a/../b").is_none());
/// ```
pub fn split(path: &str) -> Option<Vec<&str>> {
    let rest = path.strip_prefix('/')?;
    if rest.is_empty() {
        return Some(Vec::new());
    }
    let parts: Vec<&str> = rest.split('/').collect();
    if parts
        .iter()
        .any(|p| p.is_empty() || *p == "." || *p == "..")
    {
        return None;
    }
    Some(parts)
}

/// Splits a path into (parent components, final name).
///
/// Returns `None` for the root or malformed paths.
pub fn split_parent(path: &str) -> Option<(Vec<&str>, &str)> {
    let mut parts = split(path)?;
    let name = parts.pop()?;
    Some((parts, name))
}

/// Joins a directory path and a name.
pub fn join(dir: &str, name: &str) -> String {
    if dir == "/" {
        format!("/{name}")
    } else {
        format!("{dir}/{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_components() {
        assert_eq!(split("/a/b/c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(split("/x").unwrap(), vec!["x"]);
    }

    #[test]
    fn root_is_empty() {
        assert_eq!(split("/").unwrap(), Vec::<&str>::new());
    }

    #[test]
    fn rejects_malformed() {
        assert!(split("").is_none());
        assert!(split("a/b").is_none());
        assert!(split("/a/").is_none());
        assert!(split("/a//b").is_none());
        assert!(split("/./a").is_none());
        assert!(split("/a/..").is_none());
    }

    #[test]
    fn parent_split() {
        let (parent, name) = split_parent("/a/b/c").unwrap();
        assert_eq!(parent, vec!["a", "b"]);
        assert_eq!(name, "c");
        assert!(split_parent("/").is_none());
    }

    #[test]
    fn join_handles_root() {
        assert_eq!(join("/", "etc"), "/etc");
        assert_eq!(join("/usr", "lib"), "/usr/lib");
    }
}
