//! Property tests: the store against a flat model of the namespace.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use bytes::Bytes;
use lease_clock::Time;
use lease_store::{DirId, FileKind, Perms, Store, StoreError};
use proptest::prelude::*;

/// A random filesystem operation over a small name universe.
#[derive(Debug, Clone)]
enum FsOp {
    Create(u8),
    Mkdir(u8),
    Write(u8, Vec<u8>),
    Unlink(u8),
    Rename(u8, u8),
    Lookup(u8),
}

fn name(i: u8) -> String {
    format!("n{}", i % 8)
}

fn op_strategy() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        any::<u8>().prop_map(FsOp::Create),
        any::<u8>().prop_map(FsOp::Mkdir),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(n, d)| FsOp::Write(n, d)),
        any::<u8>().prop_map(FsOp::Unlink),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| FsOp::Rename(a, b)),
        any::<u8>().prop_map(FsOp::Lookup),
    ]
}

/// The reference model: name -> Entry in a single directory.
#[derive(Debug, Clone, PartialEq)]
enum Model {
    File(Vec<u8>, u64),
    Dir,
}

proptest! {
    /// Random op sequences keep the store agreeing with a flat model of
    /// the root directory: same entries, same contents, same versions.
    #[test]
    fn store_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut store = Store::new();
        let mut model: HashMap<String, Model> = HashMap::new();
        let mut ids: HashMap<String, lease_store::FileId> = HashMap::new();
        let t = Time::ZERO;

        for op in ops {
            match op {
                FsOp::Create(n) => {
                    let nm = name(n);
                    let r = store.create_file(DirId::ROOT, &nm, FileKind::Regular, Perms::rw(), t);
                    match model.entry(nm) {
                        Entry::Occupied(_) => {
                            prop_assert_eq!(r.unwrap_err(), StoreError::Exists);
                        }
                        Entry::Vacant(e) => {
                            ids.insert(e.key().clone(), r.unwrap());
                            e.insert(Model::File(Vec::new(), 0));
                        }
                    }
                }
                FsOp::Mkdir(n) => {
                    let nm = name(n);
                    let r = store.mkdir(DirId::ROOT, &nm, t);
                    match model.entry(nm) {
                        Entry::Occupied(_) => {
                            prop_assert_eq!(r.unwrap_err(), StoreError::Exists);
                        }
                        Entry::Vacant(e) => {
                            prop_assert!(r.is_ok());
                            e.insert(Model::Dir);
                        }
                    }
                }
                FsOp::Write(n, data) => {
                    let nm = name(n);
                    match model.get_mut(&nm) {
                        Some(Model::File(contents, version)) => {
                            let id = ids[&nm];
                            let v = store.write(id, Bytes::from(data.clone()), t).unwrap();
                            *contents = data;
                            *version += 1;
                            prop_assert_eq!(v.0, *version);
                        }
                        _ => {
                            // Missing or a directory: writing needs a FileId,
                            // which the model says we do not have.
                        }
                    }
                }
                FsOp::Unlink(n) => {
                    let nm = name(n);
                    let r = store.unlink(DirId::ROOT, &nm, t);
                    match model.get(&nm) {
                        Some(Model::File(..)) => {
                            prop_assert!(r.is_ok());
                            model.remove(&nm);
                            ids.remove(&nm);
                        }
                        Some(Model::Dir) => {
                            prop_assert_eq!(r.unwrap_err(), StoreError::IsADirectory)
                        }
                        None => prop_assert_eq!(r.unwrap_err(), StoreError::NotFound),
                    }
                }
                FsOp::Rename(a, b) => {
                    let (from, to) = (name(a), name(b));
                    let r = store.rename(DirId::ROOT, &from, DirId::ROOT, &to, t);
                    let same = from == to;
                    match (model.contains_key(&from), model.contains_key(&to)) {
                        (_, true) if !same => {
                            // The store checks the destination first.
                            prop_assert_eq!(r.unwrap_err(), StoreError::Exists)
                        }
                        (true, _) => {
                            prop_assert!(r.is_ok());
                            if !same {
                                let e = model.remove(&from).unwrap();
                                model.insert(to.clone(), e);
                                if let Some(id) = ids.remove(&from) {
                                    ids.insert(to, id);
                                }
                            }
                        }
                        (false, _) => prop_assert_eq!(r.unwrap_err(), StoreError::NotFound),
                    }
                }
                FsOp::Lookup(n) => {
                    let nm = name(n);
                    let r = store.lookup(&format!("/{nm}"));
                    match model.get(&nm) {
                        Some(Model::File(contents, version)) => {
                            let resolved = r.unwrap();
                            let id = resolved.file().expect("model says file");
                            let (data, v) = store.read(id).unwrap();
                            prop_assert_eq!(&data[..], &contents[..]);
                            prop_assert_eq!(v.0, *version);
                        }
                        Some(Model::Dir) => {
                            prop_assert!(r.unwrap().dir().is_some());
                        }
                        None => prop_assert_eq!(r.unwrap_err(), StoreError::NotFound),
                    }
                }
            }
        }
        // Final sweep: every model entry resolves, directory list matches.
        let listed: Vec<String> =
            store.list(DirId::ROOT).unwrap().iter().map(|(n, _)| n.to_string()).collect();
        let mut expected: Vec<String> = model.keys().cloned().collect();
        expected.sort();
        prop_assert_eq!(listed, expected);
    }

    /// Directory versions advance exactly on binding changes.
    #[test]
    fn dir_version_counts_binding_changes(ops in proptest::collection::vec(any::<u8>(), 1..40)) {
        let mut store = Store::new();
        let mut changes = 0u64;
        for (i, n) in ops.iter().enumerate() {
            let nm = format!("f{}", n % 6);
            if i % 3 == 2 {
                if store.unlink(DirId::ROOT, &nm, Time::ZERO).is_ok() {
                    changes += 1;
                }
            } else if store
                .create_file(DirId::ROOT, &nm, FileKind::Regular, Perms::rw(), Time::ZERO)
                .is_ok()
            {
                changes += 1;
            }
        }
        prop_assert_eq!(store.dir_version(DirId::ROOT).unwrap().0, changes);
    }
}
