//! The world: actors, the event loop, and fault scheduling.

use std::any::Any;
use std::collections::HashSet;

use lease_clock::Time;

use crate::actor::{Actor, ActorId, Cmd, Ctx, TimerId};
use crate::event::{EventQueue, QueueKind};
use crate::medium::{Delivery, Dest, Medium};
use crate::metrics::Metrics;
use crate::rng::SimRng;

enum WorldEvent<M> {
    Start(ActorId),
    Deliver {
        from: ActorId,
        to: ActorId,
        msg: M,
    },
    Timer {
        actor: ActorId,
        id: TimerId,
        key: u64,
        epoch: u32,
    },
    Crash(ActorId),
    Recover(ActorId),
}

struct Slot<M> {
    actor: Box<dyn Actor<M>>,
    crashed: bool,
    /// Incremented on every crash so stale timers can be discarded.
    epoch: u32,
    /// This actor's private random stream, forked from the world seed by
    /// actor id. Streams are splittable and per-actor, so the draws one
    /// actor sees depend only on (seed, its id, its own draw count) —
    /// never on how its handlers interleave with other actors'.
    rng: SimRng,
}

/// The simulation world: owns the actors, the clock, the event queue, the
/// network medium, randomness, and metrics.
///
/// Construction order fixes actor ids: the first [`World::add_actor`] call
/// returns `ActorId(0)`, the next `ActorId(1)`, and so on. Runs are
/// deterministic functions of (seed, actors, scheduled faults).
pub struct World<M> {
    now: Time,
    queue: EventQueue<WorldEvent<M>>,
    actors: Vec<Option<Slot<M>>>,
    medium: Box<dyn Medium<M>>,
    next_timer: u64,
    cancelled: HashSet<u64>,
    /// The medium's stream (the historical root stream, so network draws
    /// are unchanged by the introduction of per-actor streams).
    rng: SimRng,
    metrics: Metrics,
    stopped: bool,
    events_processed: u64,
    /// Scratch reused across [`World::route`] calls so steady-state
    /// routing never allocates a deliveries vector.
    route_buf: Vec<Delivery<M>>,
    /// Scratch reused across actor handler invocations for buffered
    /// commands.
    cmd_buf: Vec<Cmd<M>>,
}

impl<M: 'static> World<M> {
    /// Creates an empty world with the given seed and network medium, on
    /// the default (timer-wheel) event queue.
    pub fn new(seed: u64, medium: impl Medium<M> + 'static) -> World<M> {
        World::with_queue_kind(seed, medium, QueueKind::default())
    }

    /// Like [`World::new`], with an explicit event-queue backend. The
    /// backends are observationally equivalent; benchmarks use this to
    /// compare their cost on identical runs.
    pub fn with_queue_kind(
        seed: u64,
        medium: impl Medium<M> + 'static,
        queue: QueueKind,
    ) -> World<M> {
        World {
            now: Time::ZERO,
            queue: EventQueue::with_kind(queue),
            actors: Vec::new(),
            medium: Box::new(medium),
            next_timer: 0,
            cancelled: HashSet::new(),
            rng: SimRng::seed(seed),
            metrics: Metrics::new(),
            stopped: false,
            events_processed: 0,
            route_buf: Vec::new(),
            cmd_buf: Vec::new(),
        }
    }

    /// Registers an actor; its `on_start` runs at the current time, before
    /// any later-scheduled event.
    pub fn add_actor(&mut self, actor: impl Actor<M>) -> ActorId {
        let id = ActorId(self.actors.len());
        self.actors.push(Some(Slot {
            actor: Box::new(actor),
            crashed: false,
            epoch: 0,
            rng: self.rng.fork(id.0 as u64),
        }));
        self.queue.push(self.now, WorldEvent::Start(id));
        id
    }

    /// The current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the metrics registry (for harness bookkeeping).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Number of events the loop has processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Borrows a registered actor, downcast to its concrete type.
    ///
    /// Returns `None` if the id is unknown or the type does not match.
    pub fn actor<T: Actor<M>>(&self, id: ActorId) -> Option<&T> {
        let slot = self.actors.get(id.0)?.as_ref()?;
        let any: &dyn Any = slot.actor.as_ref();
        any.downcast_ref::<T>()
    }

    /// Mutably borrows a registered actor, downcast to its concrete type.
    pub fn actor_mut<T: Actor<M>>(&mut self, id: ActorId) -> Option<&mut T> {
        let slot = self.actors.get_mut(id.0)?.as_mut()?;
        let any: &mut dyn Any = slot.actor.as_mut();
        any.downcast_mut::<T>()
    }

    /// Whether the actor is currently crashed.
    pub fn is_crashed(&self, id: ActorId) -> bool {
        self.actors
            .get(id.0)
            .and_then(|s| s.as_ref())
            .map(|s| s.crashed)
            .unwrap_or(false)
    }

    /// Schedules a crash of `actor` at time `at`: its volatile state is
    /// dropped (via [`Actor::on_crash`]), pending timers die, and messages
    /// delivered while crashed are lost.
    pub fn schedule_crash(&mut self, at: Time, actor: ActorId) {
        self.queue.push(at, WorldEvent::Crash(actor));
    }

    /// Schedules a restart of `actor` at time `at`; [`Actor::on_recover`]
    /// runs then.
    pub fn schedule_recover(&mut self, at: Time, actor: ActorId) {
        self.queue.push(at, WorldEvent::Recover(actor));
    }

    /// Processes a single event. Returns `false` when the queue is empty or
    /// the world has been stopped.
    pub fn step(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        let Some((at, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.events_processed += 1;
        match ev {
            WorldEvent::Start(id) => self.with_actor(id, |actor, ctx| actor.on_start(ctx)),
            WorldEvent::Deliver { from, to, msg } => {
                if self.is_crashed(to) {
                    self.metrics.inc("sim.dropped_to_crashed");
                } else {
                    self.with_actor(to, |actor, ctx| actor.on_message(ctx, from, msg));
                }
            }
            WorldEvent::Timer {
                actor,
                id,
                key,
                epoch,
            } => {
                if self.cancelled.remove(&id.0) {
                    // Cancelled before firing.
                } else if let Some(slot) = self.actors.get(actor.0).and_then(|s| s.as_ref()) {
                    if !slot.crashed && slot.epoch == epoch {
                        self.with_actor(actor, |a, ctx| a.on_timer(ctx, id, key));
                    }
                }
            }
            WorldEvent::Crash(id) => {
                if let Some(slot) = self.actors.get_mut(id.0).and_then(|s| s.as_mut()) {
                    if !slot.crashed {
                        slot.crashed = true;
                        slot.epoch += 1;
                        slot.actor.on_crash();
                        self.metrics.inc("sim.crashes");
                    }
                }
            }
            WorldEvent::Recover(id) => {
                let recovered = match self.actors.get_mut(id.0).and_then(|s| s.as_mut()) {
                    Some(slot) if slot.crashed => {
                        slot.crashed = false;
                        true
                    }
                    _ => false,
                };
                if recovered {
                    self.metrics.inc("sim.recoveries");
                    self.with_actor(id, |a, ctx| a.on_recover(ctx));
                }
            }
        }
        !self.stopped
    }

    /// Runs until the queue drains, the world stops, or `limit` events have
    /// been processed. Returns the number of events processed.
    pub fn run(&mut self, limit: u64) -> u64 {
        let mut n = 0;
        while n < limit && self.step() {
            n += 1;
        }
        n
    }

    /// Runs until simulated time reaches `t` (events strictly after `t` are
    /// left pending), the queue drains, or the world stops. The clock ends
    /// at `t` unless stopped earlier.
    pub fn run_until(&mut self, t: Time) {
        while !self.stopped {
            match self.queue.peek_time() {
                Some(at) if at <= t => {
                    self.step();
                }
                _ => break,
            }
        }
        if !self.stopped && self.now < t {
            self.now = t;
        }
    }

    /// Runs an actor handler with a fresh context, then applies the
    /// commands it buffered. The command buffer is world-owned scratch:
    /// handlers and `apply` never allocate it in steady state.
    fn with_actor(&mut self, id: ActorId, f: impl FnOnce(&mut dyn Actor<M>, &mut Ctx<'_, M>)) {
        let Some(mut slot) = self.actors.get_mut(id.0).and_then(Option::take) else {
            return;
        };
        debug_assert!(self.cmd_buf.is_empty());
        let mut ctx = Ctx {
            now: self.now,
            me: id,
            next_timer: &mut self.next_timer,
            cmds: std::mem::take(&mut self.cmd_buf),
            rng: &mut slot.rng,
            metrics: &mut self.metrics,
        };
        f(slot.actor.as_mut(), &mut ctx);
        let cmds = ctx.cmds;
        let epoch = slot.epoch;
        self.actors[id.0] = Some(slot);
        self.apply(id, epoch, cmds);
    }

    fn apply(&mut self, from: ActorId, epoch: u32, mut cmds: Vec<Cmd<M>>) {
        for cmd in cmds.drain(..) {
            match cmd {
                Cmd::Send { to, msg } => self.route(from, Dest::One(to), msg),
                Cmd::Multicast { to, msg } => self.route(from, Dest::Many(to), msg),
                Cmd::SetTimer { id, at, key } => {
                    self.queue.push(
                        at,
                        WorldEvent::Timer {
                            actor: from,
                            id,
                            key,
                            epoch,
                        },
                    );
                }
                Cmd::CancelTimer { id } => {
                    self.cancelled.insert(id.0);
                }
                Cmd::Stop => self.stopped = true,
            }
        }
        // Hand the drained buffer back for the next handler.
        self.cmd_buf = cmds;
    }

    fn route(&mut self, from: ActorId, dest: Dest, msg: M) {
        let mut buf = std::mem::take(&mut self.route_buf);
        debug_assert!(buf.is_empty());
        self.medium
            .route(self.now, &mut self.rng, from, dest, msg, &mut buf);
        for Delivery { at, to, msg } in buf.drain(..) {
            debug_assert!(at >= self.now);
            self.queue.push(at, WorldEvent::Deliver { from, to, msg });
        }
        self.route_buf = buf;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::PerfectMedium;
    use lease_clock::Dur;

    /// Echoes every message back and counts what it saw.
    struct Echo {
        seen: u32,
    }
    impl Actor<u32> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: ActorId, msg: u32) {
            self.seen += 1;
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
    }

    struct Kickoff {
        peer: ActorId,
        n: u32,
        seen: u32,
    }
    impl Actor<u32> for Kickoff {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.send(self.peer, self.n);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: ActorId, msg: u32) {
            self.seen += 1;
            if msg > 0 {
                ctx.send(from, msg - 1);
            } else {
                ctx.stop();
            }
        }
    }

    #[test]
    fn ping_pong_until_stop() {
        let mut w = World::new(1, PerfectMedium);
        let echo = w.add_actor(Echo { seen: 0 });
        let _k = w.add_actor(Kickoff {
            peer: echo,
            n: 9,
            seen: 0,
        });
        w.run(10_000);
        let echo_ref: &Echo = w.actor(echo).unwrap();
        assert_eq!(echo_ref.seen, 5);
    }

    struct TimerUser {
        fired: Vec<u64>,
        cancelled: Option<TimerId>,
    }
    impl Actor<()> for TimerUser {
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer_in(Dur::from_secs(1), 1);
            let t = ctx.set_timer_in(Dur::from_secs(2), 2);
            ctx.set_timer_in(Dur::from_secs(3), 3);
            self.cancelled = Some(t);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: ActorId, _: ()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _t: TimerId, key: u64) {
            self.fired.push(key);
            if key == 1 {
                ctx.cancel_timer(self.cancelled.unwrap());
            }
        }
    }

    #[test]
    fn timers_fire_and_cancel() {
        let mut w = World::new(1, PerfectMedium);
        let id = w.add_actor(TimerUser {
            fired: vec![],
            cancelled: None,
        });
        w.run_until(Time::from_secs(10));
        let a: &TimerUser = w.actor(id).unwrap();
        assert_eq!(a.fired, vec![1, 3]);
        assert_eq!(w.now(), Time::from_secs(10));
    }

    struct Crashable {
        timers_fired: u32,
        crashes: u32,
        recoveries: u32,
    }
    impl Actor<()> for Crashable {
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            for i in 1..=5 {
                ctx.set_timer_in(Dur::from_secs(i), i);
            }
        }
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: ActorId, _: ()) {}
        fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: TimerId, _: u64) {
            self.timers_fired += 1;
        }
        fn on_crash(&mut self) {
            self.crashes += 1;
        }
        fn on_recover(&mut self, ctx: &mut Ctx<'_, ()>) {
            self.recoveries += 1;
            ctx.set_timer_in(Dur::from_secs(1), 99);
        }
    }

    #[test]
    fn crash_kills_pending_timers_and_recover_restarts() {
        let mut w = World::new(1, PerfectMedium);
        let id = w.add_actor(Crashable {
            timers_fired: 0,
            crashes: 0,
            recoveries: 0,
        });
        // Crash at 2.5 s: timers at 1 s and 2 s fire, 3/4/5 s die.
        w.schedule_crash(Time::from_millis(2500), id);
        w.schedule_recover(Time::from_secs(4), id);
        w.run_until(Time::from_secs(20));
        let a: &Crashable = w.actor(id).unwrap();
        assert_eq!(a.crashes, 1);
        assert_eq!(a.recoveries, 1);
        // 2 before the crash + 1 set by on_recover.
        assert_eq!(a.timers_fired, 3);
    }

    struct Sender {
        to: ActorId,
    }
    impl Actor<u32> for Sender {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.send(self.to, 42);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: ActorId, _: u32) {}
    }

    #[test]
    fn messages_to_crashed_actor_are_dropped() {
        let mut w = World::new(1, PerfectMedium);
        let echo = w.add_actor(Echo { seen: 0 });
        w.schedule_crash(Time::ZERO, echo);
        let _s = w.add_actor(Sender { to: echo });
        w.run(1000);
        assert_eq!(w.actor::<Echo>(echo).unwrap().seen, 0);
        assert_eq!(w.metrics().counter("sim.dropped_to_crashed"), 1);
    }

    #[test]
    fn determinism_same_seed_same_event_count() {
        let run = |seed| {
            let mut w = World::new(seed, PerfectMedium);
            let echo = w.add_actor(Echo { seen: 0 });
            let _k = w.add_actor(Kickoff {
                peer: echo,
                n: 100,
                seen: 0,
            });
            w.run(100_000);
            w.events_processed()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn downcast_wrong_type_is_none() {
        let mut w = World::new(1, PerfectMedium);
        let echo = w.add_actor(Echo { seen: 0 });
        assert!(w.actor::<Kickoff>(echo).is_none());
        assert!(w.actor::<Echo>(ActorId(99)).is_none());
    }

    #[test]
    fn run_until_does_not_consume_later_events() {
        let mut w = World::new(1, PerfectMedium);
        let id = w.add_actor(TimerUser {
            fired: vec![],
            cancelled: None,
        });
        w.run_until(Time::from_millis(1500));
        assert_eq!(w.actor::<TimerUser>(id).unwrap().fired, vec![1]);
        w.run_until(Time::from_secs(10));
        assert_eq!(w.actor::<TimerUser>(id).unwrap().fired, vec![1, 3]);
    }
}
