//! Seeded, forkable randomness for reproducible simulations.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random-number generator.
///
/// `SimRng` wraps a seeded [`SmallRng`]. Two properties matter for the
/// experiments:
///
/// * the same seed always produces the same run, and
/// * [`SimRng::fork`] derives an independent stream from a label, so that
///   adding a consumer (say, a new fault injector) does not perturb the
///   draws seen by existing consumers.
///
/// # Examples
///
/// ```
/// use lease_sim::SimRng;
///
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut child = a.fork(1);
/// let mut child2 = a.fork(2);
/// let _ = (child.next_u64(), child2.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn seed(seed: u64) -> SimRng {
        SimRng {
            seed,
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent stream identified by `label`.
    ///
    /// Forking is a pure function of `(seed, label)` — it does not consume
    /// entropy from `self` — so streams are stable as code evolves.
    pub fn fork(&self, label: u64) -> SimRng {
        // SplitMix64-style mixing of seed and label.
        let mut z = self.seed ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed(z)
    }

    /// The next `u64` from the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A float uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "SimRng::below(0)");
        self.inner.gen_range(0..n)
    }

    /// An exponentially distributed value with the given rate (per second),
    /// in seconds.
    ///
    /// Used for Poisson inter-arrival times in the workload generators.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn exp_secs(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exp_secs needs a positive rate");
        // Inverse-CDF sampling; (1 - u) avoids ln(0).
        -(1.0 - self.uniform()).ln() / rate
    }

    /// Access to the underlying `rand` generator for distribution sampling.
    pub fn inner(&mut self) -> &mut SmallRng {
        &mut self.inner
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(123);
        let mut b = SimRng::seed(123);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_stable() {
        let root = SimRng::seed(99);
        let mut c1 = root.fork(5);
        let mut c2 = root.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
        // Forking again after draws still yields the same child stream.
        let mut c3 = root.fork(5);
        let mut c4 = SimRng::seed(99).fork(5);
        assert_eq!(c3.next_u64(), c4.next_u64());
    }

    #[test]
    fn fork_labels_independent() {
        let root = SimRng::seed(99);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn exp_secs_mean_close_to_inverse_rate() {
        let mut r = SimRng::seed(7);
        let n = 20_000;
        let rate = 4.0;
        let mean: f64 = (0..n).map(|_| r.exp_secs(rate)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_in_range() {
        let mut r = SimRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
