#![warn(missing_docs)]

//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the substrate on which the leases reproduction runs its
//! experiments: a single-threaded, fully deterministic discrete-event
//! simulator. The paper's evaluation (Gray & Cheriton, SOSP 1989, §3.2)
//! used a trace-driven simulation of the V file cache and server; ours is a
//! general actor-based kernel so that the *same* protocol state machines can
//! run under simulated time here and under wall-clock time in `lease-rt`.
//!
//! Pieces:
//!
//! * [`EventQueue`] — a time-ordered queue with FIFO tie-breaking, the heart
//!   of the kernel. It runs on the `lease-core` hierarchical timer wheel by
//!   default, with a binary-heap backend kept as the executable spec
//!   ([`QueueKind`]).
//! * [`Actor`] / [`World`] — the actor layer: actors receive messages and
//!   timer callbacks through a [`Ctx`] that lets them send, multicast, set
//!   timers, and record metrics.
//! * [`Medium`] — the pluggable network model; `lease-net` supplies the
//!   realistic implementation, and [`PerfectMedium`] delivers instantly for
//!   unit tests.
//! * [`SimRng`] — seeded, forkable randomness so every run is reproducible.
//! * [`Metrics`] — counters and sample histograms harvested by experiments.
//!
//! # Examples
//!
//! A two-actor ping-pong over a perfect network:
//!
//! ```
//! use lease_clock::{Dur, Time};
//! use lease_sim::{Actor, ActorId, Ctx, PerfectMedium, World};
//!
//! struct Pinger { peer: ActorId, count: u32 }
//!
//! impl Actor<u32> for Pinger {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
//!         ctx.send(self.peer, 0);
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: ActorId, msg: u32) {
//!         self.count += 1;
//!         if msg < 10 {
//!             ctx.send(from, msg + 1);
//!         }
//!     }
//! }
//!
//! let mut world = World::new(42, PerfectMedium::default());
//! let a = world.add_actor(Pinger { peer: ActorId(1), count: 0 });
//! let _b = world.add_actor(Pinger { peer: a, count: 0 });
//! world.run_until(Time::from_secs(1));
//! ```

pub mod actor;
pub mod event;
pub mod medium;
pub mod metrics;
pub mod rng;
pub mod world;

pub use actor::{Actor, ActorId, Ctx, TimerId};
pub use event::{EventHandle, EventQueue, QueueKind};
pub use medium::{Delivery, Dest, Medium, PerfectMedium};
pub use metrics::{Histogram, HistogramSummary, Metrics};
pub use rng::SimRng;
pub use world::World;

pub use lease_clock::{Dur, Time};
