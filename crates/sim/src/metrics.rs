//! Counters and sample histograms harvested by the experiments.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A sample-keeping histogram.
///
/// The experiment scales here are modest (at most a few million samples per
/// run), so the histogram keeps every sample and computes exact quantiles.
///
/// # Examples
///
/// ```
/// use lease_sim::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.mean(), 2.5);
/// assert_eq!(h.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() / self.samples.len() as f64
        }
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
            .pipe_finite()
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_finite()
    }

    /// Exact `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank method; 0 if empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        self.samples[rank - 1]
    }

    /// A compact summary for reports.
    pub fn summary(&mut self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}
impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// Summary statistics of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// A registry of named counters and histograms.
///
/// Names are `&'static str` because every metric in this codebase is known
/// at compile time; the `BTreeMap` keeps report output deterministic.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `n` to the named counter.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Increments the named counter by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a sample into the named histogram.
    pub fn observe(&mut self, name: &'static str, v: f64) {
        self.histograms.entry(name).or_default().record(v);
    }

    /// Mutable access to a histogram (creates it if missing).
    pub fn histogram_mut(&mut self, name: &'static str) -> &mut Histogram {
        self.histograms.entry(name).or_default()
    }

    /// Read access to a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_sum_prefix(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Merges another registry into this one (counters add, samples append).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            let dst = self.histograms.entry(k).or_default();
            for s in &h.samples {
                dst.record(*s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.inc("msgs");
        m.add("msgs", 4);
        assert_eq!(m.counter("msgs"), 5);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn histogram_quantiles_exact() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(0.5), 50.0);
        assert_eq!(h.quantile(0.95), 95.0);
        assert_eq!(h.quantile(1.0), 100.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        let s = h.summary();
        assert_eq!(s.count, 0);
    }

    #[test]
    fn record_after_quantile_resorts() {
        let mut h = Histogram::new();
        h.record(5.0);
        assert_eq!(h.quantile(0.5), 5.0);
        h.record(1.0);
        assert_eq!(h.quantile(0.0), 1.0);
    }

    #[test]
    fn prefix_sum() {
        let mut m = Metrics::new();
        m.add("server.msg.extend", 3);
        m.add("server.msg.approve", 2);
        m.add("client.msg.read", 7);
        assert_eq!(m.counter_sum_prefix("server.msg."), 5);
    }

    #[test]
    fn merge_combines() {
        let mut a = Metrics::new();
        a.inc("x");
        a.observe("h", 1.0);
        let mut b = Metrics::new();
        b.add("x", 2);
        b.observe("h", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.histogram_mut("h").count(), 2);
        assert_eq!(a.histogram_mut("h").mean(), 2.0);
    }
}
