//! The time-ordered event queue.
//!
//! Two backends share one contract — pop order is `(at, push order)`,
//! same-instant events FIFO:
//!
//! * [`QueueKind::Heap`] — a `BinaryHeap` of `(at, seq)`-ordered entries.
//!   Every pop pays `O(log n)` comparisons on the full pending set, and
//!   the heap is kept as the *executable specification*: small, obviously
//!   correct, and the reference side of the equivalence property test.
//! * [`QueueKind::Wheel`] — the default: deadlines live on the
//!   hierarchical timer wheel from `lease-core` (1 ms ticks), payloads in
//!   a recycled slab, and events whose tick the wheel has already covered
//!   in a small `ready` heap. Scheduling is O(1) amortized, and each pop
//!   only pays heap comparisons on the *ready* set (the events of the
//!   current instant-neighbourhood), not on every pending timer — which
//!   is what makes simulations whose pending set is dominated by far-out
//!   lease expirations cheap per event.
//!
//! The wheel backend is exact, not approximate: entries keep their
//! requested instant, the wheel only buckets *when they surface*, and the
//! ready heap restores `(at, seq)` order, so both backends pop identical
//! sequences (`tests/prop.rs` pins this, cancellations included).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use lease_clock::Time;
use lease_core::TimerWheel;

/// The wheel backend's tick quantum, nanoseconds (1 ms). The tick is a
/// pure performance knob — it buckets *when entries surface*, never their
/// pop order, which stays exact `(at, seq)` via the ready heap — so it is
/// sized for the workload: simulated message hops are ms-scale, so a 1 ms
/// tick keeps deliveries within level 0 (no cascading on the hot path)
/// while sub-tick events short-circuit into the ready heap directly. The
/// four wheel levels then cover ~4.6 simulated hours before overflow.
const TICK_NS: u64 = 1_000_000;

/// Deadlines at or beyond this instant (2^48 ns ≈ 3.3 simulated days)
/// bypass the wheel into a plain far-future heap: the wheel would need
/// millions of level hops to chase an end-of-time timer (e.g. one set by
/// an infinite-term lease), and everything this side of the horizon
/// always pops first anyway.
const FAR_NS: u64 = 1 << 48;

/// Which [`EventQueue`] backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Timer-wheel scheduling (the default).
    #[default]
    Wheel,
    /// Binary-heap scheduling: the executable specification.
    Heap,
}

/// Identifies a scheduled event; returned by [`EventQueue::push`] and
/// accepted by [`EventQueue::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

/// A pending event: payload `E` scheduled at an instant.
struct Entry<E> {
    at: Time,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the BinaryHeap (a max-heap) pops the earliest event;
        // sequence numbers break ties FIFO for determinism.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A surfaced wheel event: its payload sits in the slab at `slot`.
struct Ready {
    at: Time,
    seq: u64,
    slot: u32,
}

impl PartialEq for Ready {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Ready {}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: min-heap by (at, seq), the queue's global pop order.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The wheel backend: deadlines on the core timer wheel, payloads in a
/// slab recycled through a free list (in-flight messages stop costing an
/// allocation per hop once the slab is warm).
struct WheelBackend<E> {
    wheel: TimerWheel<(u64, u32)>,
    /// Events whose tick the wheel has covered, sorted *descending* by
    /// `(at, seq)` so the back is the pop front. Refills only happen when
    /// this is empty and arrive presorted, so order costs a reversed
    /// extend — not a sift per event — and the occasional sub-position
    /// push does one binary-search insert into a near-empty vec. Every
    /// entry here is strictly earlier than every entry still on the wheel
    /// (ready: `at <= position·tick`; wheel: `at > position·tick`), so
    /// popping the back never needs to consult the wheel.
    ready: Vec<Ready>,
    /// Deadlines past [`FAR_NS`], in pop order; strictly later than
    /// everything the wheel side holds, so consulted only when it drains.
    far: BinaryHeap<Ready>,
    slots: Vec<Option<E>>,
    free: Vec<u32>,
    /// Scratch for `advance_to_next_into`, reused across refills.
    fired: Vec<(Time, (u64, u32))>,
    len: usize,
}

impl<E> WheelBackend<E> {
    fn new() -> WheelBackend<E> {
        WheelBackend {
            wheel: TimerWheel::new(lease_clock::Dur(TICK_NS), Time::ZERO),
            ready: Vec::new(),
            far: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            fired: Vec::new(),
            len: 0,
        }
    }

    fn push(&mut self, at: Time, seq: u64, ev: E) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(ev);
                s
            }
            None => {
                self.slots.push(Some(ev));
                (self.slots.len() - 1) as u32
            }
        };
        self.len += 1;
        if at.0 >= FAR_NS {
            self.far.push(Ready { at, seq, slot });
        } else if self.wheel.tick_of(at) <= self.wheel.position_ticks() {
            // The wheel already covered this tick; bucketing it would
            // park it in the wheel's due list until the next advance,
            // which may come after later-timed pops. Surface it directly,
            // keeping `ready` descending.
            let i = self.ready.partition_point(|q| (q.at, q.seq) > (at, seq));
            self.ready.insert(i, Ready { at, seq, slot });
        } else {
            self.wheel.schedule(at, (seq, slot));
        }
    }

    /// Surfaces the wheel's next batch into `ready` when `ready` is
    /// empty: one `advance_to_next_into` call hops the wheel straight to
    /// its next occupied tick (cascading en route) and fires everything
    /// due there.
    fn refill(&mut self) {
        if !self.ready.is_empty() {
            return;
        }
        debug_assert!(self.fired.is_empty());
        if self.wheel.advance_to_next_into(&mut self.fired) {
            // The batch arrives sorted ascending; reverse it in so the
            // back of `ready` stays the earliest event.
            self.ready
                .extend(self.fired.drain(..).rev().map(|(at, (seq, slot))| Ready {
                    at,
                    seq,
                    slot,
                }));
        }
    }

    /// The earliest pending `(at, seq)` without removing it.
    fn peek(&mut self) -> Option<(Time, u64)> {
        self.refill();
        match self.ready.last() {
            Some(r) => Some((r.at, r.seq)),
            None => self.far.peek().map(|r| (r.at, r.seq)),
        }
    }

    fn pop(&mut self) -> Option<(Time, u64, E)> {
        self.refill();
        let r = match self.ready.pop() {
            Some(r) => r,
            None => self.far.pop()?,
        };
        let ev = self.slots[r.slot as usize]
            .take()
            .expect("slab slot holds the scheduled payload");
        self.free.push(r.slot);
        self.len -= 1;
        Some((r.at, r.seq, ev))
    }
}

/// A deterministic time-ordered queue of events.
///
/// Events scheduled for the same instant pop in the order they were pushed,
/// which makes simulation runs reproducible bit-for-bit given the same seed
/// and inputs. [`EventQueue::new`] runs on the timer-wheel backend;
/// [`EventQueue::heap`] builds the binary-heap executable spec the wheel is
/// property-tested against (see [`QueueKind`]). The two are observationally
/// identical — backend choice changes cost, never a popped sequence.
///
/// # Examples
///
/// ```
/// use lease_clock::Time;
/// use lease_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_secs(2), "later");
/// q.push(Time::from_secs(1), "sooner");
/// let cancel_me = q.push(Time::from_secs(1), "sooner-but-second");
/// q.push(Time::from_secs(1), "third");
/// q.cancel(cancel_me);
/// assert_eq!(q.pop(), Some((Time::from_secs(1), "sooner")));
/// assert_eq!(q.pop(), Some((Time::from_secs(1), "third")));
/// assert_eq!(q.pop(), Some((Time::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    backend: Backend<E>,
    /// Lazily cancelled handles, reaped when their entry surfaces (the
    /// same convention the core wheel documents for its callers).
    cancelled: HashSet<u64>,
    next_seq: u64,
}

enum Backend<E> {
    Heap(BinaryHeap<Entry<E>>),
    // Boxed: the wheel's inline state (levels, slab, scratch) dwarfs the
    // heap variant, and a queue lives behind one pointer either way.
    Wheel(Box<WheelBackend<E>>),
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the default (wheel) backend.
    pub fn new() -> EventQueue<E> {
        EventQueue::with_kind(QueueKind::Wheel)
    }

    /// Creates an empty queue on the binary-heap backend — the executable
    /// specification the wheel backend is property-tested against.
    pub fn heap() -> EventQueue<E> {
        EventQueue::with_kind(QueueKind::Heap)
    }

    /// Creates an empty queue on the chosen backend.
    pub fn with_kind(kind: QueueKind) -> EventQueue<E> {
        EventQueue {
            backend: match kind {
                QueueKind::Heap => Backend::Heap(BinaryHeap::new()),
                QueueKind::Wheel => Backend::Wheel(Box::new(WheelBackend::new())),
            },
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `ev` at instant `at`; the returned handle can cancel it.
    pub fn push(&mut self, at: Time, ev: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.backend {
            Backend::Heap(h) => h.push(Entry { at, seq, ev }),
            Backend::Wheel(w) => w.push(at, seq, ev),
        }
        EventHandle(seq)
    }

    /// Cancels a scheduled event: it will never pop. Lazy — the entry is
    /// reaped when it would have surfaced, so until then it still counts
    /// in [`EventQueue::len`]. Cancelling an already-popped handle is the
    /// caller's error and quietly leaks one `HashSet` entry; the world
    /// keeps its own live-timer bookkeeping for exactly that reason.
    pub fn cancel(&mut self, h: EventHandle) {
        self.cancelled.insert(h.0);
    }

    /// Removes and returns the earliest non-cancelled event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        loop {
            let (at, seq, ev) = match &mut self.backend {
                Backend::Heap(h) => h.pop().map(|e| (e.at, e.seq, e.ev))?,
                Backend::Wheel(w) => w.pop()?,
            };
            if !self.cancelled.remove(&seq) {
                return Some((at, ev));
            }
        }
    }

    /// The instant of the earliest non-cancelled pending event.
    ///
    /// Takes `&mut self`: cancelled entries surfacing at the front are
    /// reaped, and the wheel backend may advance its wheel to find the
    /// front. The observable state (every future pop) is unchanged.
    pub fn peek_time(&mut self) -> Option<Time> {
        loop {
            let (at, seq) = match &mut self.backend {
                Backend::Heap(h) => h.peek().map(|e| (e.at, e.seq))?,
                Backend::Wheel(w) => w.peek()?,
            };
            if !self.cancelled.contains(&seq) {
                return Some(at);
            }
            // Reap the cancelled front entry and look again.
            match &mut self.backend {
                Backend::Heap(h) => {
                    h.pop();
                }
                Backend::Wheel(w) => {
                    w.pop();
                }
            }
            self.cancelled.remove(&seq);
        }
    }

    /// Number of pending events, counting cancelled-but-unreaped ones
    /// (cancellation is lazy; see [`EventQueue::cancel`]).
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.len(),
            Backend::Wheel(w) => w.len,
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every behavioural test runs on both backends: the contract is one.
    fn both(f: impl Fn(EventQueue<i32>)) {
        f(EventQueue::heap());
        f(EventQueue::new());
    }

    #[test]
    fn orders_by_time() {
        both(|mut q| {
            q.push(Time::from_secs(3), 3);
            q.push(Time::from_secs(1), 1);
            q.push(Time::from_secs(2), 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3]);
        });
    }

    #[test]
    fn ties_are_fifo() {
        both(|mut q| {
            let t = Time::from_secs(1);
            for i in 0..100 {
                q.push(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn sub_tick_instants_keep_exact_times_and_order() {
        // Distinct instants inside one wheel tick must still pop in time
        // order at their exact requested times.
        both(|mut q| {
            q.push(Time(999), 2);
            q.push(Time(5), 1);
            q.push(Time(1_001), 3);
            assert_eq!(q.pop(), Some((Time(5), 1)));
            assert_eq!(q.pop(), Some((Time(999), 2)));
            assert_eq!(q.pop(), Some((Time(1_001), 3)));
        });
    }

    #[test]
    fn peek_does_not_remove() {
        both(|mut q| {
            q.push(Time::from_secs(5), 0);
            assert_eq!(q.peek_time(), Some(Time::from_secs(5)));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
            q.pop();
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
        });
    }

    #[test]
    fn counts_scheduled() {
        both(|mut q| {
            q.push(Time::ZERO, 0);
            q.push(Time::ZERO, 0);
            q.pop();
            assert_eq!(q.scheduled_total(), 2);
        });
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        both(|mut q| {
            q.push(Time::from_secs(10), 10);
            q.push(Time::from_secs(1), 1);
            assert_eq!(q.pop(), Some((Time::from_secs(1), 1)));
            q.push(Time::from_secs(5), 5);
            q.push(Time::from_secs(2), 2);
            assert_eq!(q.pop(), Some((Time::from_secs(2), 2)));
            assert_eq!(q.pop(), Some((Time::from_secs(5), 5)));
            assert_eq!(q.pop(), Some((Time::from_secs(10), 10)));
        });
    }

    #[test]
    fn push_earlier_than_already_surfaced_events() {
        // After popping at t=2s the wheel has advanced past t=1s; a new
        // event pushed at 1s (time going backwards is the caller's bug,
        // but same-instant re-push is routine) must still pop before the
        // pending 3s event.
        both(|mut q| {
            q.push(Time::from_secs(2), 2);
            q.push(Time::from_secs(3), 3);
            assert_eq!(q.pop(), Some((Time::from_secs(2), 2)));
            q.push(Time::from_secs(2), 20);
            assert_eq!(q.pop(), Some((Time::from_secs(2), 20)));
            assert_eq!(q.pop(), Some((Time::from_secs(3), 3)));
        });
    }

    #[test]
    fn cancelled_events_never_pop() {
        both(|mut q| {
            let a = q.push(Time::from_secs(1), 1);
            q.push(Time::from_secs(1), 2);
            let c = q.push(Time::from_secs(2), 3);
            q.cancel(a);
            q.cancel(c);
            assert_eq!(q.peek_time(), Some(Time::from_secs(1)));
            assert_eq!(q.pop(), Some((Time::from_secs(1), 2)));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn far_future_events_fire_in_order() {
        // Past the wheel's far horizon: routed to the far heap, still
        // popped in exact (at, seq) order after everything nearer.
        both(|mut q| {
            q.push(Time(u64::MAX), 9);
            q.push(Time(FAR_NS + 5), 5);
            q.push(Time(FAR_NS + 5), 6);
            q.push(Time::from_secs(1), 1);
            assert_eq!(q.pop(), Some((Time::from_secs(1), 1)));
            assert_eq!(q.pop(), Some((Time(FAR_NS + 5), 5)));
            assert_eq!(q.pop(), Some((Time(FAR_NS + 5), 6)));
            assert_eq!(q.peek_time(), Some(Time(u64::MAX)));
            assert_eq!(q.pop(), Some((Time(u64::MAX), 9)));
        });
    }

    #[test]
    fn slab_slots_are_recycled() {
        // A long run of push/pop at growing times must not grow the slab
        // beyond the peak in-flight count.
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..10_000u64 {
            q.push(Time(i * 500), i);
            if i >= 8 {
                q.pop();
            }
        }
        let Backend::Wheel(w) = &q.backend else {
            panic!("default backend is the wheel");
        };
        assert!(
            w.slots.len() <= 16,
            "slab grew to {} slots for 9 in flight",
            w.slots.len()
        );
    }
}
