//! The time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use lease_clock::Time;

/// A pending event: payload `E` scheduled at an instant.
struct Entry<E> {
    at: Time,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the BinaryHeap (a max-heap) pops the earliest event;
        // sequence numbers break ties FIFO for determinism.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic time-ordered queue of events.
///
/// Events scheduled for the same instant pop in the order they were pushed,
/// which makes simulation runs reproducible bit-for-bit given the same seed
/// and inputs.
///
/// # Examples
///
/// ```
/// use lease_clock::Time;
/// use lease_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_secs(2), "later");
/// q.push(Time::from_secs(1), "sooner");
/// q.push(Time::from_secs(1), "sooner-but-second");
/// assert_eq!(q.pop(), Some((Time::from_secs(1), "sooner")));
/// assert_eq!(q.pop(), Some((Time::from_secs(1), "sooner-but-second")));
/// assert_eq!(q.pop(), Some((Time::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `ev` at instant `at`.
    pub fn push(&mut self, at: Time, ev: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, ev });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.at, e.ev))
    }

    /// The instant of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(3), 3);
        q.push(Time::from_secs(1), 1);
        q.push(Time::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(5), ());
        assert_eq!(q.peek_time(), Some(Time::from_secs(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn counts_scheduled() {
        let mut q = EventQueue::new();
        q.push(Time::ZERO, ());
        q.push(Time::ZERO, ());
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(10), 10);
        q.push(Time::from_secs(1), 1);
        assert_eq!(q.pop(), Some((Time::from_secs(1), 1)));
        q.push(Time::from_secs(5), 5);
        q.push(Time::from_secs(2), 2);
        assert_eq!(q.pop(), Some((Time::from_secs(2), 2)));
        assert_eq!(q.pop(), Some((Time::from_secs(5), 5)));
        assert_eq!(q.pop(), Some((Time::from_secs(10), 10)));
    }
}
