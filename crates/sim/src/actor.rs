//! Actors and the context they run in.

use std::any::Any;

use lease_clock::{Dur, Time};

use crate::metrics::Metrics;
use crate::rng::SimRng;

/// Identifies an actor within a [`World`](crate::World).
///
/// Ids are assigned densely in registration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub usize);

/// Identifies a pending timer; returned by [`Ctx::set_timer_at`] and
/// accepted by [`Ctx::cancel_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub u64);

/// A simulated process: receives messages and timer callbacks.
///
/// All side effects flow through the [`Ctx`]; actors must not hold clocks or
/// randomness of their own, or determinism is lost.
pub trait Actor<M>: Any {
    /// Called once when the world starts (or when the actor is added to a
    /// running world).
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Called for each delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: ActorId, msg: M);

    /// Called when a timer set through the context fires. `key` is the
    /// caller-chosen discriminator passed at [`Ctx::set_timer_at`].
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _timer: TimerId, _key: u64) {}

    /// Called when the harness crashes this actor. Volatile state should be
    /// discarded here; anything modelling durable storage may be kept.
    fn on_crash(&mut self) {}

    /// Called when the harness restarts this actor after a crash.
    fn on_recover(&mut self, _ctx: &mut Ctx<'_, M>) {}
}

/// A side effect requested by an actor, applied by the world after the
/// handler returns.
#[derive(Debug)]
pub(crate) enum Cmd<M> {
    Send { to: ActorId, msg: M },
    Multicast { to: Vec<ActorId>, msg: M },
    SetTimer { id: TimerId, at: Time, key: u64 },
    CancelTimer { id: TimerId },
    Stop,
}

/// The capabilities handed to an actor while it runs.
///
/// Sends and timers are buffered and applied by the world after the handler
/// returns, in order, so an actor observes deterministic behaviour even when
/// it sends to itself.
pub struct Ctx<'a, M> {
    pub(crate) now: Time,
    pub(crate) me: ActorId,
    pub(crate) next_timer: &'a mut u64,
    pub(crate) cmds: Vec<Cmd<M>>,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) metrics: &'a mut Metrics,
}

impl<'a, M> Ctx<'a, M> {
    /// The current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// This actor's id.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Sends `msg` to another actor through the network medium.
    pub fn send(&mut self, to: ActorId, msg: M) {
        self.cmds.push(Cmd::Send { to, msg });
    }

    /// Multicasts `msg` to a set of actors: the medium charges one send and
    /// per-recipient deliveries, matching the paper's V multicast model.
    pub fn multicast(&mut self, to: Vec<ActorId>, msg: M) {
        self.cmds.push(Cmd::Multicast { to, msg });
    }

    /// Schedules a timer to fire at absolute time `at` with a
    /// caller-chosen `key`; returns its id for cancellation.
    ///
    /// Timers set in the past fire at the current instant (after the
    /// current handler completes).
    pub fn set_timer_at(&mut self, at: Time, key: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.cmds.push(Cmd::SetTimer {
            id,
            at: at.max(self.now),
            key,
        });
        id
    }

    /// Schedules a timer `d` from now.
    pub fn set_timer_in(&mut self, d: Dur, key: u64) -> TimerId {
        self.set_timer_at(self.now + d, key)
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown
    /// timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.cmds.push(Cmd::CancelTimer { id });
    }

    /// Stops the world after this handler returns.
    pub fn stop(&mut self) {
        self.cmds.push(Cmd::Stop);
    }

    /// The world's deterministic randomness.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// The shared metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }
}
