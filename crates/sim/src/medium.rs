//! The pluggable network model.

use lease_clock::Time;

use crate::actor::ActorId;
use crate::rng::SimRng;

/// Where a message is headed.
#[derive(Debug, Clone)]
pub enum Dest {
    /// A unicast to one actor.
    One(ActorId),
    /// A multicast to an explicit recipient list (V "host group" style:
    /// the sender pays one send, each recipient pays one receive).
    Many(Vec<ActorId>),
}

/// One scheduled delivery decided by a [`Medium`].
#[derive(Debug, Clone)]
pub struct Delivery<M> {
    /// When the recipient's handler runs.
    pub at: Time,
    /// The recipient.
    pub to: ActorId,
    /// The (possibly cloned, for multicast) message.
    pub msg: M,
}

/// A network model: decides when (and whether) each send arrives.
///
/// Returning an empty vector drops the message. The medium sees the current
/// time on every call, so implementations can apply time-scheduled control
/// changes (partitions healing, loss bursts ending) lazily.
pub trait Medium<M> {
    /// Routes one send. `from` is the sending actor.
    fn route(
        &mut self,
        now: Time,
        rng: &mut SimRng,
        from: ActorId,
        dest: Dest,
        msg: M,
    ) -> Vec<Delivery<M>>;
}

/// A zero-latency, loss-free network for unit tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectMedium;

impl<M: Clone> Medium<M> for PerfectMedium {
    fn route(
        &mut self,
        now: Time,
        _rng: &mut SimRng,
        _from: ActorId,
        dest: Dest,
        msg: M,
    ) -> Vec<Delivery<M>> {
        match dest {
            Dest::One(to) => vec![Delivery { at: now, to, msg }],
            Dest::Many(tos) => tos
                .into_iter()
                .map(|to| Delivery {
                    at: now,
                    to,
                    msg: msg.clone(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_unicast_is_instant() {
        let mut m = PerfectMedium;
        let mut rng = SimRng::seed(0);
        let d = m.route(
            Time::from_secs(1),
            &mut rng,
            ActorId(0),
            Dest::One(ActorId(1)),
            "hi",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].at, Time::from_secs(1));
        assert_eq!(d[0].to, ActorId(1));
    }

    #[test]
    fn perfect_multicast_fans_out() {
        let mut m = PerfectMedium;
        let mut rng = SimRng::seed(0);
        let to = vec![ActorId(1), ActorId(2), ActorId(3)];
        let d = m.route(Time::ZERO, &mut rng, ActorId(0), Dest::Many(to), 7u32);
        assert_eq!(d.len(), 3);
        assert!(d.iter().all(|x| x.msg == 7));
    }
}
