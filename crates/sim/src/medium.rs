//! The pluggable network model.

use lease_clock::Time;

use crate::actor::ActorId;
use crate::rng::SimRng;

/// Where a message is headed.
#[derive(Debug, Clone)]
pub enum Dest {
    /// A unicast to one actor.
    One(ActorId),
    /// A multicast to an explicit recipient list (V "host group" style:
    /// the sender pays one send, each recipient pays one receive).
    Many(Vec<ActorId>),
}

/// One scheduled delivery decided by a [`Medium`].
#[derive(Debug, Clone)]
pub struct Delivery<M> {
    /// When the recipient's handler runs.
    pub at: Time,
    /// The recipient.
    pub to: ActorId,
    /// The message. Unicast *moves* the sender's message here; only the
    /// extra copies a multicast (or a duplicating fault) actually needs
    /// are cloned.
    pub msg: M,
}

/// A network model: decides when (and whether) each send arrives.
///
/// Scheduling no deliveries drops the message. The medium sees the current
/// time on every call, so implementations can apply time-scheduled control
/// changes (partitions healing, loss bursts ending) lazily.
pub trait Medium<M> {
    /// Routes one send, appending each decided delivery to `out`.
    ///
    /// `out` is a world-owned scratch buffer handed in empty and reused
    /// across calls, so routing allocates nothing in steady state; `from`
    /// is the sending actor. A unicast must move `msg` into its delivery
    /// rather than clone it — per-hop clones were the simulator's single
    /// biggest allocation source (`lease-vsys` messages carry `Vec`s).
    fn route(
        &mut self,
        now: Time,
        rng: &mut SimRng,
        from: ActorId,
        dest: Dest,
        msg: M,
        out: &mut Vec<Delivery<M>>,
    );
}

/// A zero-latency, loss-free network for unit tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectMedium;

impl<M: Clone> Medium<M> for PerfectMedium {
    fn route(
        &mut self,
        now: Time,
        _rng: &mut SimRng,
        _from: ActorId,
        dest: Dest,
        msg: M,
        out: &mut Vec<Delivery<M>>,
    ) {
        match dest {
            Dest::One(to) => out.push(Delivery { at: now, to, msg }),
            Dest::Many(tos) => {
                // n recipients cost exactly n-1 clones: the last one
                // takes the original.
                let mut msg = Some(msg);
                let last = tos.len().wrapping_sub(1);
                for (i, to) in tos.into_iter().enumerate() {
                    let m = if i == last {
                        msg.take().expect("original still held")
                    } else {
                        msg.clone().expect("original still held")
                    };
                    out.push(Delivery {
                        at: now,
                        to,
                        msg: m,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    fn route_collect<M: Clone>(m: &mut impl Medium<M>, dest: Dest, msg: M) -> Vec<Delivery<M>> {
        let mut out = Vec::new();
        m.route(
            Time::from_secs(1),
            &mut SimRng::seed(0),
            ActorId(0),
            dest,
            msg,
            &mut out,
        );
        out
    }

    #[test]
    fn perfect_unicast_is_instant() {
        let d = route_collect(&mut PerfectMedium, Dest::One(ActorId(1)), "hi");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].at, Time::from_secs(1));
        assert_eq!(d[0].to, ActorId(1));
    }

    #[test]
    fn perfect_multicast_fans_out() {
        let to = vec![ActorId(1), ActorId(2), ActorId(3)];
        let d = route_collect(&mut PerfectMedium, Dest::Many(to), 7u32);
        assert_eq!(d.len(), 3);
        assert!(d.iter().all(|x| x.msg == 7));
    }

    /// A payload whose clones tattle: cloning it is observable.
    #[derive(Debug)]
    struct Tattle(Rc<Cell<u32>>);
    impl Clone for Tattle {
        fn clone(&self) -> Tattle {
            self.0.set(self.0.get() + 1);
            Tattle(Rc::clone(&self.0))
        }
    }

    #[test]
    fn unicast_moves_the_message_without_cloning() {
        let clones = Rc::new(Cell::new(0));
        let d = route_collect(
            &mut PerfectMedium,
            Dest::One(ActorId(1)),
            Tattle(Rc::clone(&clones)),
        );
        assert_eq!(d.len(), 1);
        assert_eq!(clones.get(), 0, "a single recipient needs no copy");
    }

    #[test]
    fn multicast_clones_exactly_recipients_minus_one() {
        let clones = Rc::new(Cell::new(0));
        let to = vec![ActorId(1), ActorId(2), ActorId(3), ActorId(4)];
        let d = route_collect(
            &mut PerfectMedium,
            Dest::Many(to),
            Tattle(Rc::clone(&clones)),
        );
        assert_eq!(d.len(), 4);
        assert_eq!(clones.get(), 3, "the last recipient takes the original");
    }

    #[test]
    fn empty_multicast_delivers_nothing() {
        let d = route_collect(&mut PerfectMedium, Dest::Many(Vec::new()), 1u8);
        assert!(d.is_empty());
    }
}
