//! Property tests for the simulation kernel.

use lease_clock::{Dur, Time};
use lease_sim::{Actor, ActorId, Ctx, EventQueue, PerfectMedium, SimRng, World};
use proptest::prelude::*;

proptest! {
    /// The event queue pops in non-decreasing time order, FIFO on ties —
    /// on both backends.
    #[test]
    fn queue_pops_sorted_fifo(times in proptest::collection::vec(0u64..1000, 1..200)) {
        for kind in [lease_sim::QueueKind::Wheel, lease_sim::QueueKind::Heap] {
            let mut q = EventQueue::with_kind(kind);
            for (i, t) in times.iter().enumerate() {
                q.push(Time(*t), i);
            }
            let mut last: Option<(Time, usize)> = None;
            while let Some((at, seq)) = q.pop() {
                if let Some((lat, lseq)) = last {
                    prop_assert!(at >= lat);
                    if at == lat {
                        prop_assert!(seq > lseq, "ties must pop FIFO");
                    }
                }
                last = Some((at, seq));
            }
        }
    }

    /// The wheel-backed queue is observationally equivalent to the
    /// binary-heap executable spec under arbitrary push/pop/cancel/peek
    /// interleavings — including same-instant FIFO tie-breaks, sub-tick
    /// instants, and far-future deadlines (the determinism contract
    /// documented in `event.rs`).
    #[test]
    fn wheel_queue_matches_heap_spec(
        ops in proptest::collection::vec((0u8..8, any::<u64>()), 1..400),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::heap();
        let mut handles = Vec::new();
        let mut next_val = 0u64;
        for (op, x) in ops {
            match op {
                // Pushes dominate so the drain below has work to compare.
                0..=3 => {
                    // A mix of dense ties, tick-aligned, sub-tick, and
                    // far-future instants (the wheel's three routing
                    // regimes plus its quantization boundary).
                    let at = match x % 4 {
                        0 => Time(x % 100),
                        1 => Time((x % 50) * 1_000),
                        2 => Time(x % 10_000_000),
                        _ => Time(u64::MAX - (x % 1000)),
                    };
                    let v = next_val;
                    next_val += 1;
                    let hw = wheel.push(at, v);
                    let hh = heap.push(at, v);
                    prop_assert_eq!(hw, hh, "handles must mirror");
                    handles.push(hw);
                }
                4 | 5 => prop_assert_eq!(wheel.pop(), heap.pop()),
                6 => {
                    if !handles.is_empty() {
                        let h = handles[(x as usize) % handles.len()];
                        wheel.cancel(h);
                        heap.cancel(h);
                    }
                }
                _ => prop_assert_eq!(wheel.peek_time(), heap.peek_time()),
            }
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(&a, &b, "drain order must match");
            if a.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty() && heap.is_empty());
    }

    /// Forked RNG streams are independent of sibling draw order.
    #[test]
    fn rng_fork_streams_stable(seed in any::<u64>(), labels in proptest::collection::vec(0u64..64, 1..10)) {
        let root = SimRng::seed(seed);
        // Draw from children in listed order...
        let first: Vec<u64> = labels.iter().map(|l| root.fork(*l).next_u64()).collect();
        // ...and again in reverse order: same per-label values.
        let mut second: Vec<u64> =
            labels.iter().rev().map(|l| root.fork(*l).next_u64()).collect();
        second.reverse();
        prop_assert_eq!(first, second);
    }

    /// chance(p) frequency tracks p.
    #[test]
    fn chance_tracks_probability(seed in any::<u64>(), p in 0.0f64..1.0) {
        let mut rng = SimRng::seed(seed);
        let n = 4000;
        let hits = (0..n).filter(|_| rng.chance(p)).count() as f64 / n as f64;
        prop_assert!((hits - p).abs() < 0.05, "p={p} measured={hits}");
    }
}

/// An actor ring that passes a token `hops` times.
struct Ring {
    next: ActorId,
    seen: u64,
}

impl Actor<u64> for Ring {
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _from: ActorId, hops: u64) {
        self.seen += 1;
        if hops > 0 {
            ctx.send(self.next, hops - 1);
        } else {
            ctx.stop();
        }
    }
}

struct Kick {
    to: ActorId,
    hops: u64,
}
impl Actor<u64> for Kick {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.send(self.to, self.hops);
    }
    fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: ActorId, _: u64) {}
}

proptest! {
    /// Rings of any size conserve the token: total receives = hops + 1.
    #[test]
    fn ring_conserves_messages(n in 1usize..8, hops in 0u64..200, seed in any::<u64>()) {
        let mut w = World::new(seed, PerfectMedium);
        let ring_ids: Vec<ActorId> = (0..n).map(ActorId).collect();
        for i in 0..n {
            w.add_actor(Ring { next: ring_ids[(i + 1) % n], seen: 0 });
        }
        let kick = Kick { to: ring_ids[0], hops };
        w.add_actor(kick);
        w.run(10_000_000);
        let total: u64 = (0..n).map(|i| w.actor::<Ring>(ActorId(i)).unwrap().seen).sum();
        prop_assert_eq!(total, hops + 1);
    }

    /// Timers fire in order regardless of insertion order.
    #[test]
    fn timers_fire_in_order(delays in proptest::collection::vec(1u64..10_000, 1..40)) {
        struct T {
            delays: Vec<u64>,
            fired: Vec<u64>,
        }
        impl Actor<()> for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                for d in &self.delays {
                    ctx.set_timer_in(Dur::from_micros(*d), *d);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: ActorId, _: ()) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: lease_sim::TimerId, key: u64) {
                self.fired.push(key);
            }
        }
        let mut w = World::new(0, PerfectMedium);
        let id = w.add_actor(T { delays: delays.clone(), fired: vec![] });
        w.run(1_000_000);
        let fired = &w.actor::<T>(id).unwrap().fired;
        let mut expected = delays;
        expected.sort_unstable();
        // Equal delays keep insertion order; sorting both is enough here.
        let mut got = fired.clone();
        got.sort_unstable();
        prop_assert_eq!(&got, &expected);
        // And the firing sequence itself is non-decreasing.
        prop_assert!(fired.windows(2).all(|w| w[0] <= w[1]));
    }
}
