//! End-to-end tests of the assembled system.

use lease_clock::{ClockModel, Dur, Time};
use lease_net::Partition;
use lease_sim::ActorId;
use lease_vsys::{
    run_trace, run_trace_with_history, CrashEvent, HistoryEvent, InstalledMode, NodeSel,
    SystemConfig, TermSpec,
};
use lease_workload::{FileClass, FileSpec, PoissonWorkload, Trace, TraceOp, TraceRecord, VTrace};

fn fixed(term_secs: u64) -> SystemConfig {
    SystemConfig {
        term: TermSpec::Fixed(Dur::from_secs(term_secs)),
        ..SystemConfig::default()
    }
}

/// A tiny two-client trace with genuine write sharing.
fn shared_trace() -> Trace {
    let mut records = Vec::new();
    // Both clients read file 1 every second; client 0 writes at t = 20 s.
    for s in 1..40u64 {
        records.push(TraceRecord {
            at: Time::from_secs(s),
            client: 0,
            op: TraceOp::Read { file: 1 },
        });
        records.push(TraceRecord {
            at: Time::from_millis(s * 1000 + 17),
            client: 1,
            op: TraceOp::Read { file: 1 },
        });
    }
    records.push(TraceRecord {
        at: Time::from_millis(20_500),
        client: 0,
        op: TraceOp::Write { file: 1 },
    });
    Trace::new(
        vec![FileSpec {
            id: 1,
            class: FileClass::Regular,
            path: None,
        }],
        records,
    )
}

#[test]
fn all_ops_complete_without_faults() {
    let trace = PoissonWorkload::v_rates(4, 2, Dur::from_secs(300), 5).generate();
    let r = run_trace(&fixed(10), &trace);
    assert_eq!(r.op_failures, 0);
    let total_ops = r.hits + r.remote_reads + r.writes;
    let expected = trace.records.len() as u64;
    assert_eq!(total_ops, expected, "every trace op completes");
}

#[test]
fn zero_term_checks_every_read() {
    let trace = shared_trace();
    let r = run_trace(&fixed(0), &trace);
    assert_eq!(r.hits, 0, "no caching rights at term zero");
    // Every read is a fetch+grant pair.
    assert_eq!(r.consistency_msgs, 2 * r.remote_reads);
}

#[test]
fn longer_terms_mean_fewer_consistency_messages() {
    let trace = VTrace::calibrated(3).generate();
    let mut last = u64::MAX;
    for term in [0u64, 2, 10, 60] {
        let r = run_trace(&fixed(term), &trace);
        assert!(
            r.consistency_msgs < last,
            "term {term}: {} not below {last}",
            r.consistency_msgs
        );
        last = r.consistency_msgs;
    }
}

#[test]
fn shared_write_invalidates_other_cache() {
    let (r, h) = run_trace_with_history(&fixed(30), &shared_trace());
    assert_eq!(r.op_failures, 0);
    let history = h.history.borrow();
    // The write committed version 2.
    let commits = history.commits_of(1);
    assert_eq!(commits.len(), 1);
    // Reads after the commit see version 2.
    let commit_at = commits[0].0;
    for e in &history.events {
        if let HistoryEvent::ReadDone { version, at, .. } = e {
            if *at > commit_at + Dur::from_secs(1) {
                assert_eq!(version.0, 2, "stale read at {at:?}");
            }
        }
    }
}

#[test]
fn write_sharing_costs_approval_messages() {
    let trace = shared_trace();
    let with_sharing = run_trace(&fixed(30), &trace);
    // Same trace but the write goes to an unshared file.
    let mut unshared = shared_trace();
    unshared.files.push(FileSpec {
        id: 2,
        class: FileClass::Regular,
        path: None,
    });
    for rec in &mut unshared.records {
        if !rec.op.is_read() {
            rec.op = TraceOp::Write { file: 2 };
        }
    }
    let without = run_trace(&fixed(30), &unshared);
    assert!(
        with_sharing.write_delay.mean > without.write_delay.mean,
        "approval callback must delay the shared write: {} vs {}",
        with_sharing.write_delay.mean,
        without.write_delay.mean
    );
}

#[test]
fn client_crash_delays_writes_by_at_most_the_term() {
    // Client 1 holds a 10 s lease and crashes; client 0's write must wait
    // for lease expiry, not forever (§5: availability is not reduced).
    let mut records = vec![
        TraceRecord {
            at: Time::from_secs(1),
            client: 1,
            op: TraceOp::Read { file: 1 },
        },
        TraceRecord {
            at: Time::from_secs(2),
            client: 0,
            op: TraceOp::Write { file: 1 },
        },
    ];
    records.push(TraceRecord {
        at: Time::from_secs(30),
        client: 0,
        op: TraceOp::Read { file: 1 },
    });
    let trace = Trace::new(
        vec![FileSpec {
            id: 1,
            class: FileClass::Regular,
            path: None,
        }],
        records,
    );
    let mut cfg = fixed(10);
    cfg.crashes = vec![CrashEvent {
        at: Time::from_millis(1500),
        node: NodeSel::Client(1),
        recover_at: None,
    }];
    cfg.max_retries = 100;
    let r = run_trace(&cfg, &trace);
    assert_eq!(r.op_failures, 0);
    // The write waited for the lease granted at ~1 s to expire at ~11 s:
    // around 9 s of delay, never more than the full term.
    assert!(
        r.write_delay.max > 8.0 && r.write_delay.max < 10.5,
        "write delay {}",
        r.write_delay.max
    );
}

#[test]
fn server_crash_recovery_blocks_writes_for_max_term() {
    let records = vec![
        TraceRecord {
            at: Time::from_secs(1),
            client: 0,
            op: TraceOp::Read { file: 1 },
        },
        TraceRecord {
            at: Time::from_secs(12),
            client: 0,
            op: TraceOp::Write { file: 1 },
        },
        TraceRecord {
            at: Time::from_secs(40),
            client: 0,
            op: TraceOp::Read { file: 1 },
        },
    ];
    let trace = Trace::new(
        vec![FileSpec {
            id: 1,
            class: FileClass::Regular,
            path: None,
        }],
        records,
    );
    let mut cfg = fixed(10);
    cfg.crashes = vec![CrashEvent {
        at: Time::from_secs(10),
        node: NodeSel::Server,
        recover_at: Some(Time::from_secs(11)),
    }];
    cfg.max_retries = 100;
    let r = run_trace(&cfg, &trace);
    assert_eq!(r.op_failures, 0);
    // The write at 12 s waits until recovery window ends at 11 + 10 = 21 s.
    assert!(
        r.write_delay.max > 8.0 && r.write_delay.max < 10.0,
        "write delay {}",
        r.write_delay.max
    );
}

#[test]
fn persistent_lease_records_avoid_the_recovery_stall() {
    let records = vec![
        TraceRecord {
            at: Time::from_secs(1),
            client: 0,
            op: TraceOp::Read { file: 1 },
        },
        // By 12 s the 10 s lease from t=1 has expired on its own.
        TraceRecord {
            at: Time::from_secs(12),
            client: 0,
            op: TraceOp::Write { file: 1 },
        },
    ];
    let trace = Trace::new(
        vec![FileSpec {
            id: 1,
            class: FileClass::Regular,
            path: None,
        }],
        records,
    );
    let mut cfg = fixed(10);
    cfg.persistent_leases = true;
    cfg.crashes = vec![CrashEvent {
        at: Time::from_secs(10),
        node: NodeSel::Server,
        recover_at: Some(Time::from_secs(11)),
    }];
    cfg.max_retries = 100;
    let r = run_trace(&cfg, &trace);
    assert_eq!(r.op_failures, 0);
    // No stall: the only lease record expired before the write arrived.
    assert!(r.write_delay.max < 1.0, "write delay {}", r.write_delay.max);
}

#[test]
fn partition_heals_and_ops_resume() {
    let trace = PoissonWorkload::v_rates(2, 1, Dur::from_secs(120), 9).generate();
    let mut cfg = fixed(5);
    // Client 1 (actor id 2) is cut off from 20 s to 40 s.
    cfg.partitions = vec![Partition::new(
        Time::from_secs(20),
        Time::from_secs(40),
        [ActorId(2)],
    )];
    cfg.max_retries = 200;
    cfg.retry_interval = Dur::from_millis(500);
    let r = run_trace(&cfg, &trace);
    // Reads during the partition either hit the local cache, stall until
    // healing, or exhaust retries; nothing hangs forever.
    let done = r.hits + r.remote_reads + r.writes + r.op_failures;
    assert_eq!(done, trace.records.len() as u64);
}

#[test]
fn installed_mode_eliminates_per_file_extensions() {
    // Without batching, a client extends each installed file's lease
    // individually; the §4 multicast covers them all with a handful of
    // periodic messages and keeps their leases from ever expiring.
    let trace = VTrace::calibrated(5).generate();
    let mut base = fixed(10);
    base.batch_extensions = false;
    let per_client = run_trace(&base, &trace);
    let mut cfg = base.clone();
    cfg.installed = InstalledMode::Multicast {
        tick: Dur::from_secs(30),
        term: Dur::from_secs(60),
    };
    let multicast = run_trace(&cfg, &trace);
    assert!(
        multicast.consistency_msgs < per_client.consistency_msgs,
        "multicast {} should beat per-client {}",
        multicast.consistency_msgs,
        per_client.consistency_msgs
    );
    assert!(multicast.hit_rate() > per_client.hit_rate());
}

#[test]
fn fast_server_clock_is_the_dangerous_failure() {
    // §5: a fast server clock can let a write proceed while a client still
    // trusts its lease. Build the race: client 1 reads (10 s lease), the
    // server clock runs 3x fast so the server thinks the lease expired
    // after ~3.3 s, client 0 writes at 5 s, client 1 reads from cache at
    // 6 s — and sees stale data.
    let records = vec![
        TraceRecord {
            at: Time::from_secs(1),
            client: 1,
            op: TraceOp::Read { file: 1 },
        },
        TraceRecord {
            at: Time::from_secs(5),
            client: 0,
            op: TraceOp::Write { file: 1 },
        },
        TraceRecord {
            at: Time::from_secs(6),
            client: 1,
            op: TraceOp::Read { file: 1 },
        },
    ];
    let trace = Trace::new(
        vec![FileSpec {
            id: 1,
            class: FileClass::Regular,
            path: None,
        }],
        records,
    );
    let mut cfg = fixed(10);
    cfg.server_clock = ClockModel::drifting(2_000_000.0); // 3x fast
    let (r, h) = run_trace_with_history(&cfg, &trace);
    assert_eq!(r.op_failures, 0);
    let history = h.history.borrow();
    // The read at 6 s returned version 1 from cache although version 2
    // committed at ~5 s: the §5 inconsistency, visible in the history.
    let stale = history.events.iter().any(|e| {
        matches!(e, HistoryEvent::ReadDone { version, from_cache: true, at, .. }
            if version.0 == 1 && *at >= Time::from_secs(6))
    });
    assert!(stale, "expected the fast-server-clock anomaly to manifest");
}

#[test]
fn message_loss_is_survived_by_retransmission() {
    let trace = PoissonWorkload::v_rates(2, 1, Dur::from_secs(200), 13).generate();
    let mut cfg = fixed(10);
    cfg.loss = 0.05;
    cfg.max_retries = 50;
    let r = run_trace(&cfg, &trace);
    assert_eq!(r.op_failures, 0, "5% loss must not fail ops");
    let done = r.hits + r.remote_reads + r.writes;
    assert_eq!(done, trace.records.len() as u64);
}

#[test]
fn adaptive_policy_zeroes_write_hot_files() {
    // One file written constantly by two clients and read by both: alpha
    // < 1, so the adaptive policy should fall back to zero-term behaviour
    // and keep approval traffic off the wire.
    let mut records = Vec::new();
    for s in 1..200u64 {
        let c = (s % 2) as u32;
        records.push(TraceRecord {
            at: Time::from_millis(s * 500),
            client: c,
            op: if s % 3 == 0 {
                TraceOp::Write { file: 1 }
            } else {
                TraceOp::Read { file: 1 }
            },
        });
    }
    let trace = Trace::new(
        vec![FileSpec {
            id: 1,
            class: FileClass::Regular,
            path: None,
        }],
        records,
    );
    let adaptive = SystemConfig {
        term: TermSpec::Adaptive {
            theta: 0.1,
            min: Dur::from_secs(1),
            max: Dur::from_secs(60),
        },
        ..SystemConfig::default()
    };
    let fixed_cfg = fixed(30);
    let a = run_trace(&adaptive, &trace);
    let f = run_trace(&fixed_cfg, &trace);
    assert_eq!(a.op_failures, 0);
    assert!(
        a.write_delay.mean <= f.write_delay.mean,
        "adaptive {} vs fixed {}",
        a.write_delay.mean,
        f.write_delay.mean
    );
}

#[test]
fn determinism_same_seed_same_report() {
    let trace = VTrace::calibrated(17).generate();
    let r1 = run_trace(&fixed(10), &trace);
    let r2 = run_trace(&fixed(10), &trace);
    assert_eq!(r1.consistency_msgs, r2.consistency_msgs);
    assert_eq!(r1.hits, r2.hits);
    assert_eq!(r1.sim_events, r2.sim_events);
}

#[test]
fn distant_client_compensation_restores_effective_term() {
    // §4: "A lease given to a distant client could be increased to
    // compensate for the amount the lease term is reduced by the
    // propagation delay and for the extra delay incurred by the client to
    // extend the lease." Client 1 sits behind 400 ms of extra one-way
    // propagation; with a 1 s base term its effective window shrinks
    // noticeably, and compensating restores its hit rate.
    let mut records = Vec::new();
    for s in 1..400u64 {
        records.push(TraceRecord {
            at: Time::from_millis(s * 450),
            client: 0,
            op: TraceOp::Read { file: 1 },
        });
        records.push(TraceRecord {
            at: Time::from_millis(s * 450 + 100),
            client: 1,
            op: TraceOp::Read { file: 2 },
        });
    }
    let trace = Trace::new(
        vec![
            FileSpec {
                id: 1,
                class: FileClass::Regular,
                path: None,
            },
            FileSpec {
                id: 2,
                class: FileClass::Regular,
                path: None,
            },
        ],
        records,
    );
    let base = Dur::from_millis(1000);
    let extra_prop = vec![(1u32, Dur::from_millis(400))];

    let run = |term: TermSpec| {
        let cfg = SystemConfig {
            term,
            extra_prop: extra_prop.clone(),
            warmup: Dur::from_secs(10),
            max_retries: 200,
            ..SystemConfig::default()
        };
        lease_vsys::run_trace_with_history(&cfg, &trace)
    };

    let (plain, h1) = run(TermSpec::Fixed(base));
    let (comp, h2) = run(TermSpec::Compensated {
        base,
        // Compensate for the extra round trip (2 x 400 ms) on extensions.
        extra: vec![(1, Dur::from_millis(800))],
    });
    // Compensation buys the distant client a real effective term: overall
    // hit rate improves materially and delay falls.
    assert!(
        comp.hit_rate() > plain.hit_rate() + 0.1,
        "hit rate {} vs {}",
        comp.hit_rate(),
        plain.hit_rate()
    );
    assert!(comp.mean_delay_ms() < plain.mean_delay_ms());
    // And it stays consistent, of course.
    lease_faults_check(&h1);
    lease_faults_check(&h2);
}

// Local helper: the faults crate depends on vsys, so the oracle cannot be
// called from vsys tests; assert the cheap invariant directly instead —
// every read's version is never above the storage's final version and
// commits are monotone.
fn lease_faults_check(h: &lease_vsys::RunHandle) {
    let hist = h.history.borrow();
    let mut last_per_resource: std::collections::HashMap<u64, u64> = Default::default();
    for e in &hist.events {
        if let HistoryEvent::Commit {
            resource, version, ..
        } = e
        {
            let last = last_per_resource.entry(*resource).or_insert(0);
            assert!(version.0 > *last, "non-monotone commit");
            *last = version.0;
        }
    }
}
