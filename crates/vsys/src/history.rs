//! The global execution history the consistency oracle checks.
//!
//! Every actor appends to one shared log, timestamped with *true*
//! (simulation) time — even when the actor's own clock is skewed — so the
//! oracle can judge the execution against a single global timeline. This is
//! the standard move in consistency checking: the checker may use a perfect
//! observer even though the protocol cannot.

use std::cell::RefCell;
use std::rc::Rc;

use lease_clock::Time;
use lease_core::{ClientId, OpId, Version};

use crate::types::Res;

/// One observed event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HistoryEvent {
    /// A client issued a read.
    ReadStart {
        /// The reader.
        client: ClientId,
        /// Operation id (unique per client).
        op: OpId,
        /// The resource.
        resource: Res,
        /// True time of issue.
        at: Time,
    },
    /// A read completed.
    ReadDone {
        /// The reader.
        client: ClientId,
        /// Operation id.
        op: OpId,
        /// The resource.
        resource: Res,
        /// The version the read returned.
        version: Version,
        /// True completion time.
        at: Time,
        /// Whether the cache served it locally.
        from_cache: bool,
    },
    /// A client issued a write.
    WriteStart {
        /// The writer.
        client: ClientId,
        /// Operation id.
        op: OpId,
        /// The resource.
        resource: Res,
        /// True time of issue.
        at: Time,
    },
    /// The server committed a write to primary storage.
    Commit {
        /// The resource.
        resource: Res,
        /// The new version.
        version: Version,
        /// The writing client, if any (none for administrative installs).
        writer: Option<ClientId>,
        /// True commit time.
        at: Time,
    },
    /// A crash destroyed locally-buffered (never written back) versions:
    /// everything above `last_durable` on this resource vanished at `at`.
    /// Only non-write-through (write-back) caches produce this event — the
    /// lost-write semantics the paper's write-through choice avoids (§2).
    Discard {
        /// The resource whose buffered tail was lost.
        resource: Res,
        /// The last version that survives (already written back).
        last_durable: Version,
        /// The highest buffered version destroyed: the loss covers
        /// exactly `(last_durable, last_lost]`.
        last_lost: Version,
        /// The crash instant (true time).
        at: Time,
    },
    /// A write operation completed at its client.
    WriteDone {
        /// The writer.
        client: ClientId,
        /// Operation id.
        op: OpId,
        /// The resource.
        resource: Res,
        /// The committed version.
        version: Version,
        /// True completion time.
        at: Time,
    },
    /// A grantor replica began *serving* under a quorum-granted grantor
    /// lease (the PaxosLease ballot it won). Recorded by replicated
    /// topologies; single-server runs never emit it. Plain integers keep
    /// the history independent of the quorum crate's types.
    GrantorAcquired {
        /// The replica that became the grantor.
        replica: u32,
        /// The winning ballot, packed `(round << 32) | replica`.
        ballot: u64,
        /// True time at which serving began.
        at: Time,
    },
    /// A grantor replica stopped serving — its grantor lease expired on
    /// its own clock, it was killed, or it observed a higher ballot. `at`
    /// is the (backdated) true instant the claim ended; paired with the
    /// matching [`HistoryEvent::GrantorAcquired`] it closes a half-open
    /// serving interval `[acquired, ceded)`.
    GrantorCeded {
        /// The replica that ceded.
        replica: u32,
        /// The ballot it held.
        ballot: u64,
        /// True end of the claim.
        at: Time,
    },
}

impl HistoryEvent {
    /// The event's true time.
    pub fn at(&self) -> Time {
        match self {
            HistoryEvent::ReadStart { at, .. }
            | HistoryEvent::ReadDone { at, .. }
            | HistoryEvent::WriteStart { at, .. }
            | HistoryEvent::Commit { at, .. }
            | HistoryEvent::Discard { at, .. }
            | HistoryEvent::WriteDone { at, .. }
            | HistoryEvent::GrantorAcquired { at, .. }
            | HistoryEvent::GrantorCeded { at, .. } => *at,
        }
    }
}

/// The append-only event log.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// The events, in append order (which is time order: the simulator is
    /// single-threaded).
    pub events: Vec<HistoryEvent>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> History {
        History::default()
    }

    /// Appends an event.
    pub fn push(&mut self, ev: HistoryEvent) {
        self.events.push(ev);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Commits for one resource, in time order.
    pub fn commits_of(&self, resource: Res) -> Vec<(Time, Version)> {
        let mut v: Vec<(Time, Version)> = self
            .events
            .iter()
            .filter_map(|e| match e {
                HistoryEvent::Commit {
                    resource: r,
                    version,
                    at,
                    ..
                } if *r == resource => Some((*at, *version)),
                _ => None,
            })
            .collect();
        v.sort();
        v
    }
}

/// The shared handle actors hold (the simulator is single-threaded).
pub type SharedHistory = Rc<RefCell<History>>;

/// Creates a fresh shared history.
pub fn shared() -> SharedHistory {
    Rc::new(RefCell::new(History::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query_commits() {
        let mut h = History::new();
        h.push(HistoryEvent::Commit {
            resource: 1,
            version: Version(2),
            writer: None,
            at: Time::from_secs(5),
        });
        h.push(HistoryEvent::Commit {
            resource: 2,
            version: Version(1),
            writer: Some(ClientId(0)),
            at: Time::from_secs(1),
        });
        h.push(HistoryEvent::Commit {
            resource: 1,
            version: Version(3),
            writer: None,
            at: Time::from_secs(9),
        });
        assert_eq!(h.len(), 3);
        assert_eq!(
            h.commits_of(1),
            vec![
                (Time::from_secs(5), Version(2)),
                (Time::from_secs(9), Version(3))
            ]
        );
        assert_eq!(h.commits_of(99), vec![]);
    }

    #[test]
    fn event_time_accessor() {
        let e = HistoryEvent::ReadStart {
            client: ClientId(1),
            op: OpId(1),
            resource: 1,
            at: Time::from_secs(3),
        };
        assert_eq!(e.at(), Time::from_secs(3));
    }
}
