//! Run measurements: what the experiments read off a finished simulation.

use lease_sim::{HistogramSummary, Metrics, World};
use serde::{Deserialize, Serialize};

/// Aggregate measurements of one simulated run.
///
/// *Consistency messages* are everything the lease protocol adds on top of
/// plain write-through file service: fetch/renew requests and their grant
/// replies, approval callbacks and approvals, relinquishes, installed-file
/// multicasts, and errors. Write requests and write-done replies are data
/// traffic — a write-through write contacts the server under any protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Consistency messages handled (sent or received) by the server.
    pub consistency_msgs: u64,
    /// Data messages (writes in, write-done out) at the server.
    pub data_msgs: u64,
    /// Approval-request multicasts sent (subset of consistency messages).
    pub approval_msgs: u64,
    /// Reads served from cache under a valid lease.
    pub hits: u64,
    /// Reads that contacted the server.
    pub remote_reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Temporary-file operations absorbed locally.
    pub temp_ops: u64,
    /// Operations that failed (timeout or missing resource).
    pub op_failures: u64,
    /// Per-read delay (seconds).
    pub read_delay: HistogramSummary,
    /// Per-write delay (seconds).
    pub write_delay: HistogramSummary,
    /// Per-operation delay over reads and writes (seconds).
    pub all_delay: HistogramSummary,
    /// Length of the measured window, seconds.
    pub window_secs: f64,
    /// Simulator events processed (for performance accounting).
    pub sim_events: u64,
}

impl RunReport {
    /// Extracts a report from a finished world (any message type: the
    /// write-back harness reuses the same counter names).
    pub fn from_world<M: 'static>(world: &mut World<M>, window_secs: f64) -> RunReport {
        let sim_events = world.events_processed();
        let m: &mut Metrics = world.metrics_mut();
        let consistency = [
            "srv.rx.fetch",
            "srv.rx.renew",
            "srv.rx.approve",
            "srv.rx.relinquish",
            "srv.tx.grants",
            "srv.tx.approval_req",
            "srv.tx.installed",
            "srv.tx.error",
        ]
        .iter()
        .map(|n| m.counter(n))
        .sum();
        let data = m.counter("srv.rx.write") + m.counter("srv.tx.write_done");
        RunReport {
            consistency_msgs: consistency,
            data_msgs: data,
            approval_msgs: m.counter("srv.tx.approval_req") + m.counter("srv.rx.approve"),
            hits: m.counter("client.hit"),
            remote_reads: m.counter("client.remote_read"),
            writes: m.counter("client.write_done"),
            temp_ops: m.counter("client.temp_ops"),
            op_failures: m.counter("client.op_failures"),
            read_delay: m.histogram_mut("delay.read").summary(),
            write_delay: m.histogram_mut("delay.write").summary(),
            all_delay: m.histogram_mut("delay.all").summary(),
            window_secs,
            sim_events,
        }
    }

    /// Consistency messages per second at the server.
    pub fn consistency_per_sec(&self) -> f64 {
        self.consistency_msgs as f64 / self.window_secs.max(1e-9)
    }

    /// Fraction of reads served from cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.remote_reads;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Mean added delay per operation, milliseconds.
    pub fn mean_delay_ms(&self) -> f64 {
        self.all_delay.mean * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NetMsg;
    use lease_sim::{PerfectMedium, World};

    #[test]
    fn report_reads_counters() {
        let mut w: World<NetMsg> = World::new(0, PerfectMedium);
        w.metrics_mut().add("srv.rx.fetch", 10);
        w.metrics_mut().add("srv.tx.grants", 10);
        w.metrics_mut().add("srv.rx.write", 2);
        w.metrics_mut().add("srv.tx.write_done", 2);
        w.metrics_mut().add("client.hit", 30);
        w.metrics_mut().add("client.remote_read", 10);
        w.metrics_mut().observe("delay.all", 0.002);
        let r = RunReport::from_world(&mut w, 10.0);
        assert_eq!(r.consistency_msgs, 20);
        assert_eq!(r.data_msgs, 4);
        assert_eq!(r.consistency_per_sec(), 2.0);
        assert!((r.hit_rate() - 0.75).abs() < 1e-12);
        assert!((r.mean_delay_ms() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_world_is_zeroes() {
        let mut w: World<NetMsg> = World::new(0, PerfectMedium);
        let r = RunReport::from_world(&mut w, 1.0);
        assert_eq!(r.consistency_msgs, 0);
        assert_eq!(r.hit_rate(), 0.0);
    }
}
