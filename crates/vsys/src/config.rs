//! System configuration for a simulated run.

use lease_clock::{ClockModel, Dur, Time};
use lease_net::NetParams;

/// How the server picks lease terms.
#[derive(Debug, Clone, PartialEq)]
pub enum TermSpec {
    /// The same term for every grant (0 = check-on-every-read,
    /// `Dur::MAX` = infinite).
    Fixed(Dur),
    /// The knee rule driven by observed per-file statistics (§4).
    Adaptive {
        /// Target residual extension-traffic fraction.
        theta: f64,
        /// Clamp bounds.
        min: Dur,
        /// Clamp bounds.
        max: Dur,
    },
    /// A fixed base term plus per-client compensation for distant clients
    /// (§4: "a lease given to a distant client could be increased to
    /// compensate"). Entries are `(client id, extra term)`.
    Compensated {
        /// The base term.
        base: Dur,
        /// Per-client additions.
        extra: Vec<(u32, Dur)>,
    },
}

/// How installed files are handled (§4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InstalledMode {
    /// Treat them like any other file: per-client leases.
    PerClient,
    /// The §4 optimization: directory-granularity coverage via periodic
    /// multicast extension, delayed update on write, no per-client records.
    Multicast {
        /// Extension period.
        tick: Dur,
        /// Term each multicast carries.
        term: Dur,
    },
}

/// Which node a fault hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeSel {
    /// The file server.
    Server,
    /// Client `i` (0-based).
    Client(u32),
}

/// A scheduled crash (and optional restart).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashEvent {
    /// Crash instant (true time).
    pub at: Time,
    /// The victim.
    pub node: NodeSel,
    /// Restart instant, if the node comes back.
    pub recover_at: Option<Time>,
}

/// Full configuration of a simulated system run.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Lease-term policy.
    pub term: TermSpec,
    /// Clock allowance ε used by clients.
    pub epsilon: Dur,
    /// Network timing.
    pub net: NetParams,
    /// Uniform message-loss probability.
    pub loss: f64,
    /// Scheduled network partitions.
    pub partitions: Vec<lease_net::Partition>,
    /// Extra one-way propagation per client (distant clients, §3.3/§4):
    /// `(client id, extra delay)`.
    pub extra_prop: Vec<(u32, Dur)>,
    /// Uniform per-delivery jitter bound (0 = none); jitter reorders
    /// messages on a link.
    pub jitter: Dur,
    /// Probability a delivered message is delivered twice.
    pub duplicate: f64,
    /// Installed-file handling.
    pub installed: InstalledMode,
    /// Use persistent lease records instead of the max-term rule for
    /// server recovery.
    pub persistent_leases: bool,
    /// Batch extension of all held leases on each fetch.
    pub batch_extensions: bool,
    /// Anticipatory renewal interval (None = on-demand).
    pub anticipatory: Option<Dur>,
    /// Client cache capacity (0 = unbounded).
    pub cache_capacity: usize,
    /// Client retransmission interval.
    pub retry_interval: Dur,
    /// Client retransmission budget.
    pub max_retries: u32,
    /// Measurements before this instant are discarded (cold-start).
    pub warmup: Dur,
    /// Scheduled crashes.
    pub crashes: Vec<CrashEvent>,
    /// Per-client clock models (defaults to perfect; index = client id).
    pub client_clocks: Vec<ClockModel>,
    /// Server clock model.
    pub server_clock: ClockModel,
    /// RNG seed.
    pub seed: u64,
    /// Extra time to run after the last trace record, letting in-flight
    /// operations drain.
    pub drain: Dur,
    /// Event-queue backend for the simulation kernel. The default timer
    /// wheel and the binary-heap spec are observationally equivalent; the
    /// knob exists so benchmarks can measure one against the other.
    pub queue: lease_sim::QueueKind,
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig {
            term: TermSpec::Fixed(Dur::from_secs(10)),
            epsilon: Dur::from_millis(100),
            net: NetParams::v_lan(),
            loss: 0.0,
            partitions: Vec::new(),
            extra_prop: Vec::new(),
            jitter: Dur::ZERO,
            duplicate: 0.0,
            installed: InstalledMode::PerClient,
            persistent_leases: false,
            batch_extensions: true,
            anticipatory: None,
            cache_capacity: 0,
            retry_interval: Dur::from_millis(500),
            max_retries: 40,
            warmup: Dur::ZERO,
            crashes: Vec::new(),
            client_clocks: Vec::new(),
            server_clock: ClockModel::perfect(),
            seed: 42,
            drain: Dur::from_secs(120),
            queue: lease_sim::QueueKind::default(),
        }
    }
}

impl SystemConfig {
    /// The clock model for client `i`.
    pub fn client_clock(&self, i: usize) -> ClockModel {
        self.client_clocks.get(i).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ten_second_leases_on_v_lan() {
        let c = SystemConfig::default();
        assert_eq!(c.term, TermSpec::Fixed(Dur::from_secs(10)));
        assert_eq!(c.net, NetParams::v_lan());
        assert_eq!(c.loss, 0.0);
    }

    #[test]
    fn client_clock_defaults_to_perfect() {
        let mut c = SystemConfig::default();
        assert_eq!(c.client_clock(3), ClockModel::perfect());
        c.client_clocks = vec![ClockModel::skewed(5)];
        assert_eq!(c.client_clock(0), ClockModel::skewed(5));
        assert_eq!(c.client_clock(1), ClockModel::perfect());
    }
}
