//! The file-server actor: the lease server wired to the simulator.

use std::collections::HashMap;

use lease_clock::{ClockModel, Time};
use lease_core::{
    ClientId, LeaseServer, MemStorage, ServerInput, ServerOutput, ServerTimer, ToServer,
};
use lease_sim::{Actor, ActorId, Ctx, TimerId};

use crate::history::{HistoryEvent, SharedHistory};
use crate::types::{Data, NetMsg, Res};

/// The server actor: owns the lease server state machine, the primary
/// storage (durable across crashes), the server's clock model, and the
/// durable recovery slots.
pub struct ServerActor {
    /// The protocol state machine.
    pub server: LeaseServer<Res, Data>,
    /// Primary storage: models the disk, so it survives crashes.
    pub storage: MemStorage<Res, Data>,
    clock: ClockModel,
    /// ClientId -> ActorId mapping (dense).
    clients: Vec<ActorId>,
    history: SharedHistory,
    warmup: Time,
    /// Durable slot: the maximum granted term (MaxTerm recovery, §2).
    durable_max_term: Option<lease_clock::Dur>,
    /// Durable slot: lease records (PersistentRecords recovery).
    durable_leases: Vec<(Res, ClientId, Time)>,
    timer_ids: HashMap<u64, TimerId>,
}

impl ServerActor {
    /// Creates the actor. `clients[i]` must be the ActorId of client `i`.
    pub fn new(
        server: LeaseServer<Res, Data>,
        storage: MemStorage<Res, Data>,
        clock: ClockModel,
        clients: Vec<ActorId>,
        history: SharedHistory,
        warmup: Time,
    ) -> ServerActor {
        ServerActor {
            server,
            storage,
            clock,
            clients,
            history,
            warmup,
            durable_max_term: None,
            durable_leases: Vec::new(),
            timer_ids: HashMap::new(),
        }
    }

    fn actor_of(&self, c: ClientId) -> ActorId {
        self.clients[c.0 as usize]
    }

    fn client_of(&self, a: ActorId) -> Option<ClientId> {
        self.clients
            .iter()
            .position(|x| *x == a)
            .map(|i| ClientId(i as u32))
    }

    fn timer_key(t: ServerTimer) -> u64 {
        match t {
            ServerTimer::InstalledTick => 0,
            ServerTimer::WriteDeadline(w) => w.0 + 1,
        }
    }

    fn timer_of_key(key: u64) -> ServerTimer {
        if key == 0 {
            ServerTimer::InstalledTick
        } else {
            ServerTimer::WriteDeadline(lease_core::WriteId(key - 1))
        }
    }

    fn apply(&mut self, ctx: &mut Ctx<'_, NetMsg>, outputs: Vec<ServerOutput<Res, Data>>) {
        let measuring = ctx.now() >= self.warmup;
        for o in outputs {
            match o {
                ServerOutput::Send { to, msg } => {
                    if measuring {
                        let name = match &msg {
                            lease_core::ToClient::Grants { .. } => "srv.tx.grants",
                            lease_core::ToClient::WriteDone { .. } => "srv.tx.write_done",
                            lease_core::ToClient::ApprovalRequest { .. } => "srv.tx.approval_req",
                            lease_core::ToClient::InstalledExtend { .. } => "srv.tx.installed",
                            lease_core::ToClient::Error { .. } => "srv.tx.error",
                        };
                        ctx.metrics().inc(name);
                    }
                    let to = self.actor_of(to);
                    ctx.send(to, NetMsg::ToClient(msg));
                }
                ServerOutput::Multicast { to, msg } => {
                    if measuring {
                        let name = match &msg {
                            lease_core::ToClient::ApprovalRequest { .. } => "srv.tx.approval_req",
                            lease_core::ToClient::InstalledExtend { .. } => "srv.tx.installed",
                            _ => "srv.tx.grants",
                        };
                        ctx.metrics().inc(name);
                    }
                    let actors: Vec<ActorId> = to.iter().map(|c| self.actor_of(*c)).collect();
                    ctx.multicast(actors, NetMsg::ToClient(msg));
                }
                ServerOutput::SetTimer { at, timer } => {
                    let key = Self::timer_key(timer);
                    if let Some(old) = self.timer_ids.remove(&key) {
                        ctx.cancel_timer(old);
                    }
                    // `at` is in server-local time; convert to true time.
                    let local_now = self.clock.local(ctx.now());
                    let local_dur = at.saturating_since(local_now);
                    let true_at = self.clock.true_after(ctx.now(), local_dur);
                    let id = ctx.set_timer_at(true_at, key);
                    self.timer_ids.insert(key, id);
                }
                ServerOutput::PersistMaxTerm(d) => {
                    self.durable_max_term = Some(d);
                    ctx.metrics().inc("srv.persist.max_term");
                }
                ServerOutput::PersistLease {
                    resource,
                    client,
                    expiry,
                } => {
                    self.durable_leases.push((resource, client, expiry));
                    ctx.metrics().inc("srv.persist.lease");
                }
                ServerOutput::Committed {
                    resource,
                    version,
                    writer,
                } => {
                    self.history.borrow_mut().push(HistoryEvent::Commit {
                        resource,
                        version,
                        writer,
                        at: ctx.now(),
                    });
                }
            }
        }
    }

    /// Issues an administrative write (installing a new file version, §4).
    pub fn local_write(&mut self, ctx: &mut Ctx<'_, NetMsg>, resource: Res, data: Data) {
        let local = self.clock.local(ctx.now());
        let out = self.server.handle(
            local,
            ServerInput::LocalWrite { resource, data },
            &mut self.storage,
        );
        self.apply(ctx, out);
    }
}

impl Actor<NetMsg> for ServerActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NetMsg>) {
        let local = self.clock.local(ctx.now());
        let out = self.server.start(local, &self.storage);
        self.apply(ctx, out);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, NetMsg>, from: ActorId, msg: NetMsg) {
        let NetMsg::ToServer(msg) = msg else {
            return; // Stray message; the server only speaks ToServer.
        };
        let Some(client) = self.client_of(from) else {
            return;
        };
        if ctx.now() >= self.warmup {
            let name = match &msg {
                ToServer::Fetch { .. } => "srv.rx.fetch",
                ToServer::Renew { .. } => "srv.rx.renew",
                ToServer::Write { .. } => "srv.rx.write",
                ToServer::Approve { .. } => "srv.rx.approve",
                ToServer::Relinquish { .. } => "srv.rx.relinquish",
            };
            ctx.metrics().inc(name);
        }
        let local = self.clock.local(ctx.now());
        let out = self.server.handle(
            local,
            ServerInput::Msg { from: client, msg },
            &mut self.storage,
        );
        self.apply(ctx, out);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, NetMsg>, _timer: TimerId, key: u64) {
        self.timer_ids.remove(&key);
        let local = self.clock.local(ctx.now());
        let out = self.server.handle(
            local,
            ServerInput::Timer(Self::timer_of_key(key)),
            &mut self.storage,
        );
        self.apply(ctx, out);
    }

    fn on_crash(&mut self) {
        // Volatile protocol state dies; storage and durable slots survive.
        self.server.crash();
        self.timer_ids.clear();
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, NetMsg>) {
        let local = self.clock.local(ctx.now());
        let leases = self.durable_leases.clone();
        let out = self
            .server
            .recover(local, self.durable_max_term, leases, &self.storage);
        self.apply(ctx, out);
    }
}
