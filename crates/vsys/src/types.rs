//! Shared type aliases and the wire message enum.

use lease_core::{ToClient, ToServer};

/// The leased resource key: the trace's file id (regular files, installed
/// files, and directories alike — a directory read models the name lookup
/// an `open` needs, §2).
pub type Res = u64;

/// File contents, reduced to an opaque token: the experiments measure
/// message counts and delays, which do not depend on payload bytes. Write
/// tokens are unique per (client, sequence) so the oracle can correlate.
pub type Data = u64;

/// Everything that crosses the simulated network.
#[derive(Debug, Clone, PartialEq)]
pub enum NetMsg {
    /// Client-to-server protocol messages.
    ToServer(ToServer<Res, Data>),
    /// Server-to-client protocol messages.
    ToClient(ToClient<Res, Data>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use lease_core::ReqId;

    #[test]
    fn netmsg_wraps_both_directions() {
        let up = NetMsg::ToServer(ToServer::Relinquish { resources: vec![1] });
        let down: NetMsg = NetMsg::ToClient(ToClient::Error {
            req: ReqId(1),
            reason: lease_core::ErrorReason::NoSuchResource,
        });
        assert_ne!(up, down);
    }
}
