#![warn(missing_docs)]

//! The assembled V-style distributed file system.
//!
//! This crate wires the pieces together the way the paper's evaluation did
//! (§3.2): a file server running the lease protocol, `N` client caches, a
//! simulated V-style network (`lease-net`), per-host clocks, and a workload
//! driver that replays a trace open-loop into the caches, measuring
//!
//! * the server's consistency message load (extension requests and replies,
//!   approval callbacks and approvals, installed-file multicasts), and
//! * the delay consistency adds to each read and write.
//!
//! The same harness runs the lease protocol at any term — including zero
//! (check-on-every-read, the Sprite/Andrew-prototype configuration) and
//! infinity — and under crash/partition fault plans, and it records a
//! global [`History`] that the consistency oracle in `lease-faults` checks
//! against single-copy semantics.
//!
//! # Examples
//!
//! Reproducing one point of Figure 1's *Trace* curve:
//!
//! ```
//! use lease_clock::Dur;
//! use lease_vsys::{SystemConfig, TermSpec, run_trace};
//! use lease_workload::VTrace;
//!
//! let trace = VTrace::calibrated(1).generate();
//! let cfg = SystemConfig { term: TermSpec::Fixed(Dur::from_secs(10)), ..SystemConfig::default() };
//! let report = run_trace(&cfg, &trace);
//! assert!(report.hit_rate() > 0.5, "a 10 s lease should serve most reads locally");
//! ```

pub mod client_actor;
pub mod config;
pub mod driver;
pub mod harness;
pub mod history;
pub mod report;
pub mod server_actor;
pub mod types;

pub use client_actor::ClientActor;
pub use config::{CrashEvent, InstalledMode, NodeSel, SystemConfig, TermSpec};
pub use harness::{add_clients, build_world, run_trace, run_trace_with_history, RunHandle};
pub use history::{History, HistoryEvent, SharedHistory};
pub use report::RunReport;
pub use server_actor::ServerActor;
pub use types::{Data, NetMsg, Res};
