//! The open-loop workload driver embedded in each client actor.
//!
//! The analytic model is open-loop: operations arrive at their trace times
//! regardless of how long earlier ones take, and consistency's contribution
//! is the extra delay each operation experiences. The driver replays one
//! client's slice of the trace on that schedule, completes temporary-file
//! operations locally (the V cache's special handling, §2), and records
//! per-operation delay histograms split by kind.

use std::collections::HashMap;

use lease_clock::Time;
use lease_core::OpId;
use lease_sim::Metrics;
use lease_workload::{FileClass, Trace, TraceOp, TraceRecord};

/// The timer key the driver uses for "issue the next operation".
pub const DRIVER_TIMER_KEY: u64 = 0;

/// One client's trace replayer and latency recorder.
#[derive(Debug, Clone)]
pub struct OpDriver {
    records: Vec<TraceRecord>,
    classes: HashMap<u64, FileClass>,
    idx: usize,
    next_op: u64,
    outstanding: HashMap<OpId, Outstanding>,
    warmup: Time,
}

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    issued: Time,
    is_read: bool,
}

impl OpDriver {
    /// Builds a driver for `client`'s records in `trace`.
    pub fn new(trace: &Trace, client: u32, warmup: Time) -> OpDriver {
        OpDriver {
            records: trace
                .records
                .iter()
                .filter(|r| r.client == client)
                .copied()
                .collect(),
            classes: trace.files.iter().map(|f| (f.id, f.class)).collect(),
            idx: 0,
            next_op: 0,
            outstanding: HashMap::new(),
            warmup,
        }
    }

    /// When the next operation is due, if any remain.
    pub fn next_due(&self) -> Option<Time> {
        self.records.get(self.idx).map(|r| r.at)
    }

    /// The class of a file in the driving trace.
    pub fn class_of(&self, file: u64) -> FileClass {
        self.classes
            .get(&file)
            .copied()
            .unwrap_or(FileClass::Regular)
    }

    /// Takes all protocol-relevant operations due at `now`, assigning op
    /// ids and starting their latency clocks. Temporary-file operations
    /// are absorbed locally and only counted.
    pub fn take_due(&mut self, now: Time, metrics: &mut Metrics) -> Vec<(OpId, TraceOp)> {
        let mut out = Vec::new();
        while let Some(r) = self.records.get(self.idx) {
            if r.at > now {
                break;
            }
            let rec = *r;
            self.idx += 1;
            if self.class_of(rec.op.file()) == FileClass::Temporary {
                metrics.inc("client.temp_ops");
                continue;
            }
            let op = OpId(self.next_op);
            self.next_op += 1;
            self.outstanding.insert(
                op,
                Outstanding {
                    issued: rec.at,
                    is_read: rec.op.is_read(),
                },
            );
            out.push((op, rec.op));
        }
        out
    }

    /// Records the completion of `op`, observing its delay (unless it was
    /// issued before the warmup cutoff).
    pub fn complete(&mut self, now: Time, op: OpId, metrics: &mut Metrics) {
        let Some(o) = self.outstanding.remove(&op) else {
            return;
        };
        if o.issued < self.warmup {
            return;
        }
        let delay = now.saturating_since(o.issued).as_secs_f64();
        metrics.observe("delay.all", delay);
        metrics.observe(
            if o.is_read {
                "delay.read"
            } else {
                "delay.write"
            },
            delay,
        );
    }

    /// Marks `op` failed (timeout / missing resource); its delay is not
    /// recorded.
    pub fn fail(&mut self, op: OpId, metrics: &mut Metrics) {
        if self.outstanding.remove(&op).is_some() {
            metrics.inc("client.op_failures");
        }
    }

    /// Drops all in-flight operations (client crash).
    pub fn crash(&mut self) {
        self.outstanding.clear();
    }

    /// Whether every record has been issued and completed or failed.
    pub fn finished(&self) -> bool {
        self.idx >= self.records.len() && self.outstanding.is_empty()
    }

    /// How many records remain to be issued.
    pub fn remaining(&self) -> usize {
        self.records.len() - self.idx
    }

    /// Advances past (skips) records due before `now` without issuing
    /// them; used when recovering from a crash.
    pub fn skip_until(&mut self, now: Time) -> usize {
        let start = self.idx;
        while self.records.get(self.idx).is_some_and(|r| r.at <= now) {
            self.idx += 1;
        }
        self.idx - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lease_workload::FileSpec;

    fn trace() -> Trace {
        Trace::new(
            vec![
                FileSpec {
                    id: 1,
                    class: FileClass::Regular,
                    path: None,
                },
                FileSpec {
                    id: 2,
                    class: FileClass::Temporary,
                    path: None,
                },
            ],
            vec![
                TraceRecord {
                    at: Time::from_secs(1),
                    client: 0,
                    op: TraceOp::Read { file: 1 },
                },
                TraceRecord {
                    at: Time::from_secs(2),
                    client: 0,
                    op: TraceOp::Write { file: 2 },
                },
                TraceRecord {
                    at: Time::from_secs(3),
                    client: 0,
                    op: TraceOp::Write { file: 1 },
                },
                TraceRecord {
                    at: Time::from_secs(4),
                    client: 1,
                    op: TraceOp::Read { file: 1 },
                },
            ],
        )
    }

    #[test]
    fn filters_by_client() {
        let d = OpDriver::new(&trace(), 0, Time::ZERO);
        assert_eq!(d.remaining(), 3);
        let d1 = OpDriver::new(&trace(), 1, Time::ZERO);
        assert_eq!(d1.remaining(), 1);
    }

    #[test]
    fn temp_ops_absorbed_locally() {
        let mut d = OpDriver::new(&trace(), 0, Time::ZERO);
        let mut m = Metrics::new();
        let due = d.take_due(Time::from_secs(2), &mut m);
        // Read of 1 is issued; temp write of 2 is absorbed.
        assert_eq!(due.len(), 1);
        assert!(due[0].1.is_read());
        assert_eq!(m.counter("client.temp_ops"), 1);
        assert_eq!(d.next_due(), Some(Time::from_secs(3)));
    }

    #[test]
    fn delay_measured_from_trace_time() {
        let mut d = OpDriver::new(&trace(), 0, Time::ZERO);
        let mut m = Metrics::new();
        let due = d.take_due(Time::from_secs(1), &mut m);
        let (op, _) = due[0];
        d.complete(Time::from_millis(1003), op, &mut m);
        let h = m.histogram_mut("delay.read");
        assert_eq!(h.count(), 1);
        assert!((h.mean() - 0.003).abs() < 1e-9);
    }

    #[test]
    fn warmup_suppresses_early_samples() {
        let mut d = OpDriver::new(&trace(), 0, Time::from_secs(2));
        let mut m = Metrics::new();
        let due = d.take_due(Time::from_secs(1), &mut m);
        d.complete(Time::from_millis(1003), due[0].0, &mut m);
        assert!(m.histogram("delay.read").is_none());
        // The later write (at 3 s) is recorded.
        let due = d.take_due(Time::from_secs(3), &mut m);
        d.complete(Time::from_millis(3009), due[0].0, &mut m);
        assert_eq!(m.histogram_mut("delay.write").count(), 1);
    }

    #[test]
    fn finish_and_fail_bookkeeping() {
        let mut d = OpDriver::new(&trace(), 1, Time::ZERO);
        let mut m = Metrics::new();
        assert!(!d.finished());
        let due = d.take_due(Time::from_secs(10), &mut m);
        assert!(!d.finished());
        d.fail(due[0].0, &mut m);
        assert!(d.finished());
        assert_eq!(m.counter("client.op_failures"), 1);
    }

    #[test]
    fn skip_until_drops_missed_records() {
        let mut d = OpDriver::new(&trace(), 0, Time::ZERO);
        assert_eq!(d.skip_until(Time::from_secs(2)), 2);
        assert_eq!(d.next_due(), Some(Time::from_secs(3)));
    }
}
