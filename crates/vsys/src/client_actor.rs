//! The client-cache actor: the lease cache plus the workload driver.

use std::collections::HashMap;

use lease_clock::{ClockModel, Time};
use lease_core::{
    ClientId, ClientInput, ClientOutput, ClientTimer, LeaseClient, Op, OpId, OpOutcome,
};
use lease_sim::{Actor, ActorId, Ctx, TimerId};
use lease_workload::TraceOp;

use crate::driver::{OpDriver, DRIVER_TIMER_KEY};
use crate::history::{HistoryEvent, SharedHistory};
use crate::types::{Data, NetMsg, Res};

/// The client actor: a lease cache driven open-loop by its trace slice.
pub struct ClientActor {
    /// The cache state machine.
    pub cache: LeaseClient<Res, Data>,
    /// The workload driver.
    pub driver: OpDriver,
    clock: ClockModel,
    server: ActorId,
    id: ClientId,
    history: SharedHistory,
    /// op -> (resource, is_read), for history completion records.
    op_meta: HashMap<OpId, (Res, bool)>,
    timer_ids: HashMap<u64, TimerId>,
    next_data: u64,
    warmup: Time,
}

impl ClientActor {
    /// Creates the actor.
    pub fn new(
        cache: LeaseClient<Res, Data>,
        driver: OpDriver,
        clock: ClockModel,
        server: ActorId,
        history: SharedHistory,
        warmup: Time,
    ) -> ClientActor {
        let id = cache.id();
        ClientActor {
            cache,
            driver,
            clock,
            server,
            id,
            history,
            op_meta: HashMap::new(),
            timer_ids: HashMap::new(),
            next_data: 0,
            warmup,
        }
    }

    fn timer_key(t: ClientTimer) -> u64 {
        match t {
            ClientTimer::Renewal => 1,
            ClientTimer::Retry(r) => r.0 + 2,
        }
    }

    fn timer_of_key(key: u64) -> ClientTimer {
        if key == 1 {
            ClientTimer::Renewal
        } else {
            ClientTimer::Retry(lease_core::ReqId(key - 2))
        }
    }

    fn schedule_driver(&mut self, ctx: &mut Ctx<'_, NetMsg>) {
        if let Some(at) = self.driver.next_due() {
            ctx.set_timer_at(at, DRIVER_TIMER_KEY);
        }
    }

    fn issue_due(&mut self, ctx: &mut Ctx<'_, NetMsg>) {
        let due = self.driver.take_due(ctx.now(), ctx.metrics());
        for (op, trace_op) in due {
            let resource = trace_op.file();
            let now = ctx.now();
            let input = match trace_op {
                TraceOp::Read { file } => {
                    self.history.borrow_mut().push(HistoryEvent::ReadStart {
                        client: self.id,
                        op,
                        resource: file,
                        at: now,
                    });
                    self.op_meta.insert(op, (resource, true));
                    ClientInput::Op {
                        op,
                        kind: Op::Read(file),
                    }
                }
                TraceOp::Write { file } => {
                    self.history.borrow_mut().push(HistoryEvent::WriteStart {
                        client: self.id,
                        op,
                        resource: file,
                        at: now,
                    });
                    self.op_meta.insert(op, (resource, false));
                    let token = ((self.id.0 as u64) << 32) | self.next_data;
                    self.next_data += 1;
                    ClientInput::Op {
                        op,
                        kind: Op::Write(file, token),
                    }
                }
            };
            let local = self.clock.local(ctx.now());
            let out = self.cache.handle(local, input);
            self.apply(ctx, out);
        }
        self.schedule_driver(ctx);
    }

    fn apply(&mut self, ctx: &mut Ctx<'_, NetMsg>, outputs: Vec<ClientOutput<Res, Data>>) {
        for o in outputs {
            match o {
                ClientOutput::Send(msg) => {
                    ctx.send(self.server, NetMsg::ToServer(msg));
                }
                ClientOutput::SetTimer { at, timer } => {
                    let key = Self::timer_key(timer);
                    if let Some(old) = self.timer_ids.remove(&key) {
                        ctx.cancel_timer(old);
                    }
                    let local_now = self.clock.local(ctx.now());
                    let local_dur = at.saturating_since(local_now);
                    let true_at = self.clock.true_after(ctx.now(), local_dur);
                    let id = ctx.set_timer_at(true_at, key);
                    self.timer_ids.insert(key, id);
                }
                ClientOutput::CancelTimer(timer) => {
                    if let Some(id) = self.timer_ids.remove(&Self::timer_key(timer)) {
                        ctx.cancel_timer(id);
                    }
                }
                ClientOutput::Done { op, result } => {
                    let meta = self.op_meta.remove(&op);
                    match result {
                        Ok(outcome) => {
                            self.driver.complete(ctx.now(), op, ctx.metrics());
                            if ctx.now() >= self.warmup {
                                match &outcome {
                                    OpOutcome::Read {
                                        from_cache: true, ..
                                    } => ctx.metrics().inc("client.hit"),
                                    OpOutcome::Read {
                                        from_cache: false, ..
                                    } => ctx.metrics().inc("client.remote_read"),
                                    OpOutcome::Write { .. } => {
                                        ctx.metrics().inc("client.write_done")
                                    }
                                }
                            }
                            if let Some((resource, _)) = meta {
                                let ev = match outcome {
                                    OpOutcome::Read {
                                        version,
                                        from_cache,
                                        ..
                                    } => HistoryEvent::ReadDone {
                                        client: self.id,
                                        op,
                                        resource,
                                        version,
                                        at: ctx.now(),
                                        from_cache,
                                    },
                                    OpOutcome::Write { version } => HistoryEvent::WriteDone {
                                        client: self.id,
                                        op,
                                        resource,
                                        version,
                                        at: ctx.now(),
                                    },
                                };
                                self.history.borrow_mut().push(ev);
                            }
                        }
                        Err(_) => {
                            self.driver.fail(op, ctx.metrics());
                        }
                    }
                }
            }
        }
    }
}

impl Actor<NetMsg> for ClientActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NetMsg>) {
        let local = self.clock.local(ctx.now());
        let out = self.cache.start(local);
        self.apply(ctx, out);
        self.schedule_driver(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, NetMsg>, _from: ActorId, msg: NetMsg) {
        let NetMsg::ToClient(msg) = msg else {
            return;
        };
        let local = self.clock.local(ctx.now());
        let out = self.cache.handle(local, ClientInput::Msg(msg));
        self.apply(ctx, out);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, NetMsg>, _timer: TimerId, key: u64) {
        if key == DRIVER_TIMER_KEY {
            self.issue_due(ctx);
            return;
        }
        self.timer_ids.remove(&key);
        let local = self.clock.local(ctx.now());
        let out = self
            .cache
            .handle(local, ClientInput::Timer(Self::timer_of_key(key)));
        self.apply(ctx, out);
    }

    fn on_crash(&mut self) {
        self.cache.crash();
        self.driver.crash();
        self.op_meta.clear();
        self.timer_ids.clear();
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, NetMsg>) {
        // Operations that should have run while down are lost, not replayed.
        self.driver.skip_until(ctx.now());
        let local = self.clock.local(ctx.now());
        let out = self.cache.start(local);
        self.apply(ctx, out);
        self.schedule_driver(ctx);
    }
}
