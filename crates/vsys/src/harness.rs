//! Building and running a complete simulated system.

use lease_clock::{Dur, Time};
use lease_core::{
    AdaptiveTerm, ClientConfig, ClientId, CompensatedTerm, LeaseClient, LeaseServer, MemStorage,
    RecoveryMode, ServerConfig,
};
use lease_net::{FaultPlanNet, SimNet};
use lease_sim::{ActorId, World};
use lease_workload::{FileClass, Trace};

use crate::client_actor::ClientActor;
use crate::config::{InstalledMode, NodeSel, SystemConfig, TermSpec};
use crate::driver::OpDriver;
use crate::history::{self, SharedHistory};
use crate::report::RunReport;
use crate::server_actor::ServerActor;
use crate::types::NetMsg;

/// A built, ready-to-run system.
pub struct RunHandle {
    /// The world (server is actor 0, client `i` is actor `i + 1`).
    pub world: World<NetMsg>,
    /// The server's actor id.
    pub server: ActorId,
    /// Client actor ids, indexed by client id.
    pub clients: Vec<ActorId>,
    /// The shared execution history for the oracle.
    pub history: SharedHistory,
    /// Time of the last trace record.
    pub trace_end: Time,
    /// The configuration used.
    pub warmup: Time,
}

/// Adds the standard lease-cache client actors for every client in
/// `trace` to a world whose server is `server_id`. Returns their actor
/// ids (client `i` gets the next free slot, in order). Exposed so baseline
/// protocols can reuse the exact same cache, driver, and measurement code
/// against a different server.
pub fn add_clients(
    world: &mut World<NetMsg>,
    cfg: &SystemConfig,
    trace: &Trace,
    server_id: ActorId,
    history: &SharedHistory,
) -> Vec<ActorId> {
    let n = trace.client_count().max(1);
    let warmup = Time::ZERO + cfg.warmup;
    let mut ids = Vec::with_capacity(n as usize);
    for i in 0..n {
        let cc = ClientConfig {
            epsilon: cfg.epsilon,
            retry_interval: cfg.retry_interval,
            max_retries: cfg.max_retries,
            batch_extensions: cfg.batch_extensions,
            anticipatory: cfg.anticipatory,
            capacity: cfg.cache_capacity,
            ..ClientConfig::default()
        };
        let cache = LeaseClient::new(ClientId(i), cc);
        let driver = OpDriver::new(trace, i, warmup);
        ids.push(world.add_actor(ClientActor::new(
            cache,
            driver,
            cfg.client_clock(i as usize),
            server_id,
            history.clone(),
            warmup,
        )));
    }
    ids
}

/// Builds the world for `cfg` and `trace` without running it.
pub fn build_world(cfg: &SystemConfig, trace: &Trace) -> RunHandle {
    let n = trace.client_count().max(1);
    let mut net = SimNet::new(cfg.net)
        .with_faults(FaultPlanNet {
            loss_prob: cfg.loss,
            duplicate_prob: cfg.duplicate,
            partitions: cfg.partitions.clone(),
        })
        .with_jitter(cfg.jitter);
    for (client, extra) in &cfg.extra_prop {
        net = net.with_extra_prop(ActorId(1 + *client as usize), *extra);
    }
    let mut world: World<NetMsg> = World::with_queue_kind(cfg.seed, net, cfg.queue);
    let history = history::shared();
    let warmup = Time::ZERO + cfg.warmup;

    // Ids are deterministic: server first, then clients.
    let server_id = ActorId(0);
    let client_ids: Vec<ActorId> = (0..n).map(|i| ActorId(1 + i as usize)).collect();

    // Primary storage: every trace file exists at version 1.
    let mut storage = MemStorage::new();
    for f in &trace.files {
        storage.insert(f.id, 0);
    }

    // Server configuration.
    let mut sc: ServerConfig<u64> = match &cfg.term {
        TermSpec::Fixed(d) => ServerConfig::fixed(*d),
        TermSpec::Adaptive { theta, min, max } => {
            let mut c = ServerConfig::fixed(Dur::ZERO);
            c.policy = Box::new(AdaptiveTerm {
                theta: *theta,
                min: *min,
                max: *max,
            });
            c
        }
        TermSpec::Compensated { base, extra } => {
            let mut c = ServerConfig::fixed(*base);
            let mut policy = CompensatedTerm::new(Box::new(lease_core::FixedTerm(*base)));
            for (client, add) in extra {
                policy = policy.compensate(ClientId(*client), *add);
            }
            c.policy = Box::new(policy);
            c
        }
    };
    sc.recovery = if cfg.persistent_leases {
        RecoveryMode::PersistentRecords
    } else {
        RecoveryMode::MaxTerm
    };
    if let InstalledMode::Multicast { tick, term } = cfg.installed {
        sc.installed_tick = tick;
        sc.installed_term = term;
    }
    let mut server: LeaseServer<u64, u64> = LeaseServer::new(sc);
    if matches!(cfg.installed, InstalledMode::Multicast { .. }) {
        for f in &trace.files {
            if f.class == FileClass::Installed {
                server.add_installed(f.id);
            }
        }
        server.set_installed_group((0..n).map(ClientId).collect());
    }

    let sid = world.add_actor(ServerActor::new(
        server,
        storage,
        cfg.server_clock.clone(),
        client_ids.clone(),
        history.clone(),
        warmup,
    ));
    debug_assert_eq!(sid, server_id);

    let added = add_clients(&mut world, cfg, trace, server_id, &history);
    debug_assert_eq!(added, client_ids);

    // Schedule faults.
    for crash in &cfg.crashes {
        let victim = match crash.node {
            NodeSel::Server => server_id,
            NodeSel::Client(i) => client_ids[i as usize],
        };
        world.schedule_crash(crash.at, victim);
        if let Some(r) = crash.recover_at {
            world.schedule_recover(r, victim);
        }
    }

    let trace_end = Time::ZERO + trace.duration();
    RunHandle {
        world,
        server: server_id,
        clients: client_ids,
        history,
        trace_end,
        warmup,
    }
}

/// Builds, runs to completion (trace end plus drain), and reports.
pub fn run_trace(cfg: &SystemConfig, trace: &Trace) -> RunReport {
    let mut h = build_world(cfg, trace);
    let end = h.trace_end + cfg.drain;
    h.world.run_until(end);
    let window = end.saturating_since(h.warmup).as_secs_f64();
    RunReport::from_world(&mut h.world, window)
}

/// Builds and runs, returning both the report and the handle (for history
/// inspection by the oracle).
pub fn run_trace_with_history(cfg: &SystemConfig, trace: &Trace) -> (RunReport, RunHandle) {
    let mut h = build_world(cfg, trace);
    let end = h.trace_end + cfg.drain;
    h.world.run_until(end);
    let window = end.saturating_since(h.warmup).as_secs_f64();
    let report = RunReport::from_world(&mut h.world, window);
    (report, h)
}
