//! Deterministic chaos sweeps over the 3-replica grantor quorum, and the
//! negative controls proving the oracle can actually catch split brain.
//!
//! Every run is a pure function of its seed: the sim replays the plan's
//! per-link dice and per-replica clocks in virtual time, so a failing seed
//! here is a complete reproducer.

use lease_clock::{ClockModel, Dur, Time};
use lease_faults::{check_history, staleness_of, Violation};
use lease_quorum::sim::{run, SimConfig};
use lease_quorum::QuorumConfig;
use lease_svc::chaos::FaultPlan;
use lease_vsys::HistoryEvent;

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// ≥100 seeds of kill + cut + drop/dup/delay chaos, with a 2×-fast clock
/// on one (minority) replica every fourth seed: the quorum must never
/// produce two grantors.
#[test]
fn hundred_seed_chaos_sweep_has_no_violations() {
    for seed in 0..100u64 {
        let kill_at = 300 + mix(seed) % 3000;
        let victim = (mix(seed ^ 1) % 3) as usize;
        let cut_from = 500 + mix(seed ^ 2) % 3000;
        let cut_len = 200 + mix(seed ^ 3) % 1500;
        let cut_who = (mix(seed ^ 4) % 3) as usize;
        let mut plan = FaultPlan::new(seed)
            .kill_replica(Dur::from_millis(kill_at), victim)
            .cut_replica(
                Dur::from_millis(cut_from),
                Dur::from_millis(cut_from + cut_len),
                cut_who,
            )
            .drop_messages(0.02 + (mix(seed ^ 5) % 5) as f64 * 0.02)
            .duplicate_messages(0.05)
            .delay_messages(Dur::from_millis(4));
        if seed % 4 == 0 {
            // One fast clock is a *minority* fault: quorum intersection
            // must mask it.
            plan = plan.with_replica_clock((seed % 3) as usize, ClockModel::drifting(1_000_000.0));
        }
        let out = run(&SimConfig {
            plan,
            duration: Dur::from_secs(8),
            ..SimConfig::default()
        });
        let res = check_history(&out.history);
        assert!(
            res.is_ok(),
            "seed {seed}: violations {:?}\nhistory: {:?}",
            res.as_ref().err(),
            out.history.events
        );
    }
}

/// A single 2×-fast replica — acceptor or leader — is inside the fault
/// model and gets masked: one correct acceptor in every majority still
/// remembers the live lease, and a fast *leader* merely cedes early.
#[test]
fn single_fast_replica_clock_is_masked() {
    for fast in 0..3usize {
        let plan = FaultPlan::new(11).with_replica_clock(fast, ClockModel::drifting(1_000_000.0));
        let out = run(&SimConfig {
            plan,
            duration: Dur::from_secs(10),
            ..SimConfig::default()
        });
        let res = check_history(&out.history);
        assert!(res.is_ok(), "fast replica {fast}: {:?}", res.err());
        assert!(out.acquisitions >= 2, "the quorum must still make progress");
    }
}

/// A partitioned leader with correct clocks self-fences at its local
/// expiry, strictly before the surviving majority can elect a successor.
#[test]
fn partitioned_leader_with_correct_clocks_is_safe() {
    let plan = FaultPlan::new(5).cut_replica(Dur::from_millis(300), Dur::from_secs(4), 0);
    let out = run(&SimConfig {
        plan,
        duration: Dur::from_secs(8),
        ..SimConfig::default()
    });
    let res = check_history(&out.history);
    assert!(res.is_ok(), "violations: {:?}", res.err());
    // And the cluster did fail over while replica 0 was cut off.
    let successor = out.history.events.iter().any(|e| {
        matches!(e, HistoryEvent::GrantorAcquired { replica, at, .. }
            if *replica != 0 && *at < Time::from_secs(4))
    });
    assert!(successor, "a successor must be elected during the cut");
}

/// The acceptance-criterion negative control: disable self-fencing (the
/// injected bug) and the partitioned ex-leader keeps serving while its
/// successor takes over — the oracle must flag TwoGrantors.
#[test]
fn fencing_disabled_split_brain_is_caught() {
    let plan = FaultPlan::new(5).cut_replica(Dur::from_millis(300), Dur::from_secs(6), 0);
    let out = run(&SimConfig {
        quorum: QuorumConfig {
            fence: false,
            ..QuorumConfig::default()
        },
        plan,
        duration: Dur::from_secs(8),
        ..SimConfig::default()
    });
    let violations = check_history(&out.history).expect_err("split brain must be detected");
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::TwoGrantors { .. })),
        "expected TwoGrantors, got {violations:?}"
    );
    // staleness_of reports the split-brain window for the new variant.
    assert!(!staleness_of(&violations).is_empty());
}

/// A *majority* of 2×-fast acceptor clocks is outside the fault model:
/// they forget the live lease at half its true term, letting a successor
/// in while the correctly-clocked leader still serves. The oracle must
/// catch it — this is the grantor-level analogue of the PR 2 fast
/// server-clock test.
#[test]
fn majority_fast_acceptor_clocks_split_brain_is_caught() {
    let plan = FaultPlan::new(9)
        // Cut the leader so it cannot renew (renewal would re-arm the fast
        // acceptors and hide the hazard)...
        .cut_replica(Dur::from_millis(300), Dur::from_secs(6), 0)
        // ...while the other two replicas run 2× fast.
        .with_replica_clock(1, ClockModel::drifting(1_000_000.0))
        .with_replica_clock(2, ClockModel::drifting(1_000_000.0));
    let out = run(&SimConfig {
        plan,
        duration: Dur::from_secs(8),
        ..SimConfig::default()
    });
    let violations = check_history(&out.history).expect_err("majority clock failure must surface");
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::TwoGrantors { .. })),
        "expected TwoGrantors, got {violations:?}"
    );
}

/// The worst *in-bound* pairing: leader clock at the slow edge
/// (−100k ppm) while both other replicas run at the fast edge
/// (+100k ppm), with the leader cut off across its claim's tail so it
/// rides the lease out alone. A one-sided discount (`term · (1 − d)`)
/// leaves a ~`term · 2d / (1 + d)` split-brain window here; the
/// two-sided `usable_term` must leave none, for every seed and cut
/// placement.
#[test]
fn slow_leader_fast_acceptors_within_bound_are_safe() {
    for seed in 0..10u64 {
        for cut_ms in [450u64, 500, 700, 900, 1300, 1800, 2400] {
            let plan = FaultPlan::new(seed)
                .with_replica_clock(0, ClockModel::drifting(-100_000.0))
                .with_replica_clock(1, ClockModel::drifting(100_000.0))
                .with_replica_clock(2, ClockModel::drifting(100_000.0))
                .cut_replica(Dur::from_millis(cut_ms), Dur::from_secs(6), 0);
            let out = run(&SimConfig {
                plan,
                duration: Dur::from_secs(8),
                ..SimConfig::default()
            });
            let res = check_history(&out.history);
            assert!(
                res.is_ok(),
                "seed {seed} cut {cut_ms}: {:?}\nhistory: {:?}",
                res.as_ref().err(),
                out.history.events
            );
        }
    }
}

/// A leader whose clock runs slower than the tolerated drift bound trusts
/// its lease for longer (in true time) than the acceptors hold it: caught.
#[test]
fn slow_leader_clock_beyond_bound_is_caught() {
    let plan = FaultPlan::new(13)
        .cut_replica(Dur::from_millis(300), Dur::from_secs(6), 0)
        // 0.4× speed — far beyond the 10% bound the config discounts.
        .with_replica_clock(0, ClockModel::drifting(-600_000.0));
    let out = run(&SimConfig {
        plan,
        duration: Dur::from_secs(8),
        ..SimConfig::default()
    });
    let violations = check_history(&out.history).expect_err("slow leader must overshoot");
    assert!(violations
        .iter()
        .any(|v| matches!(v, Violation::TwoGrantors { .. })));
}

/// Crash-restarting every replica in sequence never breaks the invariant:
/// MaxTerm silence keeps each rebooted node out of elections its old
/// promises could poison.
#[test]
fn rolling_replica_restarts_are_safe() {
    for seed in 0..20u64 {
        let plan = FaultPlan::new(seed)
            .kill_replica(Dur::from_millis(800), 0)
            .kill_replica(Dur::from_millis(2600), 1)
            .kill_replica(Dur::from_millis(4400), 2)
            .delay_messages(Dur::from_millis(3));
        let out = run(&SimConfig {
            plan,
            duration: Dur::from_secs(8),
            ..SimConfig::default()
        });
        let res = check_history(&out.history);
        assert!(res.is_ok(), "seed {seed}: {:?}", res.err());
    }
}
