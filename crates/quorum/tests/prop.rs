//! Property tests for the grantor quorum: the diskless-restart argument
//! and the adversarial two-proposer race under clock skew.

use lease_clock::{ClockModel, Dur, Time};
use lease_faults::check_history;
use lease_quorum::sim::{run, SimConfig};
use lease_quorum::{Acceptor, Ballot, QuorumConfig, QuorumMsg};
use lease_svc::chaos::FaultPlan;
use proptest::prelude::*;

/// Case count: 24 by default (CI-friendly), override with LEASE_PROP_CASES.
fn cases() -> u32 {
    std::env::var("LEASE_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(), ..ProptestConfig::default() })]

    /// The §5 MaxTerm restart argument, as a property: an acceptor that
    /// accepted a grantor lease and then crash-restarted stays silent for
    /// the entire remaining life of that lease — so a restart can never
    /// help elect a second grantor inside a live term. (`max_term >=
    /// term * (1 + drift_bound) / (1 - drift_bound)` makes the local
    /// window cover the true one under worst-case cross-replica rates;
    /// clock-rate effects are exercised by the sim sweeps. This test runs
    /// drift-free, so the plain `1.1x` margin below suffices.)
    #[test]
    fn acceptor_restart_never_repromises_inside_a_live_lease(
        term_ms in 100u64..5_000,
        accept_at_ms in 0u64..10_000,
        crash_dt_ms in 0u64..5_000,
        probe_dt_ms in 0u64..5_000,
        round in 1u32..1000,
    ) {
        let term = Dur::from_millis(term_ms);
        let max_term = term.mul_f64(1.1);
        let accept_at = Time::from_millis(accept_at_ms);
        let mut a = Acceptor::new();
        let b = Ballot::new(round, 0);
        a.handle(accept_at, QuorumMsg::Prepare { b });
        a.handle(accept_at, QuorumMsg::Propose { b, holder: 0, term });
        let lease_expires = accept_at + term;
        // Crash anywhere inside the lease.
        let crash_at = accept_at + Dur::from_millis(crash_dt_ms.min(term_ms.saturating_sub(1)));
        a.restart(crash_at, max_term);
        // Probe anywhere from the crash to the end of the old lease: the
        // acceptor must stay silent (silence cannot form a quorum).
        let probe = crash_at + Dur::from_millis(probe_dt_ms);
        let reply = a.handle(
            probe.min(lease_expires - Dur::from_millis(1)),
            QuorumMsg::Prepare { b: Ballot::new(round + 1, 1) },
        );
        prop_assert!(
            reply.is_none() || probe >= lease_expires,
            "restarted acceptor replied {reply:?} inside the old lease"
        );
        // And the silence window covers the whole lease by construction.
        prop_assert!(crash_at + max_term >= lease_expires);
    }

    /// The adversarial race: two (or three) proposers contending through
    /// kills, a partition, message chaos, and per-replica clock skew
    /// *within the tolerated bound* — at most one grantor at any true
    /// time, every seed.
    #[test]
    fn skewed_proposer_races_never_elect_two_grantors(
        seed in 0u64..10_000,
        skew0_ppm in -100_000.0f64..100_000.0,
        skew1_ppm in -100_000.0f64..100_000.0,
        skew2_ppm in -100_000.0f64..100_000.0,
        kill_at_ms in 200u64..4_000,
        victim in 0usize..3,
        cut_from_ms in 200u64..4_000,
        cut_len_ms in 100u64..2_000,
        cut_who in 0usize..3,
    ) {
        let plan = FaultPlan::new(seed)
            .with_replica_clock(0, ClockModel::drifting(skew0_ppm))
            .with_replica_clock(1, ClockModel::drifting(skew1_ppm))
            .with_replica_clock(2, ClockModel::drifting(skew2_ppm))
            .kill_replica(Dur::from_millis(kill_at_ms), victim)
            .cut_replica(
                Dur::from_millis(cut_from_ms),
                Dur::from_millis(cut_from_ms + cut_len_ms),
                cut_who,
            )
            .drop_messages(0.05)
            .duplicate_messages(0.05)
            .delay_messages(Dur::from_millis(5));
        let out = run(&SimConfig {
            // The 10% drift bound covers the full sampled skew range:
            // usable_term = term * (1 - d) / (1 + d) discounts a slow
            // leader AND fast acceptors, so even the worst pairing (leader
            // at -100k ppm, acceptors at +100k ppm) cannot overlap.
            quorum: QuorumConfig::default(),
            plan,
            duration: Dur::from_secs(6),
            ..SimConfig::default()
        });
        let res = check_history(&out.history);
        prop_assert!(res.is_ok(), "violations: {:?}", res.err());
    }
}
