//! One grantor replica: an acceptor and a proposer wired back-to-back.

use lease_clock::{Dur, Time};
use lease_core::Backoff;

use crate::acceptor::Acceptor;
use crate::msg::{Ballot, QuorumMsg};
use crate::proposer::{PropAction, Proposer};

/// Tuning for one grantor quorum.
#[derive(Debug, Clone)]
pub struct QuorumConfig {
    /// Number of replicas (= acceptors = potential proposers).
    pub replicas: u32,
    /// Grantor-lease term, as granted to acceptors.
    pub term: Dur,
    /// Restart silence window (§5 MaxTerm): must cover the longest time
    /// any promise or accepted lease from a dead incarnation can matter.
    /// [`QuorumConfig::validate`] requires `max_term >= term * (1 +
    /// drift_bound) / (1 - drift_bound)`: the restarting replica may wait
    /// on a fast clock while the lease it enabled lives on a slow one.
    pub max_term: Dur,
    /// Fraction of the usable term after which the holder renews.
    pub renew_frac: f64,
    /// The clock-rate error (ppm) the protocol tolerates on *any*
    /// replica's clock, leader and acceptors alike: every clock's rate is
    /// assumed within `[1 - bound, 1 + bound]` of true rate. The leader
    /// only trusts [`QuorumConfig::usable_term`] of its lease, which
    /// discounts both a slow leader clock and fast acceptor clocks. A
    /// clock outside the bound is outside the fault model and may produce
    /// two grantors — the oracle's job to catch.
    pub drift_bound_ppm: f64,
    /// Abort a prepare/propose round not done within this local span.
    pub op_timeout: Dur,
    /// Base pause between proposer attempts.
    pub retry_base: Dur,
    /// The jittered exponential backoff applied to `retry_base`.
    pub backoff: Backoff,
    /// Whether the holder *fences itself* at local lease expiry (cedes and
    /// stops serving). Disabling this is the canonical injected bug: a
    /// partitioned ex-leader keeps serving while its successor takes over.
    pub fence: bool,
    /// Boot stagger: replica `i` may first propose at `i * stagger`,
    /// making the initial election deterministic and stampede-free.
    pub stagger: Dur,
}

impl Default for QuorumConfig {
    fn default() -> QuorumConfig {
        QuorumConfig {
            replicas: 3,
            term: Dur::from_millis(1000),
            max_term: Dur::from_millis(2200),
            renew_frac: 0.5,
            drift_bound_ppm: 100_000.0, // 10%
            op_timeout: Dur::from_millis(150),
            retry_base: Dur::from_millis(25),
            backoff: Backoff::exponential(Dur::from_millis(400)),
            fence: true,
            stagger: Dur::from_millis(20),
        }
    }
}

impl QuorumConfig {
    /// Quorum size: a strict majority of the replicas.
    pub fn majority(&self) -> u32 {
        self.replicas / 2 + 1
    }

    /// The portion of the term the *holder* may trust: `term * (1 - d) /
    /// (1 + d)`, discounting both ends of the fault model at once. A
    /// leader clock at the slow edge (`1 - d`) stretches a local span by
    /// `1 / (1 - d)` in true time, so the leader's view lives
    /// `term * (1 - d) / (1 + d) / (1 - d) = term / (1 + d)` of true time
    /// — exactly when an acceptor clock at the fast edge (`1 + d`)
    /// forgets its accepted lease, which started no earlier than the
    /// leader's timer. Discounting only the slow side (`term * (1 - d)`)
    /// would leave a `~term * 2d / (1 + d)` window where a fast acceptor
    /// has forgotten while the slow leader still serves.
    pub fn usable_term(&self) -> Dur {
        let d = self.drift_bound_ppm / 1e6;
        self.term.mul_f64((1.0 - d) / (1.0 + d))
    }

    /// Checks internal consistency (quorum arithmetic and MaxTerm cover).
    pub fn validate(&self) -> Result<(), String> {
        if self.replicas == 0 || self.replicas > 63 {
            return Err(format!("replicas must be in 1..=63, got {}", self.replicas));
        }
        if !(0.0..1.0).contains(&self.renew_frac) {
            return Err(format!(
                "renew_frac must be in [0,1), got {}",
                self.renew_frac
            ));
        }
        if !(0.0..1e6).contains(&self.drift_bound_ppm) {
            return Err(format!(
                "drift_bound_ppm must be in [0, 1e6), got {}",
                self.drift_bound_ppm
            ));
        }
        // A restarting replica may wait out max_term on a fast clock
        // (true wait max_term / (1 + d)) while a lease it promised or
        // accepted lives out its term on a slow peer's clock (true life
        // term / (1 - d)); the silence must cover the life.
        let d = self.drift_bound_ppm / 1e6;
        let cover = self.term.mul_f64((1.0 + d) / (1.0 - d));
        if self.max_term < cover {
            return Err(format!(
                "max_term {} does not cover term*(1+drift)/(1-drift) = {}",
                self.max_term, cover
            ));
        }
        Ok(())
    }
}

/// What a node asks its host to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeOut {
    /// Send `msg` to replica `to`.
    Send {
        /// Destination replica.
        to: u32,
        /// The message.
        msg: QuorumMsg,
    },
    /// This replica became the grantor under `ballot`; the host should
    /// open the serving gate (and record the claim).
    Acquired {
        /// The winning ballot.
        ballot: Ballot,
        /// Whether this starts a new serving session (`false` = seamless
        /// renewal by the same replica). A fresh session means any
        /// grantor-side state from an earlier session is untrustworthy.
        fresh: bool,
    },
    /// This replica's claim under `ballot` ended; `overshoot` is how far
    /// past the true end the noticing instant lies on the local clock
    /// (for backdating the record).
    Ceded {
        /// The ended ballot.
        ballot: Ballot,
        /// Local-clock overshoot past the claim end.
        overshoot: Dur,
    },
}

/// One replica of the grantor quorum: the sans-IO composition of an
/// [`Acceptor`] and a [`Proposer`]. The host owns the clock and the
/// network; the node is driven by [`GrantorNode::tick`] and
/// [`GrantorNode::handle`], with self-addressed messages short-circuited
/// internally (a replica never talks to itself over the wire).
#[derive(Debug, Clone)]
pub struct GrantorNode {
    id: u32,
    cfg: QuorumConfig,
    acceptor: Acceptor,
    proposer: Proposer,
}

impl GrantorNode {
    /// Creates replica `id` of the quorum.
    ///
    /// # Panics
    ///
    /// Panics if the config fails [`QuorumConfig::validate`].
    pub fn new(id: u32, cfg: QuorumConfig) -> GrantorNode {
        if let Err(e) = cfg.validate() {
            panic!("invalid QuorumConfig: {e}");
        }
        let first = Time::ZERO + cfg.stagger * u64::from(id);
        GrantorNode {
            id,
            proposer: Proposer::new(id, cfg.clone(), first),
            acceptor: Acceptor::new(),
            cfg,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The config the node runs under.
    pub fn config(&self) -> &QuorumConfig {
        &self.cfg
    }

    /// Whether this replica currently claims grantorship at local `now`.
    pub fn is_serving(&self, now: Time) -> bool {
        self.proposer.is_serving(now)
    }

    /// The ballot of the live claim at `now`, if any.
    pub fn serving_ballot(&self, now: Time) -> Option<Ballot> {
        self.proposer.serving_ballot(now)
    }

    /// The local expiry of the current claim, if one is held.
    pub fn claim_expires(&self) -> Option<Time> {
        self.proposer.claim_expires()
    }

    /// Advances timers at local time `now`.
    pub fn tick(&mut self, now: Time) -> Vec<NodeOut> {
        let actions = self.proposer.tick(now);
        self.run(now, actions)
    }

    /// Handles a message from replica `from` at local time `now`.
    pub fn handle(&mut self, now: Time, from: u32, msg: QuorumMsg) -> Vec<NodeOut> {
        match msg {
            QuorumMsg::Prepare { .. } | QuorumMsg::Propose { .. } => {
                match self.acceptor.handle(now, msg) {
                    Some(reply) => vec![NodeOut::Send {
                        to: from,
                        msg: reply,
                    }],
                    None => Vec::new(),
                }
            }
            _ => {
                let actions = self.proposer.on_reply(now, from, msg);
                self.run(now, actions)
            }
        }
    }

    /// Crash-restarts the whole replica: acceptor and proposer lose all
    /// volatile state and sit out the MaxTerm window on the local clock.
    pub fn restart(&mut self, now: Time) -> Vec<NodeOut> {
        self.acceptor.restart(now, self.cfg.max_term);
        let actions = self.proposer.restart(now, self.cfg.max_term);
        self.run(now, actions)
    }

    /// Executes proposer actions, looping self-addressed traffic through
    /// the local acceptor synchronously.
    fn run(&mut self, now: Time, actions: Vec<PropAction>) -> Vec<NodeOut> {
        let mut out = Vec::new();
        let mut queue = actions;
        while !queue.is_empty() {
            let mut next = Vec::new();
            for a in queue {
                match a {
                    PropAction::Broadcast(msg) => {
                        for to in (0..self.cfg.replicas).filter(|r| *r != self.id) {
                            out.push(NodeOut::Send { to, msg });
                        }
                        // Self-delivery: acceptor first, then feed the
                        // reply straight back to the proposer.
                        if let Some(reply) = self.acceptor.handle(now, msg) {
                            next.extend(self.proposer.on_reply(now, self.id, reply));
                        }
                    }
                    PropAction::Acquired { b, fresh } => {
                        out.push(NodeOut::Acquired { ballot: b, fresh })
                    }
                    PropAction::Ceded(ballot, overshoot) => {
                        out.push(NodeOut::Ceded { ballot, overshoot })
                    }
                }
            }
            queue = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> QuorumConfig {
        QuorumConfig::default()
    }

    /// A zero-latency, lossless 3-replica harness for unit tests.
    struct Mesh {
        nodes: Vec<GrantorNode>,
    }

    impl Mesh {
        fn new(n: u32, cfg: QuorumConfig) -> Mesh {
            Mesh {
                nodes: (0..n).map(|i| GrantorNode::new(i, cfg.clone())).collect(),
            }
        }

        /// Ticks every node at `now` and drains all traffic to quiescence.
        fn step(&mut self, now: Time) -> Vec<(u32, NodeOut)> {
            let mut events = Vec::new();
            let mut pending: Vec<(u32, u32, QuorumMsg)> = Vec::new(); // (from, to, msg)
            for i in 0..self.nodes.len() {
                let outs = self.nodes[i].tick(now);
                route(i as u32, outs, &mut pending, &mut events);
            }
            while let Some((from, to, msg)) = pending.pop() {
                let outs = self.nodes[to as usize].handle(now, from, msg);
                route(to, outs, &mut pending, &mut events);
            }
            events
        }
    }

    fn route(
        src: u32,
        outs: Vec<NodeOut>,
        pending: &mut Vec<(u32, u32, QuorumMsg)>,
        events: &mut Vec<(u32, NodeOut)>,
    ) {
        for o in outs {
            match o {
                NodeOut::Send { to, msg } => pending.push((src, to, msg)),
                other => events.push((src, other)),
            }
        }
    }

    fn serving(mesh: &Mesh, now: Time) -> Vec<u32> {
        mesh.nodes
            .iter()
            .filter(|n| n.is_serving(now))
            .map(|n| n.id())
            .collect()
    }

    #[test]
    fn first_boot_elects_exactly_one_grantor() {
        let mut m = Mesh::new(3, cfg());
        let t = Time::ZERO;
        let events = m.step(t);
        // Replica 0's stagger slot is 0, so it wins the first election
        // synchronously in a lossless mesh.
        assert!(events
            .iter()
            .any(|(id, e)| *id == 0 && matches!(e, NodeOut::Acquired { .. })));
        assert_eq!(serving(&m, t), vec![0]);
        // Later stagger slots don't produce a second grantor: replicas 1
        // and 2 observe the live lease and stand down.
        for ms in 1..200u64 {
            m.step(Time::from_millis(ms));
            assert_eq!(serving(&m, Time::from_millis(ms)), vec![0]);
        }
    }

    #[test]
    fn leader_renews_before_expiry_and_keeps_the_lease() {
        let mut m = Mesh::new(3, cfg());
        let mut acquired = 0u32;
        for ms in 0..3000u64 {
            let t = Time::from_millis(ms);
            for (id, e) in m.step(t) {
                if matches!(e, NodeOut::Acquired { .. }) {
                    assert_eq!(id, 0, "leadership must not move in a quiet cluster");
                    acquired += 1;
                }
            }
            assert_eq!(serving(&m, t), vec![0], "at {t}");
        }
        // Initial election + at least one renewal per term.
        assert!(
            acquired >= 3,
            "expected renewals, saw {acquired} acquisitions"
        );
    }

    #[test]
    fn killed_leader_is_replaced_after_its_lease_expires() {
        let mut m = Mesh::new(3, cfg());
        m.step(Time::ZERO);
        assert_eq!(serving(&m, Time::ZERO), vec![0]);
        // Kill the leader at 100 ms; its claim closes immediately.
        let outs = m.nodes[0].restart(Time::from_millis(100));
        assert!(outs.iter().any(|o| matches!(o, NodeOut::Ceded { .. })));
        let mut new_leader = None;
        for ms in 100..4000u64 {
            let t = Time::from_millis(ms);
            for (id, e) in m.step(t) {
                if matches!(e, NodeOut::Acquired { .. }) && new_leader.is_none() {
                    new_leader = Some((id, ms));
                }
            }
        }
        let (leader, at_ms) = new_leader.expect("a successor must be elected");
        assert_ne!(leader, 0, "the restarted replica must not win first");
        // The successor cannot acquire before the dead leader's accepted
        // lease has expired on the surviving acceptors (~term after the
        // last renewal's accept).
        assert!(
            at_ms >= 1000,
            "successor acquired at {at_ms} ms, inside the old lease term"
        );
    }

    #[test]
    fn config_validation_catches_uncovered_max_term() {
        let bad = QuorumConfig {
            max_term: Dur::from_millis(900), // < term * 1.1
            ..cfg()
        };
        assert!(bad.validate().is_err());
        assert!(cfg().validate().is_ok());
    }
}
