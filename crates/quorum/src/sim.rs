//! Deterministic virtual-time simulation of a grantor quorum under a
//! fault plan.
//!
//! The real-time runtime can only *approximately* replay a
//! [`FaultPlan`] (thread scheduling adds noise); this harness replays it
//! exactly: one event heap, virtual time, per-replica
//! [`ClockModel`]s, and the plan's deterministic per-link dice. The same
//! `(plan, config)` pair always yields the same [`History`], which makes
//! ≥100-seed sweeps cheap enough for CI and lets a failing seed be
//! replayed under a debugger.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lease_clock::{ClockModel, Dur, Time};
use lease_svc::chaos::{Delivery, FaultPlan};
use lease_vsys::{History, HistoryEvent};

use crate::msg::QuorumMsg;
use crate::node::{GrantorNode, NodeOut, QuorumConfig};

/// One simulated run's shape.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The quorum tuning (replica count included).
    pub quorum: QuorumConfig,
    /// The fault schedule; only its replica-level faults and seed apply.
    pub plan: FaultPlan,
    /// How much true time to simulate.
    pub duration: Dur,
    /// Node timer granularity.
    pub tick: Dur,
    /// Base one-way propagation delay between replicas.
    pub net_delay: Dur,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            quorum: QuorumConfig::default(),
            plan: FaultPlan::new(0),
            duration: Dur::from_secs(10),
            tick: Dur::from_millis(1),
            net_delay: Dur::from_millis(1),
        }
    }
}

/// What a simulated run produced.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The grantor claim history, on the true timeline — feed it to
    /// `lease_faults::check_history`.
    pub history: History,
    /// Protocol messages sent (before drops/duplication).
    pub messages_sent: u64,
    /// Successful grantor(-lease) acquisitions, renewals included.
    pub acquisitions: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EvKind {
    /// Advance every node's timers.
    Tick,
    /// Deliver a protocol message.
    Deliver { to: u32, from: u32, msg: QuorumMsg },
    /// Crash-restart a replica.
    Kill { replica: u32 },
}

/// Runs one simulation to completion.
pub fn run(cfg: &SimConfig) -> SimOutcome {
    let n = cfg.quorum.replicas as usize;
    let models: Vec<ClockModel> = (0..n)
        .map(|i| {
            cfg.plan
                .replica_clock(i)
                .unwrap_or_else(ClockModel::perfect)
        })
        .collect();
    let mut nodes: Vec<GrantorNode> = (0..n)
        .map(|i| GrantorNode::new(i as u32, cfg.quorum.clone()))
        .collect();
    // Persistent per-directed-pair dice so decision streams are stable
    // across the whole run.
    let links: Vec<Vec<lease_svc::chaos::LinkChaos>> = (0..n)
        .map(|i| (0..n).map(|j| cfg.plan.replica_link(i, j)).collect())
        .collect();

    let mut heap: BinaryHeap<Reverse<(Time, u64, EvKind)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut t = Time::ZERO;
    while t <= Time::ZERO + cfg.duration {
        heap.push(Reverse((t, seq, EvKind::Tick)));
        seq += 1;
        t += cfg.tick;
    }
    for &(when, replica) in &cfg.plan.replica_kills {
        if replica < n {
            heap.push(Reverse((
                Time::ZERO + when,
                seq,
                EvKind::Kill {
                    replica: replica as u32,
                },
            )));
            seq += 1;
        }
    }

    let mut history = History::new();
    let mut messages_sent = 0u64;
    let mut acquisitions = 0u32;
    let end = Time::ZERO + cfg.duration;

    while let Some(Reverse((at, _, kind))) = heap.pop() {
        if at > end {
            break;
        }
        let elapsed = at.saturating_since(Time::ZERO);
        let mut outs: Vec<(u32, NodeOut)> = Vec::new();
        match kind {
            EvKind::Tick => {
                for (i, node) in nodes.iter_mut().enumerate() {
                    let local = models[i].local(at);
                    for o in node.tick(local) {
                        outs.push((i as u32, o));
                    }
                }
            }
            EvKind::Deliver { to, from, msg } => {
                // A cut severs delivery too: messages in flight when the
                // partition drops are lost at the cut endpoint.
                if !cfg.plan.replica_cut_active(to as usize, elapsed)
                    && !cfg.plan.replica_cut_active(from as usize, elapsed)
                {
                    let local = models[to as usize].local(at);
                    for o in nodes[to as usize].handle(local, from, msg) {
                        outs.push((to, o));
                    }
                }
            }
            EvKind::Kill { replica } => {
                let local = models[replica as usize].local(at);
                for o in nodes[replica as usize].restart(local) {
                    outs.push((replica, o));
                }
            }
        }
        for (i, o) in outs {
            match o {
                NodeOut::Send { to, msg } => {
                    messages_sent += 1;
                    if cfg.plan.replica_cut_active(i as usize, elapsed)
                        || cfg.plan.replica_cut_active(to as usize, elapsed)
                    {
                        continue;
                    }
                    match links[i as usize][to as usize].next() {
                        Delivery::Drop => {}
                        Delivery::Deliver { delay, copies } => {
                            for _ in 0..copies {
                                heap.push(Reverse((
                                    at + cfg.net_delay + delay,
                                    seq,
                                    EvKind::Deliver { to, from: i, msg },
                                )));
                                seq += 1;
                            }
                        }
                    }
                }
                NodeOut::Acquired { ballot, .. } => {
                    acquisitions += 1;
                    history.push(HistoryEvent::GrantorAcquired {
                        replica: i,
                        ballot: ballot.as_u64(),
                        at,
                    });
                }
                NodeOut::Ceded { ballot, overshoot } => {
                    // The node noticed the end `overshoot` (local time)
                    // after it happened; backdate onto the true timeline
                    // through the replica's clock model.
                    let when = models[i as usize].true_before(at, overshoot);
                    history.push(HistoryEvent::GrantorCeded {
                        replica: i,
                        ballot: ballot.as_u64(),
                        at: when,
                    });
                }
            }
        }
    }

    SimOutcome {
        history,
        messages_sent,
        acquisitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_run_elects_and_renews_one_grantor() {
        let out = run(&SimConfig::default());
        assert!(out.acquisitions >= 2, "election plus renewals expected");
        // All claims belong to replica 0 (the stagger winner) and close
        // cleanly or run to the end.
        for e in &out.history.events {
            match e {
                HistoryEvent::GrantorAcquired { replica, .. }
                | HistoryEvent::GrantorCeded { replica, .. } => assert_eq!(*replica, 0),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn same_seed_same_history() {
        let cfg = SimConfig {
            plan: FaultPlan::new(1234)
                .kill_replica(Dur::from_millis(700), 0)
                .drop_messages(0.1)
                .delay_messages(Dur::from_millis(5)),
            ..SimConfig::default()
        };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.history.events, b.history.events);
        assert_eq!(a.messages_sent, b.messages_sent);
    }

    #[test]
    fn killed_leader_hands_over() {
        let cfg = SimConfig {
            plan: FaultPlan::new(7).kill_replica(Dur::from_millis(300), 0),
            ..SimConfig::default()
        };
        let out = run(&cfg);
        let successors: Vec<u32> = out
            .history
            .events
            .iter()
            .filter_map(|e| match e {
                HistoryEvent::GrantorAcquired { replica, at, .. }
                    if *at > Time::from_millis(300) =>
                {
                    Some(*replica)
                }
                _ => None,
            })
            .collect();
        assert!(
            successors.iter().any(|r| *r != 0),
            "another replica must take over: {:?}",
            out.history.events
        );
    }
}
