//! The proposer half of a grantor replica: acquires and renews the
//! grantor lease.

use lease_clock::{Dur, Time};

use crate::msg::{Ballot, QuorumMsg};
use crate::node::QuorumConfig;

/// What the proposer wants done after handling an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropAction {
    /// Send `msg` to every acceptor (including the proposer's own).
    Broadcast(QuorumMsg),
    /// The proposer now holds the grantor lease under `b`. `fresh` is
    /// false only for a seamless renewal — the old claim was still live on
    /// this clock when the new one took over. Hosts use it to decide
    /// whether grantor-side serving state must be rebuilt.
    Acquired {
        /// The winning ballot.
        b: Ballot,
        /// Whether this acquisition starts a new serving session.
        fresh: bool,
    },
    /// The proposer's claim under `ballot` ended. The overshoot is how far
    /// past the claim's true end the *noticing* instant lies on the local
    /// clock (zero except for expiry ticks); recorders backdate by it.
    Ceded(Ballot, Dur),
}

/// The grantor-lease claim this proposer currently holds.
#[derive(Debug, Clone, Copy)]
struct Claim {
    b: Ballot,
    /// Conservative local expiry: prepare-send instant + usable term.
    expires: Time,
    /// When to start the renewal round.
    renew_at: Time,
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    Idle,
    /// Phase 1 in flight; `sent` is the prepare-send instant — the
    /// conservative start of any lease this round wins.
    Preparing {
        b: Ballot,
        sent: Time,
        promises: u64,
    },
    /// Phase 2 in flight; `sent` still names the *prepare*-send instant.
    Proposing {
        b: Ballot,
        sent: Time,
        accepts: u64,
    },
}

/// A PaxosLease proposer.
///
/// The critical safety choice is where the proposer's lease timer starts:
/// at the **prepare-send instant**, not at the accept-quorum instant. Every
/// acceptor starts its own timer at acceptance, which is strictly later,
/// so the proposer's view of its lease always expires first (assuming
/// clock rates within [`QuorumConfig::drift_bound_ppm`], which the usable
/// term already discounts). A proposer that learns of a *live* accepted
/// lease held by someone else simply aborts and retries after the reported
/// remainder — values need never be adopted, because they expire on their
/// own. That is the entire diskless argument.
#[derive(Debug, Clone)]
pub struct Proposer {
    id: u32,
    cfg: QuorumConfig,
    round: u32,
    phase: Phase,
    claim: Option<Claim>,
    attempt: u32,
    /// Local instant before which no new round may start (backoff,
    /// observed remote lease, or restart recovery).
    next_attempt: Time,
}

impl Proposer {
    /// A proposer for replica `id`. `first_attempt` staggers the initial
    /// round so replicas don't stampede at boot.
    pub fn new(id: u32, cfg: QuorumConfig, first_attempt: Time) -> Proposer {
        Proposer {
            id,
            cfg,
            round: 0,
            phase: Phase::Idle,
            claim: None,
            attempt: 0,
            next_attempt: first_attempt,
        }
    }

    /// Whether this proposer currently claims the grantor lease at `now`.
    /// With fencing disabled (the injectable bug) an expired claim is
    /// still asserted.
    pub fn is_serving(&self, now: Time) -> bool {
        self.serving_ballot(now).is_some()
    }

    /// The ballot of the live claim at `now`, if any.
    pub fn serving_ballot(&self, now: Time) -> Option<Ballot> {
        self.claim
            .filter(|c| !self.cfg.fence || now < c.expires)
            .map(|c| c.b)
    }

    /// The local expiry of the current claim, if one is held.
    pub fn claim_expires(&self) -> Option<Time> {
        self.claim.map(|c| c.expires)
    }

    /// Crash-restart: all volatile state (round included) is lost, and no
    /// new round may start until `now + wait` of local time. Pass the same
    /// MaxTerm wait the acceptor uses.
    pub fn restart(&mut self, now: Time, wait: Dur) -> Vec<PropAction> {
        let mut out = Vec::new();
        if let Some(c) = self.claim.take() {
            // The claim truly ends at the crash: a dead grantor serves
            // nothing.
            out.push(PropAction::Ceded(c.b, Dur::ZERO));
        }
        self.round = 0;
        self.phase = Phase::Idle;
        self.attempt = 0;
        self.next_attempt = now + wait;
        out
    }

    /// Advances timers: expiry fencing, round timeouts, and round starts.
    pub fn tick(&mut self, now: Time) -> Vec<PropAction> {
        let mut out = Vec::new();
        if let Some(c) = self.claim {
            if self.cfg.fence && now >= c.expires {
                self.claim = None;
                out.push(PropAction::Ceded(c.b, now.saturating_since(c.expires)));
            }
        }
        if let Phase::Preparing { sent, .. } | Phase::Proposing { sent, .. } = self.phase {
            if now >= sent + self.cfg.op_timeout {
                self.back_off(now, Dur::ZERO);
            }
        }
        if matches!(self.phase, Phase::Idle) && now >= self.next_attempt {
            let renewal_due = self.claim.is_some_and(|c| now >= c.renew_at);
            if self.claim.is_none() || renewal_due {
                out.push(self.start_round(now));
            }
        }
        out
    }

    /// Handles a reply from acceptor `from`.
    pub fn on_reply(&mut self, now: Time, from: u32, msg: QuorumMsg) -> Vec<PropAction> {
        let mut out = Vec::new();
        match (msg, self.phase) {
            (
                QuorumMsg::Promise { b, accepted },
                Phase::Preparing {
                    b: cur,
                    sent,
                    mut promises,
                },
            ) if b == cur => {
                if let Some((_, holder, remaining)) = accepted {
                    if holder != self.id && !remaining.is_zero() {
                        // Someone else's grantor lease is live: stand down
                        // for at least its remainder. No adoption needed —
                        // it expires by itself.
                        self.back_off(now, remaining);
                        return out;
                    }
                }
                promises |= 1 << from;
                if promises.count_ones() >= self.cfg.majority() {
                    self.phase = Phase::Proposing {
                        b,
                        sent,
                        accepts: 0,
                    };
                    out.push(PropAction::Broadcast(QuorumMsg::Propose {
                        b,
                        holder: self.id,
                        term: self.cfg.term,
                    }));
                } else {
                    self.phase = Phase::Preparing { b, sent, promises };
                }
            }
            (
                QuorumMsg::Accept { b },
                Phase::Proposing {
                    b: cur,
                    sent,
                    mut accepts,
                },
            ) if b == cur => {
                accepts |= 1 << from;
                if accepts.count_ones() >= self.cfg.majority() {
                    let usable = self.cfg.usable_term();
                    let fresh = match self.claim.take() {
                        Some(old) => {
                            // Renewal: a still-live claim hands over to the
                            // new one with no gap (same replica, so no
                            // hazard either way; overshoot zero). A claim
                            // that had already lapsed does not chain — that
                            // serving session broke at its expiry, so the
                            // cede is backdated to the true lapse instant,
                            // not the (later) accept-quorum instant.
                            out.push(PropAction::Ceded(old.b, now.saturating_since(old.expires)));
                            now >= old.expires
                        }
                        None => true,
                    };
                    self.claim = Some(Claim {
                        b,
                        expires: sent + usable,
                        renew_at: sent + usable.mul_f64(self.cfg.renew_frac),
                    });
                    self.phase = Phase::Idle;
                    self.attempt = 0;
                    out.push(PropAction::Acquired { b, fresh });
                } else {
                    self.phase = Phase::Proposing { b, sent, accepts };
                }
            }
            (QuorumMsg::PrepareNack { b, promised }, Phase::Preparing { b: cur, .. })
            | (QuorumMsg::ProposeNack { b, promised }, Phase::Proposing { b: cur, .. })
                if b == cur =>
            {
                // Adopt the competing round so the next attempt outbids it.
                self.round = self.round.max(promised.round);
                self.back_off(now, Dur::ZERO);
            }
            // Stale replies (finished or aborted rounds) are dropped.
            _ => {}
        }
        out
    }

    fn start_round(&mut self, now: Time) -> PropAction {
        self.round += 1;
        let b = Ballot::new(self.round, self.id);
        self.phase = Phase::Preparing {
            b,
            sent: now,
            promises: 0,
        };
        PropAction::Broadcast(QuorumMsg::Prepare { b })
    }

    /// Aborts the in-flight round and schedules the next attempt after the
    /// jittered backoff — or after an observed remote lease's remainder,
    /// whichever is longer.
    fn back_off(&mut self, now: Time, hold: Dur) {
        self.phase = Phase::Idle;
        self.attempt = self.attempt.saturating_add(1);
        let salt = (u64::from(self.id) << 32) | u64::from(self.attempt);
        let pause = self
            .cfg
            .backoff
            .interval(self.cfg.retry_base, self.attempt, salt);
        self.next_attempt = now + pause.max(hold);
    }
}
