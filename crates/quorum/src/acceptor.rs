//! The diskless acceptor half of a grantor replica.

use lease_clock::{Dur, Time};

use crate::msg::{Ballot, QuorumMsg};

/// A diskless PaxosLease acceptor.
///
/// Classic Paxos acceptors must persist `promised`/`accepted` across
/// crashes; here both are volatile. Safety survives because every accepted
/// value is a *lease*: it expires `term` after acceptance on the
/// acceptor's own clock, so any state a crash destroys would have evaporated
/// on its own anyway — provided the restarted acceptor stays silent until
/// everything it might have promised or accepted has expired. That is the
/// paper's §5 MaxTerm trick applied to the grantor election itself:
/// [`Acceptor::restart`] refuses all participation for `max_term` of local
/// time instead of reading a disk.
///
/// All times are readings of the acceptor's local clock; the caller passes
/// `now` explicitly (sans-IO, like `lease-core`).
#[derive(Debug, Clone)]
pub struct Acceptor {
    /// Highest ballot promised; ballots below it are nacked.
    promised: Ballot,
    /// The accepted grantor lease, if still live: `(ballot, holder,
    /// local expiry)`.
    accepted: Option<(Ballot, u32, Time)>,
    /// Local instant before which this acceptor is recovering and must
    /// not respond at all.
    ready_at: Time,
}

impl Acceptor {
    /// A fresh acceptor with no obligations, ready immediately.
    ///
    /// Only a *first boot* may start ready; any later reboot must go
    /// through [`Acceptor::restart`].
    pub fn new() -> Acceptor {
        Acceptor {
            promised: Ballot::ZERO,
            accepted: None,
            ready_at: Time::ZERO,
        }
    }

    /// Crash-restart: all volatile state is lost and the acceptor goes
    /// silent until `now + max_term` on its local clock, by which point
    /// any promise or accepted lease from the previous incarnation has
    /// expired everywhere that mattered.
    pub fn restart(&mut self, now: Time, max_term: Dur) {
        self.promised = Ballot::ZERO;
        self.accepted = None;
        self.ready_at = now + max_term;
    }

    /// Whether the acceptor is still sitting out its restart window.
    pub fn recovering(&self, now: Time) -> bool {
        now < self.ready_at
    }

    /// The live accepted value at `now`, if any (expired values are
    /// dropped lazily).
    pub fn live_accepted(&self, now: Time) -> Option<(Ballot, u32, Time)> {
        self.accepted.filter(|&(_, _, expires)| now < expires)
    }

    /// Handles one protocol message, returning the reply (if any — a
    /// recovering acceptor is silent, which callers cannot distinguish
    /// from a lost message; that is the point).
    pub fn handle(&mut self, now: Time, msg: QuorumMsg) -> Option<QuorumMsg> {
        if self.recovering(now) {
            return None;
        }
        // Forget expired accepted leases eagerly so replies never carry
        // them.
        if self.live_accepted(now).is_none() {
            self.accepted = None;
        }
        match msg {
            QuorumMsg::Prepare { b } => {
                if b < self.promised {
                    Some(QuorumMsg::PrepareNack {
                        b,
                        promised: self.promised,
                    })
                } else {
                    // `>=` keeps re-prepares idempotent under duplication.
                    self.promised = b;
                    let accepted = self
                        .live_accepted(now)
                        .map(|(ab, holder, expires)| (ab, holder, expires.saturating_since(now)));
                    Some(QuorumMsg::Promise { b, accepted })
                }
            }
            QuorumMsg::Propose { b, holder, term } => {
                if b < self.promised {
                    Some(QuorumMsg::ProposeNack {
                        b,
                        promised: self.promised,
                    })
                } else {
                    self.promised = b;
                    // The lease clock starts at *acceptance*, which is
                    // always at or after the proposer's conservative
                    // start (its prepare-send instant).
                    self.accepted = Some((b, holder, now + term));
                    Some(QuorumMsg::Accept { b })
                }
            }
            // Replies are for proposers; an acceptor ignores them.
            _ => None,
        }
    }
}

impl Default for Acceptor {
    fn default() -> Acceptor {
        Acceptor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TERM: Dur = Dur::from_millis(500);

    fn prepare(a: &mut Acceptor, now_ms: u64, round: u32, replica: u32) -> Option<QuorumMsg> {
        a.handle(
            Time::from_millis(now_ms),
            QuorumMsg::Prepare {
                b: Ballot::new(round, replica),
            },
        )
    }

    #[test]
    fn promise_then_accept_then_expire() {
        let mut a = Acceptor::new();
        assert_eq!(
            prepare(&mut a, 0, 1, 0),
            Some(QuorumMsg::Promise {
                b: Ballot::new(1, 0),
                accepted: None
            })
        );
        let accept = a.handle(
            Time::from_millis(1),
            QuorumMsg::Propose {
                b: Ballot::new(1, 0),
                holder: 0,
                term: TERM,
            },
        );
        assert_eq!(
            accept,
            Some(QuorumMsg::Accept {
                b: Ballot::new(1, 0)
            })
        );
        // A later prepare inside the lease reports the live value with the
        // remaining term.
        match prepare(&mut a, 101, 2, 1) {
            Some(QuorumMsg::Promise {
                accepted: Some((ab, holder, remaining)),
                ..
            }) => {
                assert_eq!(ab, Ballot::new(1, 0));
                assert_eq!(holder, 0);
                assert_eq!(remaining, Dur::from_millis(400));
            }
            other => panic!("expected live accepted, got {other:?}"),
        }
        // After expiry the acceptor has forgotten it.
        match prepare(&mut a, 502, 3, 1) {
            Some(QuorumMsg::Promise { accepted: None, .. }) => {}
            other => panic!("expected empty promise, got {other:?}"),
        }
    }

    #[test]
    fn lower_ballots_are_nacked() {
        let mut a = Acceptor::new();
        prepare(&mut a, 0, 5, 2);
        assert_eq!(
            prepare(&mut a, 1, 4, 9),
            Some(QuorumMsg::PrepareNack {
                b: Ballot::new(4, 9),
                promised: Ballot::new(5, 2),
            })
        );
        assert_eq!(
            a.handle(
                Time::from_millis(2),
                QuorumMsg::Propose {
                    b: Ballot::new(4, 9),
                    holder: 9,
                    term: TERM,
                },
            ),
            Some(QuorumMsg::ProposeNack {
                b: Ballot::new(4, 9),
                promised: Ballot::new(5, 2),
            })
        );
    }

    #[test]
    fn restart_goes_silent_for_max_term() {
        let mut a = Acceptor::new();
        prepare(&mut a, 0, 1, 0);
        a.handle(
            Time::from_millis(1),
            QuorumMsg::Propose {
                b: Ballot::new(1, 0),
                holder: 0,
                term: TERM,
            },
        );
        a.restart(Time::from_millis(100), Dur::from_millis(800));
        // Silent through the whole window, even for high ballots.
        assert_eq!(prepare(&mut a, 100, 9, 1), None);
        assert_eq!(prepare(&mut a, 899, 9, 1), None);
        assert!(a.recovering(Time::from_millis(899)));
        // Fresh after the window, with all state forgotten.
        assert_eq!(
            prepare(&mut a, 900, 1, 1),
            Some(QuorumMsg::Promise {
                b: Ballot::new(1, 1),
                accepted: None
            })
        );
    }

    #[test]
    fn duplicate_prepare_is_idempotent() {
        let mut a = Acceptor::new();
        let first = prepare(&mut a, 0, 3, 1);
        let dup = prepare(&mut a, 1, 3, 1);
        assert_eq!(first, dup);
    }
}
