#![warn(missing_docs)]

//! A diskless replicated lease grantor: PaxosLease-style grantor election
//! layered under the sharded lease service.
//!
//! The paper's single lease server is the availability ceiling of the
//! whole system: §5 argues every fault away by waiting for *the* server
//! to come back. This crate replaces it with N grantor replicas that
//! elect a **grantor-leaseholder** by majority, using nothing but the
//! machinery the paper already trusts:
//!
//! * **The grantor lease is itself a lease.** A proposer runs plain Paxos
//!   phase 1/2 ([`QuorumMsg`]), but the accepted value expires on each
//!   acceptor's local clock after [`QuorumConfig::term`]. Expiry *is* the
//!   release protocol, so acceptors never need to adopt, forward, or
//!   garbage-collect values.
//! * **Diskless acceptors.** Classic Paxos persists `promised`/`accepted`
//!   across crashes; here a restarted replica simply stays silent for
//!   [`QuorumConfig::max_term`] of local time ([`Acceptor::restart`]) —
//!   the §5 MaxTerm trick, applied to the election. Anything the crash
//!   forgot has expired by the time the replica speaks again.
//! * **Conservative timers.** The holder starts its lease at the
//!   *prepare-send* instant and trusts only
//!   [`QuorumConfig::usable_term`] — the granted term discounted by
//!   *both* edges of the clock-drift bound, `term * (1 - d) / (1 + d)`,
//!   covering a slow holder clock paired with fast acceptor clocks —
//!   while acceptors hold the full term from the (strictly later) accept
//!   instant. A holder with a clock within the bound therefore always
//!   stops serving before any correct acceptor lets a rival in.
//! * **Quorum intersection masks bad minority clocks.** One 2×-fast
//!   acceptor forgets early, but a new proposer still needs a majority,
//!   and some correct acceptor in any majority still remembers the live
//!   lease. Only a *majority* of broken clocks (or the holder's own clock
//!   running slow beyond the bound) can produce two grantors — which the
//!   `lease-faults` oracle's at-most-one-grantor invariant is built to
//!   catch.
//!
//! The crate is layered like `lease-core`: [`GrantorNode`] is sans-IO
//! (explicit `now`, messages in/out); [`sim`] drives N nodes through a
//! deterministic virtual-time event loop under a
//! [`FaultPlan`](lease_svc::chaos::FaultPlan) for seed sweeps; [`runtime`]
//! runs real threads with a [`GrantorGate`](runtime::GrantorGate) for the
//! service path to consult on every grant (`lease-rt` wires that gate into
//! its replicated topology).

mod acceptor;
mod msg;
mod node;
mod proposer;
pub mod runtime;
pub mod sim;

pub use acceptor::Acceptor;
pub use msg::{Ballot, QuorumMsg};
pub use node::{GrantorNode, NodeOut, QuorumConfig};
pub use proposer::{PropAction, Proposer};
pub use runtime::{GrantorGate, KillHandle, QuorumHooks, QuorumRuntime};
