//! Ballots and the quorum wire protocol.

use lease_clock::Dur;

/// A totally ordered ballot number: `(round, replica)` compared
/// lexicographically, so two proposers can never draw the same ballot.
///
/// # Examples
///
/// ```
/// use lease_quorum::Ballot;
///
/// let a = Ballot::new(1, 2);
/// let b = Ballot::new(2, 0);
/// assert!(a < b); // round dominates
/// assert!(Ballot::new(1, 0) < Ballot::new(1, 1)); // replica breaks ties
/// assert_eq!(Ballot::unpack(a.as_u64()), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ballot {
    /// The proposer-chosen round; bumped past any competing round seen.
    pub round: u32,
    /// The proposing replica, as the tie-breaker.
    pub replica: u32,
}

impl Ballot {
    /// The null ballot, smaller than every real ballot (real rounds start
    /// at 1).
    pub const ZERO: Ballot = Ballot {
        round: 0,
        replica: 0,
    };

    /// Creates a ballot.
    pub fn new(round: u32, replica: u32) -> Ballot {
        Ballot { round, replica }
    }

    /// Packs the ballot into one `u64` (`round` in the high half) whose
    /// numeric order equals ballot order — the form history events and
    /// fencing gates carry.
    pub fn as_u64(self) -> u64 {
        (u64::from(self.round) << 32) | u64::from(self.replica)
    }

    /// Inverse of [`Ballot::as_u64`].
    pub fn unpack(v: u64) -> Ballot {
        Ballot {
            round: (v >> 32) as u32,
            replica: v as u32,
        }
    }
}

/// One message of the grantor-lease protocol (PaxosLease-style: plain
/// Paxos prepare/propose, except accepted values *expire* on the
/// acceptor's local clock, which is what makes the acceptors diskless).
///
/// The `Ord` impl is arbitrary; it exists so event queues can order
/// same-instant events deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QuorumMsg {
    /// Phase 1a: a proposer asks for a promise under `b`.
    Prepare {
        /// The proposer's ballot.
        b: Ballot,
    },
    /// Phase 1b: the acceptor promises to ignore ballots below `b` and
    /// reports any still-live accepted grantor lease.
    Promise {
        /// The ballot being promised.
        b: Ballot,
        /// A live accepted value, if one exists: the ballot it was
        /// accepted under, the replica holding the grantor lease, and the
        /// remaining term on the acceptor's clock.
        accepted: Option<(Ballot, u32, Dur)>,
    },
    /// Phase 1 refusal: the acceptor already promised `promised > b`.
    PrepareNack {
        /// The refused ballot.
        b: Ballot,
        /// The ballot the acceptor is bound to.
        promised: Ballot,
    },
    /// Phase 2a: the proposer asks the acceptor to hold the grantor lease
    /// for `holder` for `term` (on the acceptor's clock).
    Propose {
        /// The proposer's ballot.
        b: Ballot,
        /// The replica that will be the grantor.
        holder: u32,
        /// The lease term, started when the acceptor accepts.
        term: Dur,
    },
    /// Phase 2b: accepted.
    Accept {
        /// The accepted ballot.
        b: Ballot,
    },
    /// Phase 2 refusal.
    ProposeNack {
        /// The refused ballot.
        b: Ballot,
        /// The ballot the acceptor is bound to.
        promised: Ballot,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_order_matches_packed_order() {
        let mut ballots = vec![
            Ballot::new(2, 1),
            Ballot::new(1, 2),
            Ballot::ZERO,
            Ballot::new(1, 0),
            Ballot::new(2, 0),
        ];
        ballots.sort();
        let packed: Vec<u64> = ballots.iter().map(|b| b.as_u64()).collect();
        let mut sorted = packed.clone();
        sorted.sort_unstable();
        assert_eq!(packed, sorted);
        for b in ballots {
            assert_eq!(Ballot::unpack(b.as_u64()), b);
        }
    }
}
