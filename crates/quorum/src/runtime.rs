//! Wall-clock quorum runtime: one thread per grantor replica, plus the
//! serving gate the file-lease path consults.
//!
//! The sans-IO [`GrantorNode`] does all protocol reasoning; this module
//! supplies threads, channels, clocks, and chaos. Its one load-bearing
//! export is [`GrantorGate`]: a lock-free cell each replica keeps up to
//! date with its current claim, which the *service* side reads on every
//! file-lease grant/extend to decide whether this replica is allowed to
//! answer. The gate re-checks expiry against the replica's own (possibly
//! skewed) clock on every read, so a grantor whose lease lapsed mid-batch
//! refuses the rest of the batch — unless fencing is disabled, which is
//! the injectable split-brain bug the oracle sweep must catch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};
use lease_clock::{Clock, ClockModel, Time};
use lease_svc::chaos::{Delivery, FaultPlan, LinkChaos};
use lease_vsys::HistoryEvent;

use crate::msg::{Ballot, QuorumMsg};
use crate::node::{GrantorNode, NodeOut, QuorumConfig};

/// A clock that views shared truth through a per-replica [`ClockModel`].
struct LocalClock {
    truth: Arc<dyn Clock>,
    model: ClockModel,
}

impl Clock for LocalClock {
    fn now(&self) -> Time {
        self.model.local(self.truth.now())
    }
}

/// The serving gate: the replicated analogue of "am I the server?".
///
/// Writers are the replica's quorum thread (claim open/close); readers are
/// the service ingress/egress on every request. Reads are two relaxed
/// atomic loads plus a clock read — cheap enough for the hot grant path.
pub struct GrantorGate {
    /// `ballot.as_u64() + 1` while a claim is held, `0` otherwise (real
    /// ballots have `round >= 1`, so the offset never collides).
    serving: AtomicU64,
    /// Local-clock expiry of the claim, nanoseconds.
    expires: AtomicU64,
    /// Whether expiry closes the gate (false = the injected bug).
    fence: bool,
    /// The replica's own clock, skew included.
    clock: Arc<dyn Clock>,
}

impl GrantorGate {
    fn new(fence: bool, clock: Arc<dyn Clock>) -> GrantorGate {
        GrantorGate {
            serving: AtomicU64::new(0),
            expires: AtomicU64::new(0),
            fence,
            clock,
        }
    }

    fn open(&self, b: Ballot, expires: Time) {
        self.expires.store(expires.as_nanos(), Ordering::Release);
        self.serving.store(b.as_u64() + 1, Ordering::Release);
    }

    fn close(&self, b: Ballot) {
        // Only the matching claim closes the gate: a renewal may already
        // have replaced it.
        let _ =
            self.serving
                .compare_exchange(b.as_u64() + 1, 0, Ordering::AcqRel, Ordering::Relaxed);
    }

    /// The ballot this replica is currently entitled to serve under, or
    /// `None` if it must refuse file-lease traffic. Checks the claim's
    /// local-clock expiry on every call (when fencing is on).
    pub fn serving(&self) -> Option<Ballot> {
        let s = self.serving.load(Ordering::Acquire);
        if s == 0 {
            return None;
        }
        if self.fence && self.clock.now().as_nanos() >= self.expires.load(Ordering::Acquire) {
            return None;
        }
        Some(Ballot::unpack(s - 1))
    }

    /// Whether the gate is open at all.
    pub fn is_open(&self) -> bool {
        self.serving().is_some()
    }
}

/// Host-side hooks into the quorum runtime.
#[derive(Clone, Default)]
pub struct QuorumHooks {
    /// Called (from the replica's thread) right after its gate opens,
    /// with `(replica, fresh)` — `fresh` is false for seamless renewals.
    /// The replicated topology uses a fresh acquisition to push the
    /// replica's service shards through §5 MaxTerm recovery before they
    /// answer anything.
    pub on_acquire: Option<Arc<dyn Fn(u32, bool) + Send + Sync>>,
    /// Observer of grantor claim events, stamped on the *true* timeline
    /// (cede overshoots already backdated through the clock model).
    pub observer: Option<Arc<dyn Fn(HistoryEvent) + Send + Sync>>,
}

enum Input {
    Msg(u32, QuorumMsg),
    Kill,
    Shutdown,
}

/// A clonable handle that can crash-restart replicas — what chaos drivers
/// hold so the runtime itself can keep sole ownership of its threads.
#[derive(Clone)]
pub struct KillHandle {
    inputs: Vec<Sender<Input>>,
}

impl KillHandle {
    /// Crash-restarts replica `i` (volatile state lost, MaxTerm silence).
    pub fn kill(&self, i: usize) {
        let _ = self.inputs[i].send(Input::Kill);
    }
}

/// A running quorum of grantor replicas.
pub struct QuorumRuntime {
    gates: Vec<Arc<GrantorGate>>,
    inputs: Vec<Sender<Input>>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl QuorumRuntime {
    /// Spawns `cfg.replicas` replica threads. `truth` is the shared true
    /// clock (the same one the recorder stamps with); per-replica skew
    /// comes from `plan.replica_clocks`, chaos from the plan's replica
    /// links, and `plan.replica_kills` is *not* driven here — hosts call
    /// [`QuorumRuntime::kill_replica`] so they can coordinate service
    /// shard kills with quorum restarts.
    pub fn spawn(
        cfg: QuorumConfig,
        plan: FaultPlan,
        truth: Arc<dyn Clock>,
        hooks: QuorumHooks,
    ) -> QuorumRuntime {
        let n = cfg.replicas as usize;
        let start = truth.now();
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = bounded::<Input>(1024);
            txs.push(tx);
            rxs.push(rx);
        }
        let mut gates = Vec::with_capacity(n);
        let mut threads = Vec::with_capacity(n);
        for (i, rx) in rxs.into_iter().enumerate() {
            let model = plan.replica_clock(i).unwrap_or_else(ClockModel::perfect);
            let local: Arc<dyn Clock> = Arc::new(LocalClock {
                truth: Arc::clone(&truth),
                model: model.clone(),
            });
            let gate = Arc::new(GrantorGate::new(cfg.fence, Arc::clone(&local)));
            gates.push(Arc::clone(&gate));
            let worker = Replica {
                id: i as u32,
                node: GrantorNode::new(i as u32, cfg.clone()),
                rx,
                peers: txs.clone(),
                links: (0..n).map(|j| plan.replica_link(i, j)).collect(),
                plan: plan.clone(),
                truth: Arc::clone(&truth),
                model,
                start,
                gate,
                hooks: hooks.clone(),
                pending: Vec::new(),
            };
            threads.push(
                thread::Builder::new()
                    .name(format!("grantor-{i}"))
                    .spawn(move || worker.run())
                    .expect("spawn grantor replica"),
            );
        }
        QuorumRuntime {
            gates,
            inputs: txs,
            threads,
        }
    }

    /// The serving gate of replica `i`.
    pub fn gate(&self, i: usize) -> Arc<GrantorGate> {
        Arc::clone(&self.gates[i])
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.gates.len()
    }

    /// The replica currently claiming grantorship, if any is visible.
    pub fn current_grantor(&self) -> Option<(u32, Ballot)> {
        self.gates
            .iter()
            .enumerate()
            .find_map(|(i, g)| g.serving().map(|b| (i as u32, b)))
    }

    /// Crash-restarts replica `i` (volatile state lost, MaxTerm silence).
    pub fn kill_replica(&self, i: usize) {
        let _ = self.inputs[i].send(Input::Kill);
    }

    /// A detached handle for killing replicas (see [`KillHandle`]).
    pub fn kill_handle(&self) -> KillHandle {
        KillHandle {
            inputs: self.inputs.clone(),
        }
    }

    /// Stops all replica threads.
    pub fn shutdown(self) {
        for tx in &self.inputs {
            let _ = tx.send(Input::Shutdown);
        }
        for t in self.threads {
            let _ = t.join();
        }
    }
}

struct Replica {
    id: u32,
    node: GrantorNode,
    rx: Receiver<Input>,
    peers: Vec<Sender<Input>>,
    links: Vec<LinkChaos>,
    plan: FaultPlan,
    truth: Arc<dyn Clock>,
    model: ClockModel,
    start: Time,
    gate: Arc<GrantorGate>,
    hooks: QuorumHooks,
    /// Chaos-delayed sends held back by the sender: `(deliver_at true
    /// time, to, msg)`.
    pending: Vec<(Time, u32, QuorumMsg)>,
}

impl Replica {
    fn run(mut self) {
        loop {
            match self.rx.recv_timeout(Duration::from_millis(1)) {
                Ok(Input::Shutdown) => return,
                Ok(Input::Kill) => {
                    let local = self.model.local(self.truth.now());
                    let outs = self.node.restart(local);
                    self.dispatch(outs);
                }
                Ok(Input::Msg(from, msg)) => {
                    let t = self.truth.now();
                    // A cut replica neither hears nor is heard.
                    if !self.cut(self.id, t) && !self.cut(from, t) {
                        let outs = self.node.handle(self.model.local(t), from, msg);
                        self.dispatch(outs);
                    }
                }
                Err(_) => {}
            }
            let t = self.truth.now();
            let outs = self.node.tick(self.model.local(t));
            self.dispatch(outs);
            self.flush(t);
        }
    }

    fn cut(&self, replica: u32, t: Time) -> bool {
        self.plan
            .replica_cut_active(replica as usize, t.saturating_since(self.start))
    }

    fn dispatch(&mut self, outs: Vec<NodeOut>) {
        let t = self.truth.now();
        for o in outs {
            match o {
                NodeOut::Send { to, msg } => {
                    if self.cut(self.id, t) || self.cut(to, t) {
                        continue;
                    }
                    match self.links[to as usize].next() {
                        Delivery::Drop => {}
                        Delivery::Deliver { delay, copies } => {
                            for _ in 0..copies {
                                if delay.is_zero() {
                                    let _ =
                                        self.peers[to as usize].try_send(Input::Msg(self.id, msg));
                                } else {
                                    self.pending.push((t + delay, to, msg));
                                }
                            }
                        }
                    }
                }
                NodeOut::Acquired { ballot, fresh } => {
                    let expires = self
                        .node
                        .claim_expires()
                        .expect("acquired claim has an expiry");
                    self.gate.open(ballot, expires);
                    if let Some(obs) = &self.hooks.observer {
                        obs(HistoryEvent::GrantorAcquired {
                            replica: self.id,
                            ballot: ballot.as_u64(),
                            at: t,
                        });
                    }
                    if let Some(f) = &self.hooks.on_acquire {
                        f(self.id, fresh);
                    }
                }
                NodeOut::Ceded { ballot, overshoot } => {
                    self.gate.close(ballot);
                    if let Some(obs) = &self.hooks.observer {
                        obs(HistoryEvent::GrantorCeded {
                            replica: self.id,
                            ballot: ballot.as_u64(),
                            at: self.model.true_before(t, overshoot),
                        });
                    }
                }
            }
        }
    }

    /// Delivers chaos-delayed messages whose time has come.
    fn flush(&mut self, now: Time) {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 <= now {
                let (_, to, msg) = self.pending.swap_remove(i);
                if !self.cut(self.id, now) && !self.cut(to, now) {
                    let _ = self.peers[to as usize].try_send(Input::Msg(self.id, msg));
                }
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lease_clock::{Dur, WallClock};

    fn quick_cfg() -> QuorumConfig {
        QuorumConfig {
            term: Dur::from_millis(250),
            max_term: Dur::from_millis(550),
            op_timeout: Dur::from_millis(60),
            retry_base: Dur::from_millis(10),
            stagger: Dur::from_millis(15),
            ..QuorumConfig::default()
        }
    }

    fn wait_for<F: Fn() -> bool>(what: &str, timeout: Duration, f: F) {
        let start = std::time::Instant::now();
        while !f() {
            assert!(start.elapsed() < timeout, "timed out waiting for {what}");
            thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn elects_a_grantor_and_survives_killing_it() {
        let truth: Arc<dyn Clock> = Arc::new(WallClock::new());
        let events: Arc<std::sync::Mutex<Vec<HistoryEvent>>> = Arc::default();
        let obs = Arc::clone(&events);
        let rt = QuorumRuntime::spawn(
            quick_cfg(),
            FaultPlan::new(3),
            truth,
            QuorumHooks {
                on_acquire: None,
                observer: Some(Arc::new(move |e| obs.lock().unwrap().push(e))),
            },
        );
        wait_for("first grantor", Duration::from_secs(5), || {
            rt.current_grantor().is_some()
        });
        let (first, _) = rt.current_grantor().unwrap();
        rt.kill_replica(first as usize);
        wait_for(
            "successor grantor",
            Duration::from_secs(10),
            || matches!(rt.current_grantor(), Some((id, _)) if id != first),
        );
        rt.shutdown();
        // The recorded claims satisfy the at-most-one-grantor invariant.
        let history = lease_vsys::History {
            events: events.lock().unwrap().clone(),
        };
        let res = lease_faults::check_history(&history);
        assert!(res.is_ok(), "violations: {:?}", res.err());
    }

    #[test]
    fn gate_closes_at_local_expiry() {
        let clock = Arc::new(lease_clock::ManualClock::new(Time::ZERO));
        let gate = GrantorGate::new(true, clock.clone() as Arc<dyn Clock>);
        let b = Ballot::new(1, 0);
        gate.open(b, Time::from_millis(100));
        assert_eq!(gate.serving(), Some(b));
        clock.advance(Dur::from_millis(99));
        assert!(gate.is_open());
        clock.advance(Dur::from_millis(1));
        assert_eq!(gate.serving(), None, "expired claim must close the gate");
        // Without fencing the stale claim stays visible — the bug the
        // oracle exists to catch.
        let unfenced = GrantorGate::new(false, clock as Arc<dyn Clock>);
        unfenced.open(b, Time::from_millis(150));
        clock_independent_check(&unfenced, b);
    }

    fn clock_independent_check(gate: &GrantorGate, b: Ballot) {
        assert_eq!(gate.serving(), Some(b));
    }

    #[test]
    fn gate_close_is_claim_scoped() {
        let clock = Arc::new(lease_clock::ManualClock::new(Time::ZERO));
        let gate = GrantorGate::new(true, clock as Arc<dyn Clock>);
        let old = Ballot::new(1, 0);
        let new = Ballot::new(2, 0);
        gate.open(old, Time::from_millis(100));
        gate.open(new, Time::from_millis(200)); // renewal replaced it
        gate.close(old); // late close of the old claim must not shut the new one
        assert_eq!(gate.serving(), Some(new));
        gate.close(new);
        assert_eq!(gate.serving(), None);
    }
}
