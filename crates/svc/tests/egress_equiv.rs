//! Property: ring-lane egress — shard workers publishing reply runs
//! into per-client SPSC lanes with coalesced doorbells — is
//! *observationally equivalent* to the channel sink, which survives as
//! the executable spec of the pre-ring reply path (and as the live
//! cold/chaos/fence transport in `lease-rt`).
//!
//! The same op stream run against both sinks — including with a shard
//! kill/restart injected mid-stream, so a flush is interrupted and the
//! restarted worker keeps publishing into the *same* lanes — must
//! deliver the same multiset of `ToClient` messages **per client** and
//! leave the same merged [`ServerCounters`]. Lanes from different shard
//! workers may interleave differently than channel sends, but nothing
//! may be lost, duplicated, or misrouted; with a single shard the
//! per-client delivery *order* must match exactly (one producer, one
//! lane, FIFO on both paths).
//!
//! Determinism notes mirror `batch_equiv.rs`: fixed terms (hours long,
//! nothing expires mid-test), kills land at the same stream position in
//! both runs, and `stats()` is the egress barrier — each shard flushes
//! its outbox (through its attached [`EgressWorker`] in ring mode)
//! before answering, so after `stats()` returns every reply is either
//! in the channel or published in a lane.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use lease_clock::Dur;
use lease_core::{
    ClientId, LeaseHandle, LeaseServer, MemStorage, ReqId, ServerConfig, Storage, ToClient,
    ToServer, Version,
};
use lease_svc::{ClientSink, Egress, EgressRx, EgressSink, LeaseService, SvcConfig, SvcHooks};
use proptest::prelude::*;

const CLIENTS: usize = 2;
const RESOURCES: u64 = 12;

type Msg = (ClientId, ToClient<u64, u64>);

struct ChanSink(Sender<Msg>);
impl ClientSink<u64, u64> for ChanSink {
    fn deliver(&self, to: ClientId, msg: ToClient<u64, u64>) {
        let _ = self.0.send((to, msg));
    }
}

/// One step of the generated stream: a protocol message from a client,
/// or an injected shard crash.
#[derive(Debug, Clone)]
enum Step {
    Msg(ClientId, ToServer<u64, u64>),
    Kill(usize),
}

fn make_step(kind: u8, client: u8, resource: u64, mask: u16, req: u64) -> Step {
    let from = ClientId(u32::from(client) % CLIENTS as u32);
    let set = |mask: u16| -> Vec<(u64, Version, LeaseHandle)> {
        (0..RESOURCES)
            .filter(|r| mask & (1 << r) != 0)
            .map(|r| (r, Version(0), LeaseHandle::NULL))
            .collect()
    };
    let msg = match kind % 5 {
        0 | 1 => ToServer::Fetch {
            req: ReqId(req),
            resource,
            cached: None,
            also_extend: set(mask),
        },
        2 => ToServer::Renew {
            req: ReqId(req),
            resources: set(mask),
        },
        3 => ToServer::Write {
            req: ReqId(req),
            resource,
            data: req,
        },
        _ => ToServer::Relinquish {
            resources: set(mask).into_iter().map(|(r, _, _)| r).collect(),
        },
    };
    Step::Msg(from, msg)
}

fn step() -> impl Strategy<Value = Step> {
    (
        proptest::prelude::any::<u8>(),
        proptest::prelude::any::<u8>(),
        0u64..RESOURCES,
        proptest::prelude::any::<u16>(),
        1u64..1_000_000,
    )
        .prop_map(|(kind, client, resource, mask, req)| {
            make_step(kind, client, resource, mask, req)
        })
}

/// Runs the stream against the channel sink (`ring == false`) or the
/// ring-lane sink (`ring == true`) and returns the merged counters plus
/// each client's delivered messages in arrival order.
fn run(steps: &[Step], shards: usize, ring: bool) -> (String, Vec<Vec<String>>) {
    let (tx, chan_rx) = unbounded();
    let egress: Egress<u64, u64> = Egress::new(CLIENTS, 1024);
    let mut lane_rxs: Vec<EgressRx<u64, u64>> = (0..CLIENTS).map(|c| egress.rx(c)).collect();
    let sink: Arc<dyn ClientSink<u64, u64>> = if ring {
        Arc::new(EgressSink::new(egress.clone()))
    } else {
        Arc::new(ChanSink(tx))
    };
    let svc = LeaseService::spawn(
        SvcConfig {
            shards,
            ..SvcConfig::default()
        },
        sink,
        SvcHooks::default(),
        |_| {
            let mut store: MemStorage<u64, u64> = MemStorage::new();
            for r in 0..RESOURCES {
                store.insert(r, r);
            }
            (
                LeaseServer::new(ServerConfig::fixed(Dur::from_secs(3600))),
                Box::new(store) as Box<dyn Storage<u64, u64> + Send>,
            )
        },
    );
    let h = svc.handle();
    for s in steps {
        match s {
            Step::Msg(from, msg) => h.send(*from, msg.clone()).unwrap(),
            Step::Kill(shard) => h.kill_shard(*shard).unwrap(),
        }
    }
    // Egress barrier: every shard flushes its outbox before answering.
    let counters = format!("{:?}", svc.stats().expect("stats").counters);
    svc.shutdown();
    let mut per_client: Vec<Vec<String>> = vec![Vec::new(); CLIENTS];
    if ring {
        let mut buf = Vec::new();
        for (c, rx) in lane_rxs.iter_mut().enumerate() {
            while rx.drain_into(&mut buf, 1024) > 0 {
                per_client[c].extend(buf.drain(..).map(|m| format!("{m:?}")));
            }
        }
    } else {
        while let Ok((to, m)) = chan_rx.try_recv() {
            per_client[to.0 as usize].push(format!("{m:?}"));
        }
    }
    (counters, per_client)
}

proptest! {
    /// Multi-shard: per-client delivery is the same *multiset* on both
    /// paths (cross-shard interleaving is scheduling, not semantics),
    /// with the same counters, kill included.
    #[test]
    fn ring_egress_matches_the_channel_spec(
        steps in proptest::collection::vec(step(), 1..48),
        kill in proptest::option::of((0usize..48, 0usize..3)),
    ) {
        let mut steps = steps;
        if let Some((at, shard)) = kill {
            steps.insert(at.min(steps.len()), Step::Kill(shard));
        }
        let (spec_counters, mut spec) = run(&steps, 3, false);
        let (ring_counters, mut ring) = run(&steps, 3, true);
        prop_assert_eq!(&spec_counters, &ring_counters);
        for c in 0..CLIENTS {
            spec[c].sort_unstable();
            ring[c].sort_unstable();
            prop_assert_eq!(&spec[c], &ring[c], "client {} multiset", c);
        }
    }

    /// Single shard: one producer per client lane, so per-client
    /// delivery *order* must match the channel path exactly.
    #[test]
    fn single_shard_ring_egress_preserves_order(
        steps in proptest::collection::vec(step(), 1..32),
    ) {
        let (spec_counters, spec) = run(&steps, 1, false);
        let (ring_counters, ring) = run(&steps, 1, true);
        prop_assert_eq!(&spec_counters, &ring_counters);
        for c in 0..CLIENTS {
            prop_assert_eq!(&spec[c], &ring[c], "client {} order", c);
        }
    }
}

/// The egress mirror of the core ring's `doorbell_never_loses_a_wakeup`,
/// driven from the shard-flush side: a producer thread publishing runs
/// through [`EgressWorker::deliver_batch`] (coalesced `flush_wakes`
/// rings, full-lane ring-then-yield backpressure) races a consumer
/// running the ticket-before-final-poll park loop. Every message must
/// arrive, in order, without the consumer ever sleeping through a
/// publish.
#[test]
fn egress_doorbell_never_loses_a_wakeup() {
    const N: u64 = 20_000;
    let egress: Egress<u64, u64> = Egress::new(1, 64);
    let mut worker = egress.worker();
    let mut rx = egress.rx(0);
    let producer = std::thread::spawn(move || {
        let mut batch: Vec<(ClientId, ToClient<u64, u64>)> = Vec::new();
        let mut i = 0u64;
        while i < N {
            let burst = (1 + i % 7).min(N - i);
            for _ in 0..burst {
                batch.push((
                    ClientId(0),
                    ToClient::WriteDone {
                        req: ReqId(i),
                        resource: i,
                        version: Version(i),
                        term: Dur::from_secs(1),
                    },
                ));
                i += 1;
            }
            worker.deliver_batch(&mut batch);
            if i.is_multiple_of(64) {
                std::thread::yield_now();
            }
        }
    });
    let mut next = 0u64;
    let mut buf = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while next < N {
        let ticket = rx.bell().ticket();
        if rx.drain_into(&mut buf, 1024) > 0 {
            for m in buf.drain(..) {
                match m {
                    ToClient::WriteDone { req, .. } => {
                        assert_eq!(req.0, next, "lane delivery out of order");
                        next += 1;
                    }
                    other => panic!("unexpected message {other:?}"),
                }
            }
            continue;
        }
        assert!(
            Instant::now() < deadline,
            "lost wakeup or stalled lane: {next}/{N} received"
        );
        rx.bell().wait(ticket, Duration::from_millis(100));
    }
    producer.join().unwrap();
}
