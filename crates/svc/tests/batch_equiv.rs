//! Property: ring-lane submission — one-by-one or batched in arbitrary
//! chunkings — is *observationally equivalent* to the shim-channel cold
//! path, which survives as the executable spec of the pre-ring ingress.
//!
//! The same op stream pushed three ways — one-by-one through the cold
//! path (`send_cold`/`kill_shard_cold`: one shared FIFO, a lock per
//! send), one-by-one through this handle's SPSC lanes (`send`), and
//! chunked through shard-affine `send_batch` — including with a shard
//! kill/restart injected mid-stream, possibly mid-batch — must leave
//! the service in the same observable state: the same merged
//! [`ServerCounters`] and the same multiset of delivered `ToClient`
//! messages. This is the license for the whole ring ingress and every
//! batching layer in the message path (the router's one-pass staging,
//! the ring's single-publish `push_from`, the worker's round-robin lane
//! drain and outbox, the sink's `deliver_batch`): lanes may reorder
//! *between* shards but must preserve each shard's FIFO and lose
//! nothing.
//!
//! Determinism notes: a fixed [`TermPolicy`](lease_core::TermPolicy)
//! keeps grant terms constant (terms are relative `Dur`s, not wall
//! times), terms are hours long so nothing expires mid-test, a kill is
//! flushed to the same per-shard stream position in both runs, and
//! `stats()` is the egress barrier — each shard flushes its outbox
//! before answering, so after `stats()` returns every reply to earlier
//! input is in the sink.

use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};
use lease_clock::Dur;
use lease_core::{
    ClientId, LeaseHandle, LeaseServer, MemStorage, ReqId, ServerConfig, Storage, ToClient,
    ToServer, Version,
};
use lease_svc::{BatchBuf, ClientSink, LeaseService, SvcConfig, SvcHooks};
use proptest::prelude::*;

const SHARDS: usize = 3;
const RESOURCES: u64 = 12;

type Msg = (ClientId, ToClient<u64, u64>);

struct ChanSink(Sender<Msg>);
impl ClientSink<u64, u64> for ChanSink {
    fn deliver(&self, to: ClientId, msg: ToClient<u64, u64>) {
        let _ = self.0.send((to, msg));
    }
}

/// One step of the generated stream: a protocol message from a client,
/// or an injected shard crash.
#[derive(Debug, Clone)]
enum Step {
    Msg(ClientId, ToServer<u64, u64>),
    Kill(usize),
}

/// Expands a compact generated tuple into a protocol step. `kind`
/// selects the message; `mask` picks a resource subset for the
/// multi-resource messages (so fetches split across shards).
fn make_step(kind: u8, client: u8, resource: u64, mask: u16, req: u64) -> Step {
    let from = ClientId(u32::from(client % 2));
    let set = |mask: u16| -> Vec<(u64, Version, LeaseHandle)> {
        (0..RESOURCES)
            .filter(|r| mask & (1 << r) != 0)
            .map(|r| (r, Version(0), LeaseHandle::NULL))
            .collect()
    };
    let msg = match kind % 5 {
        0 | 1 => ToServer::Fetch {
            req: ReqId(req),
            resource,
            cached: None,
            also_extend: set(mask),
        },
        2 => ToServer::Renew {
            req: ReqId(req),
            resources: set(mask),
        },
        3 => ToServer::Write {
            req: ReqId(req),
            resource,
            data: req,
        },
        _ => ToServer::Relinquish {
            resources: set(mask).into_iter().map(|(r, _, _)| r).collect(),
        },
    };
    Step::Msg(from, msg)
}

fn step() -> impl Strategy<Value = Step> {
    (
        proptest::prelude::any::<u8>(),
        proptest::prelude::any::<u8>(),
        0u64..RESOURCES,
        proptest::prelude::any::<u16>(),
        1u64..1_000_000,
    )
        .prop_map(|(kind, client, resource, mask, req)| {
            make_step(kind, client, resource, mask, req)
        })
}

/// How the stream is submitted to the service.
#[derive(Clone, Copy)]
enum Mode<'a> {
    /// One-by-one over the shim control channel — the executable spec.
    Cold,
    /// One-by-one over this handle's SPSC ring lanes.
    Lanes,
    /// Shard-affine `send_batch` over the lanes, cut into buffers of
    /// the given sizes (cycled).
    Chunked(&'a [usize]),
}

/// Runs the stream and returns the observable outcome: the merged
/// counters (as a debug string) and the sorted multiset of delivered
/// messages. A kill always flushes the open buffer first so it lands
/// at the same per-shard stream position in every mode.
fn run(steps: &[Step], mode: Mode<'_>) -> (String, Vec<String>) {
    let (tx, rx) = unbounded();
    let svc = LeaseService::spawn(
        SvcConfig {
            shards: SHARDS,
            ..SvcConfig::default()
        },
        Arc::new(ChanSink(tx)),
        SvcHooks::default(),
        |_| {
            let mut store: MemStorage<u64, u64> = MemStorage::new();
            for r in 0..RESOURCES {
                store.insert(r, r);
            }
            (
                LeaseServer::new(ServerConfig::fixed(Dur::from_secs(3600))),
                Box::new(store) as Box<dyn Storage<u64, u64> + Send>,
            )
        },
    );
    let h = svc.handle();
    match mode {
        Mode::Cold => {
            for s in steps {
                match s {
                    Step::Msg(from, msg) => h.send_cold(*from, msg.clone()).unwrap(),
                    Step::Kill(shard) => h.kill_shard_cold(*shard).unwrap(),
                }
            }
        }
        Mode::Lanes => {
            for s in steps {
                match s {
                    Step::Msg(from, msg) => h.send(*from, msg.clone()).unwrap(),
                    Step::Kill(shard) => h.kill_shard(*shard).unwrap(),
                }
            }
        }
        Mode::Chunked(chunks) => {
            let mut buf: BatchBuf<u64, u64> = BatchBuf::new();
            let mut sizes = chunks.iter().cycle();
            let mut goal = *sizes.next().unwrap();
            for s in steps {
                match s {
                    Step::Msg(from, msg) => {
                        buf.push(*from, msg.clone());
                        if buf.len() >= goal {
                            h.send_batch(&mut buf).unwrap();
                            goal = *sizes.next().unwrap();
                        }
                    }
                    Step::Kill(shard) => {
                        if !buf.is_empty() {
                            h.send_batch(&mut buf).unwrap();
                        }
                        h.kill_shard(*shard).unwrap();
                    }
                }
            }
            if !buf.is_empty() {
                h.send_batch(&mut buf).unwrap();
            }
        }
    }
    // Egress barrier: every shard flushes its outbox before answering.
    let counters = format!("{:?}", svc.stats().expect("stats").counters);
    svc.shutdown();
    let mut delivered: Vec<String> = Vec::new();
    while let Ok(m) = rx.try_recv() {
        delivered.push(format!("{m:?}"));
    }
    delivered.sort_unstable();
    (counters, delivered)
}

proptest! {
    #[test]
    fn ring_lanes_match_the_shim_spec(
        steps in proptest::collection::vec(step(), 1..48),
        chunks in proptest::collection::vec(1usize..9, 1..6),
        kill in proptest::option::of((0usize..48, 0usize..SHARDS)),
    ) {
        // Inject the kill (if any) at its stream position in *all* runs.
        let mut steps = steps;
        if let Some((at, shard)) = kill {
            steps.insert(at.min(steps.len()), Step::Kill(shard));
        }
        let (spec_counters, spec_msgs) = run(&steps, Mode::Cold);
        let (lane_counters, lane_msgs) = run(&steps, Mode::Lanes);
        let (chunk_counters, chunk_msgs) = run(&steps, Mode::Chunked(&chunks));
        prop_assert_eq!(&spec_counters, &lane_counters);
        prop_assert_eq!(&spec_counters, &chunk_counters);
        prop_assert_eq!(spec_msgs.len(), lane_msgs.len());
        prop_assert_eq!(&spec_msgs, &lane_msgs);
        prop_assert_eq!(spec_msgs.len(), chunk_msgs.len());
        prop_assert_eq!(&spec_msgs, &chunk_msgs);
    }
}
