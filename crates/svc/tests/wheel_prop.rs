//! Property: driven by the same randomized grant/extend/relinquish
//! sequence, the timer wheel fires exactly the lease expirations a naive
//! scan of the lease table finds — the same set, in the same order.
//!
//! The wheel is what lets a shard worker drop the table walk; this test is
//! the license for that substitution. The table's expiry index is ordered
//! `(expiry, resource, client)`, so a naive scan yields expired records in
//! exactly that order; the wheel returns its due batch sorted by
//! `(deadline, key)`, which must coincide. The wheel — and the table,
//! whose prune is itself wheel-backed now — runs with a 1-unit tick so
//! quantization cannot blur the comparison; lazy cancellation (extend
//! supersedes, relinquish orphans) is exercised by keeping the
//! caller-side `armed` map the shard workers use.

use std::collections::HashMap;

use lease_clock::{Dur, Time};
use lease_core::{ClientId, LeaseTable};
use lease_svc::TimerWheel;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    /// Grant (or extend: the table never shortens) a lease.
    Grant {
        resource: u64,
        client: u32,
        expiry: u64,
    },
    /// Voluntarily release a lease.
    Relinquish { resource: u64, client: u32 },
    /// Advance time and compare what expires.
    Advance { by: u64 },
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..8, 0u32..4, 1u64..500).prop_map(|(resource, client, expiry)| Step::Grant {
            resource,
            client,
            expiry
        }),
        (0u64..8, 0u32..4).prop_map(|(resource, client)| Step::Relinquish { resource, client }),
        (1u64..120).prop_map(|by| Step::Advance { by }),
    ]
}

proptest! {
    #[test]
    fn wheel_matches_naive_scan(steps in proptest::collection::vec(step(), 1..120)) {
        let mut table: LeaseTable<u64> = LeaseTable::with_tick(Dur(1));
        let mut wheel: TimerWheel<(u64, ClientId)> = TimerWheel::new(Dur(1), Time::ZERO);
        let mut armed: HashMap<(u64, ClientId), Time> = HashMap::new();
        let mut now = Time::ZERO;

        for s in steps {
            match s {
                Step::Grant { resource, client, expiry } => {
                    let client = ClientId(client);
                    // Expiries are relative to now and never in the past.
                    let expiry = Time(now.0 + expiry);
                    table.grant(resource, client, expiry);
                    // What the table actually holds (a shorter grant is
                    // ignored); arm the wheel to match.
                    let actual = table
                        .expiry_of(resource, client, now)
                        .expect("just granted in the future");
                    if armed.get(&(resource, client)) != Some(&actual) {
                        armed.insert((resource, client), actual);
                        wheel.schedule(actual, (resource, client));
                    }
                }
                Step::Relinquish { resource, client } => {
                    let client = ClientId(client);
                    table.release(resource, client);
                    // Lazy cancellation: the wheel entry stays and is
                    // dropped when it fires without a matching arm.
                    armed.remove(&(resource, client));
                }
                Step::Advance { by } => {
                    now = Time(now.0 + by);
                    // The naive path: scan the expiry-ordered index.
                    let expired_by_scan: Vec<(Time, u64, ClientId)> = table
                        .iter()
                        .filter(|&(_, _, e)| e <= now)
                        .map(|(r, c, e)| (e, r, c))
                        .collect();
                    table.prune(now);
                    // The wheel path: collect due entries, drop stale ones.
                    let mut fired = Vec::new();
                    for (at, key) in wheel.advance(now) {
                        if armed.get(&key) == Some(&at) {
                            armed.remove(&key);
                            fired.push((at, key.0, key.1));
                        }
                    }
                    prop_assert_eq!(fired, expired_by_scan);
                }
            }
        }

        // Drain everything left so the final state agrees too.
        now = Time(now.0 + 1_000_000);
        let remaining_by_scan: Vec<(Time, u64, ClientId)> =
            table.iter().map(|(r, c, e)| (e, r, c)).collect();
        let mut fired = Vec::new();
        for (at, key) in wheel.advance(now) {
            if armed.get(&key) == Some(&at) {
                armed.remove(&key);
                fired.push((at, key.0, key.1));
            }
        }
        prop_assert_eq!(fired, remaining_by_scan);
        prop_assert!(armed.is_empty());
        prop_assert!(wheel.is_empty());
    }
}
