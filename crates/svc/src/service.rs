//! The sharded lease service: router, client handle, and lifecycle.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use lease_clock::{Clock, Dur, Time, WallClock};
use lease_core::ring::{spsc, Producer, PushError};
use lease_core::{
    ClientId, FxHasher, LeaseServer, Resource, ServerCounters, ServerInput, Storage, ToClient,
    ToServer, WriteId,
};

use crate::shard::{spawn_shard, ShardCtx, ShardIngress, ShardMsg};

/// Where shard workers deliver protocol messages bound for clients.
///
/// The service owns routing *into* shards; delivery back out is the
/// embedder's transport (channels in `lease-rt`, a socket in a real
/// deployment), so it is abstracted behind this one call.
pub trait ClientSink<R, D>: Send + Sync {
    /// Delivers `msg` to client `to`. Must not block indefinitely: a
    /// blocked sink stalls the shard worker that called it.
    fn deliver(&self, to: ClientId, msg: ToClient<R, D>);

    /// Delivers one whole egress flush — everything a shard worker
    /// accumulated across a mailbox drain plus wheel advance — draining
    /// `msgs` in order.
    ///
    /// The default implementation loops over [`ClientSink::deliver`], so
    /// every existing sink compiles and behaves unchanged. Transports
    /// should override it to amortize per-message cost (one lock/syscall
    /// round per *flush*, e.g. by grouping runs of messages to the same
    /// client); per-client message order must be preserved.
    fn deliver_batch(&self, msgs: &mut Vec<(ClientId, ToClient<R, D>)>) {
        for (to, msg) in msgs.drain(..) {
            self.deliver(to, msg);
        }
    }

    /// The egress-lane handshake. A shard worker calls this once, at
    /// thread start, asking the sink for a *private* sending half it can
    /// flush through without synchronization; `Some` routes every flush
    /// of that worker through the returned [`WorkerSink`] instead of the
    /// shared `deliver`/`deliver_batch` methods.
    ///
    /// This exists because a ring [`lease_core::ring::Producer`] is
    /// deliberately `!Sync` — per-(shard→client) SPSC egress lanes
    /// cannot live behind the shared `&self` methods of a sink one `Arc`
    /// of which every worker holds. The default returns `None`: plain
    /// sinks keep the shared path, and chaos/fenced transports (which
    /// must roll per-message dice or re-check a gate) decline the
    /// handshake to stay on it.
    fn attach_worker(&self) -> Option<Box<dyn WorkerSink<R, D>>> {
        None
    }
}

/// One shard worker's private egress half, produced by
/// [`ClientSink::attach_worker`]: `Send` but not `Sync`, owned by the
/// worker thread, so it can hold per-client ring producers and reusable
/// scratch buffers without a lock.
pub trait WorkerSink<R, D>: Send {
    /// Delivers one whole egress flush, draining `msgs` in order
    /// (per-client order must be preserved). Must not block
    /// indefinitely.
    fn deliver_batch(&mut self, msgs: &mut Vec<(ClientId, ToClient<R, D>)>);
}

/// Watermark-driven admission control for shard workers.
///
/// Backpressure (a full mailbox) is the *transport* saying no; admission
/// control is the *server* saying no. A shard whose mailbox occupancy
/// crosses [`AdmissionControl::shed_watermark`] refuses the lowest-priority
/// work it drains — cold fetches, i.e. brand-new grants with nothing cached
/// and no piggybacked extensions — with an explicit
/// [`lease_core::ErrorReason::Shed`] reply carrying a server-suggested
/// pause. Renewals, extensions, writes, approvals, relinquishes, and timer
/// work are never shed: expiry processing and lease continuity outrank new
/// admissions, which outrank stats. Shedding a fetch is always
/// consistency-safe — no lease is granted, so no stale cache can be read
/// under it.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionControl {
    /// Mailbox occupancy in `[0, 1]` at or above which a draining shard
    /// sheds cold fetches instead of granting them.
    pub shed_watermark: f64,
    /// Occupancy at or above which a `Stats` request is answered *without*
    /// the egress-flush barrier first (the counters are still exact; only
    /// the flushed-egress certification is skipped). Stats are the lowest
    /// priority — under overload the barrier would stall the drain.
    pub stats_watermark: f64,
    /// The pause suggested to shed clients (`Shed { retry_after }`).
    pub retry_after: Dur,
}

impl Default for AdmissionControl {
    fn default() -> AdmissionControl {
        AdmissionControl {
            shed_watermark: 0.75,
            stats_watermark: 0.9,
            retry_after: Dur::from_millis(10),
        }
    }
}

/// Tuning knobs for a [`LeaseService`].
#[derive(Debug, Clone, Copy)]
pub struct SvcConfig {
    /// Shard worker count. Resources are partitioned by key hash.
    pub shards: usize,
    /// Bounded mailbox capacity per shard; a full mailbox is the service's
    /// backpressure signal ([`SvcHandle::send`] blocks,
    /// [`SvcHandle::try_send`] refuses).
    pub mailbox: usize,
    /// Max messages drained per wakeup, amortizing timer/wheel work.
    pub batch: usize,
    /// Timer-wheel quantum. Timers fire at most one tick late, never
    /// early.
    pub wheel_tick: Dur,
    /// Max sleep when no timer is pending.
    pub idle_wait: Dur,
    /// Adaptive-park spin budget: a shard worker whose last drain was
    /// non-empty polls its mailbox up to this many times (cheap
    /// `try_recv` with a spin-loop hint) before falling back to the timed
    /// park, so shards under sustained load never touch the futex. Idle
    /// shards (empty last drain) park immediately, exactly as before.
    /// `0` disables spinning.
    pub spin: usize,
    /// Watermark-driven admission control; `None` disables it (every
    /// drained input is processed, the pre-existing behaviour).
    pub admission: Option<AdmissionControl>,
    /// Chaos injection: make shard `.0` sleep `.1` after every processed
    /// input, modelling a degraded worker with bounded throughput. Shed
    /// and expired-dropped inputs pay nothing — that is the point of
    /// shedding. `None` disables.
    pub slow_shard: Option<(usize, Dur)>,
    /// Pin shard worker `i` to core `base + i` (best effort, Linux only,
    /// via [`lease_core::affinity::pin_to_core`]). `None` leaves
    /// placement to the scheduler. Thread-per-core deployments set this
    /// so a shard's cache-resident lease table stays on one core.
    pub pin: Option<usize>,
}

impl Default for SvcConfig {
    fn default() -> SvcConfig {
        SvcConfig {
            shards: 1,
            mailbox: 1024,
            batch: 64,
            wheel_tick: Dur::from_millis(1),
            idle_wait: Dur::from_millis(50),
            spin: 256,
            admission: None,
            slow_shard: None,
            pin: None,
        }
    }
}

/// Side-effect hooks a deployment can install on every shard.
#[derive(Clone, Default)]
pub struct SvcHooks {
    /// Called when a shard needs its maximum granted term made durable
    /// (MaxTerm crash recovery, §5). `None` drops the persistence output.
    pub persist_max_term: Option<Arc<dyn Fn(Dur) + Send + Sync>>,
    /// Called when a shard restarts after a crash to read back whatever
    /// [`SvcHooks::persist_max_term`] made durable; the restarted server
    /// defers writes (§5) for that long. `None` (or a `None` return)
    /// restarts without a recovery window — only safe if no lease can have
    /// been outstanding.
    pub recover_max_term: Option<Arc<dyn Fn() -> Option<Dur> + Send + Sync>>,
    /// Observation hook: a shard finished restarting after a crash;
    /// arguments are the shard index and its new epoch. Chaos harnesses
    /// record these to correlate fault schedules with history.
    pub on_restart: Option<Arc<dyn Fn(usize, u64) + Send + Sync>>,
    /// The clock shard workers read. `None` uses a fresh [`WallClock`];
    /// chaos harnesses inject a skewed/drifting model clock here to subject
    /// the *server* to the §5 clock-failure modes.
    pub clock: Option<Arc<dyn Clock>>,
}

/// The shard that owns `resource`: a stable hash of the key, mod `shards`.
///
/// Embedders that pre-partition state (e.g. installed files per shard)
/// must use the same function the router uses.
///
/// **Stability guarantee:** the mapping is a pure function of the key and
/// the shard count — stable across process restarts, Rust releases, and
/// platforms. It is [`lease_core::FxHasher`] (a documented multiply-xor
/// hash, pinned by golden-vector tests) rather than
/// `std::collections::hash_map::DefaultHasher`, which is explicitly
/// allowed to change between Rust releases and would silently re-partition
/// any persisted shard-keyed state on a toolchain upgrade. A golden test
/// below pins `shard_of` outputs directly; changing this mapping is a
/// breaking change to every embedder that persists per-shard state.
#[inline]
pub fn shard_of<R: Hash>(resource: &R, shards: usize) -> usize {
    let mut h = FxHasher::new();
    resource.hash(&mut h);
    (h.finish() % shards as u64) as usize
}

/// Why a call into the service failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvcError {
    /// A shard mailbox is full (only from [`SvcHandle::try_send`]).
    Backpressure,
    /// The service has shut down.
    Closed,
    /// A shard worker is gone: its mailbox is disconnected, or it died
    /// while holding a request. Distinct from [`SvcError::Timeout`] — the
    /// shard will not answer, ever.
    ShardDown(usize),
    /// A shard did not answer within the deadline; it may merely be busy.
    Timeout(usize),
}

impl std::fmt::Display for SvcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvcError::Backpressure => write!(f, "shard mailbox full"),
            SvcError::Closed => write!(f, "service closed"),
            SvcError::ShardDown(s) => write!(f, "shard {s} is down"),
            SvcError::Timeout(s) => write!(f, "shard {s} did not answer in time"),
        }
    }
}

impl std::error::Error for SvcError {}

/// Merged counters across shards, with the per-shard breakdown.
#[derive(Debug, Clone)]
pub struct SvcStats {
    /// All shards merged.
    pub counters: ServerCounters,
    /// One entry per shard, in shard order.
    pub per_shard: Vec<ServerCounters>,
    /// Crash/restart count per shard, in shard order. Counters in
    /// [`SvcStats::per_shard`] reset when a shard restarts; this says how
    /// often that happened.
    pub restarts: Vec<u64>,
}

/// A cloneable, backpressure-aware handle into the service.
///
/// The handle is the cross-shard coordinator: it routes every message to
/// the shard that owns its resource, splitting batched requests along
/// shard boundaries and translating write ids so approvals triggered by
/// one shard's multicast find their way back to it from any client.
///
/// # Per-producer ingress
///
/// Every handle owns one private SPSC ring *lane* per shard: hot sends
/// publish into the lane with no lock and wake the shard through its
/// doorbell (two uncontended atomics when the worker is spinning, one
/// futex signal only when it is parked). Cloning a handle therefore
/// creates and registers a fresh set of lanes — clone **once per
/// producer thread**, not per message. The handle is deliberately
/// `Send` but `!Sync`: one thread per handle is what makes the lanes
/// single-producer. To share a handle across threads (e.g. in a slot a
/// failover path swaps), wrap it in a `Mutex` — `Mutex<SvcHandle>` is
/// `Sync` — or give each thread its own clone. The original
/// shim-crossbeam channel survives as the cold/control path
/// ([`SvcHandle::send_cold`], stats, shutdown) and as the executable
/// spec the ring path is property-tested against.
pub struct SvcHandle<R: Resource, D> {
    shared: Arc<HandleShared<R, D>>,
    /// This handle's private SPSC lane into each shard, in shard order.
    lanes: Box<[Producer<ShardMsg<R, D>>]>,
}

/// The per-service state every handle shares.
pub(crate) struct HandleShared<R: Resource, D> {
    /// The cold/control channel into each shard.
    pub(crate) txs: Box<[Sender<ShardMsg<R, D>>]>,
    /// Each shard's doorbell + lane registry.
    pub(crate) ingress: Box<[Arc<ShardIngress<R, D>>]>,
    /// Capacity of each newly attached lane.
    lane_cap: usize,
}

impl<R: Resource, D> SvcHandle<R, D> {
    /// Builds a handle with a fresh set of registered lanes.
    pub(crate) fn attach(shared: Arc<HandleShared<R, D>>) -> SvcHandle<R, D> {
        let lanes = shared
            .ingress
            .iter()
            .map(|ing| {
                let (tx, rx) = spsc(shared.lane_cap);
                ing.register(rx);
                tx
            })
            .collect();
        SvcHandle { shared, lanes }
    }

    /// Rings shard `s`'s doorbell (call after publishing to its lane or
    /// control channel).
    fn wake(&self, s: usize) {
        self.shared.ingress[s].bell().ring();
    }

    /// Non-blocking push of one message into this handle's lane for
    /// shard `s`.
    fn lane_try_push(&self, s: usize, msg: ShardMsg<R, D>) -> Result<(), SvcError> {
        match self.lanes[s].try_push(msg) {
            Ok(()) => {
                self.wake(s);
                Ok(())
            }
            Err(PushError::Full(_)) => Err(SvcError::Backpressure),
            Err(PushError::Closed(_)) => Err(SvcError::Closed),
        }
    }

    /// Blocking push: yields until the lane has room. The worker never
    /// parks while this lane is non-empty (it polls lanes before taking
    /// a doorbell ticket), so spinning here cannot deadlock.
    fn lane_push(&self, s: usize, msg: ShardMsg<R, D>) -> Result<(), SvcError> {
        let mut msg = msg;
        loop {
            match self.lanes[s].try_push(msg) {
                Ok(()) => {
                    self.wake(s);
                    return Ok(());
                }
                Err(PushError::Closed(_)) => return Err(SvcError::Closed),
                Err(PushError::Full(back)) => {
                    msg = back;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Blocking bulk push of a staged per-shard run: publishes in chunks
    /// as space frees, one doorbell ring per publish. On `Closed` the
    /// remainder is dropped (the service is gone and nothing will answer
    /// it).
    fn lane_push_all(&self, s: usize, stage: &mut Vec<ShardMsg<R, D>>) -> Result<(), SvcError> {
        while !stage.is_empty() {
            if self.lanes[s].push_from(stage) > 0 {
                self.wake(s);
            } else if self.lanes[s].is_closed() {
                stage.clear();
                return Err(SvcError::Closed);
            } else {
                std::thread::yield_now();
            }
        }
        Ok(())
    }
}

impl<R: Resource, D> Clone for SvcHandle<R, D> {
    /// Attaches a new producer: fresh lanes, registered with every
    /// shard. Clone once per producer thread, not per message — a
    /// clone's cost is `shards` ring allocations.
    fn clone(&self) -> Self {
        SvcHandle::attach(self.shared.clone())
    }
}

/// A caller-side, reusable buffer of protocol messages bound for the
/// service — the unit of [`SvcHandle::send_batch`].
///
/// Callers push `(from, msg)` pairs between submits; the handle routes the
/// whole buffer in one pass (one [`shard_of`] per message, one mailbox
/// push per *touched shard* instead of one per message) so the per-op
/// submission cost under load is a queue slot, not a channel round trip.
/// The buffer retains its allocations across submits — a steady-state
/// producer reuses one `BatchBuf` indefinitely.
pub struct BatchBuf<R: Resource, D> {
    /// Unrouted messages with their op deadlines, in push order.
    msgs: Vec<(ClientId, ToServer<R, D>, Option<Time>)>,
    /// Per-shard staging, reused flush to flush.
    staged: Vec<Vec<ShardMsg<R, D>>>,
    /// Messages dropped at staging time because their deadline had
    /// already passed (only by [`SvcHandle::try_send_batch_at`] with a
    /// `now`). Cumulative; callers may reset it between reads.
    pub expired: u64,
}

impl<R: Resource, D> Default for BatchBuf<R, D> {
    fn default() -> Self {
        BatchBuf::new()
    }
}

impl<R: Resource, D> BatchBuf<R, D> {
    /// An empty buffer.
    pub fn new() -> BatchBuf<R, D> {
        BatchBuf {
            msgs: Vec::new(),
            staged: Vec::new(),
            expired: 0,
        }
    }

    /// Queues one message for the next [`SvcHandle::send_batch`].
    pub fn push(&mut self, from: ClientId, msg: ToServer<R, D>) {
        self.msgs.push((from, msg, None));
    }

    /// Like [`BatchBuf::push`] with the originating op's deadline: every
    /// later hop — staging, the shard mailbox, the drain — may drop the
    /// message once the deadline passes instead of doing dead work for a
    /// caller that has already timed out.
    pub fn push_deadline(&mut self, from: ClientId, msg: ToServer<R, D>, deadline: Option<Time>) {
        self.msgs.push((from, msg, deadline));
    }

    /// Messages currently buffered (un-submitted).
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether the buffer holds no messages.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Drops all buffered messages (allocations retained).
    pub fn clear(&mut self) {
        self.msgs.clear();
        for s in &mut self.staged {
            s.clear();
        }
    }

    /// Routes every buffered message into the per-shard staging lists;
    /// with a `now`, messages whose deadline has already passed are
    /// dropped (counted in [`BatchBuf::expired`]) instead of routed.
    fn stage(&mut self, n: usize, now: Option<Time>) {
        if self.staged.len() < n {
            self.staged.resize_with(n, Vec::new);
        }
        let BatchBuf {
            msgs,
            staged,
            expired,
        } = self;
        for (from, msg, deadline) in msgs.drain(..) {
            if let (Some(now), Some(d)) = (now, deadline) {
                if now > d {
                    *expired += 1;
                    continue;
                }
            }
            route_into(from, msg, deadline, n, staged);
        }
    }

    /// Moves refused staged parts back into `msgs` for resubmission.
    fn unstage_refused(&mut self) {
        let BatchBuf { msgs, staged, .. } = self;
        for stage in staged {
            for m in stage.drain(..) {
                if let ShardMsg::Input {
                    input: ServerInput::Msg { from, msg },
                    deadline,
                } = m
                {
                    msgs.push((from, msg, deadline));
                }
            }
        }
    }
}

impl<R: Resource, D: Clone> SvcHandle<R, D> {
    /// The shard count.
    pub fn shards(&self) -> usize {
        self.shared.txs.len()
    }

    /// Routes `msg` to its shard(s), blocking while a target lane is
    /// full — the backpressure path for closed-loop clients. Equivalent
    /// to a one-element [`SvcHandle::send_batch`]: a single-destination
    /// message costs one routing hash, one lock-free ring publish, and
    /// one doorbell ring.
    pub fn send(&self, from: ClientId, msg: ToServer<R, D>) -> Result<(), SvcError> {
        self.send_at(from, msg, None)
    }

    /// [`SvcHandle::send`] with the originating op's deadline attached:
    /// the owning shard drops the input unprocessed (counting it) if the
    /// deadline has passed by the time it drains it.
    pub fn send_at(
        &self,
        from: ClientId,
        msg: ToServer<R, D>,
        deadline: Option<Time>,
    ) -> Result<(), SvcError> {
        let n = self.shards();
        match route_single(msg, n) {
            Ok((s, msg)) => self.lane_push(
                s,
                ShardMsg::Input {
                    input: ServerInput::Msg { from, msg },
                    deadline,
                },
            ),
            Err(msg) => {
                // A splitting message (batched extension, multi-resource
                // renew): stage it like a one-element batch.
                let mut staged: Vec<Vec<ShardMsg<R, D>>> = (0..n).map(|_| Vec::new()).collect();
                route_into(from, msg, deadline, n, &mut staged);
                for (s, stage) in staged.iter_mut().enumerate() {
                    if !stage.is_empty() {
                        self.lane_push_all(s, stage)?;
                    }
                }
                Ok(())
            }
        }
    }

    /// Like [`SvcHandle::send`] but refuses instead of blocking when a
    /// lane is full. A split message may be partially delivered before
    /// the refusal; that is safe because the client retransmits the whole
    /// request and the server deduplicates.
    pub fn try_send(&self, from: ClientId, msg: ToServer<R, D>) -> Result<(), SvcError> {
        self.try_send_at(from, msg, None)
    }

    /// [`SvcHandle::try_send`] with the originating op's deadline
    /// attached (see [`SvcHandle::send_at`]).
    pub fn try_send_at(
        &self,
        from: ClientId,
        msg: ToServer<R, D>,
        deadline: Option<Time>,
    ) -> Result<(), SvcError> {
        let n = self.shards();
        match route_single(msg, n) {
            Ok((s, msg)) => self.lane_try_push(
                s,
                ShardMsg::Input {
                    input: ServerInput::Msg { from, msg },
                    deadline,
                },
            ),
            Err(msg) => {
                let mut staged: Vec<Vec<ShardMsg<R, D>>> = (0..n).map(|_| Vec::new()).collect();
                route_into(from, msg, deadline, n, &mut staged);
                for (s, stage) in staged.iter_mut().enumerate() {
                    for m in stage.drain(..) {
                        self.lane_try_push(s, m)?;
                    }
                }
                Ok(())
            }
        }
    }

    /// Submits every message in `buf`, blocking while target lanes are
    /// full. One routing pass pre-sorts the batch by destination shard
    /// (shard-affine batching); each touched shard then receives its
    /// whole sub-batch as one contiguous pre-routed run — a single ring
    /// publish and at most one doorbell ring per touched shard — so N
    /// messages cost `O(touched shards)` wakes instead of `O(N)`.
    ///
    /// On success the buffer is left empty (allocations retained). On
    /// [`SvcError::Closed`] undelivered messages are dropped — the
    /// service is gone and nothing will answer them.
    pub fn send_batch(&self, buf: &mut BatchBuf<R, D>) -> Result<(), SvcError> {
        let n = self.shards();
        buf.stage(n, None);
        let mut closed = false;
        for (s, stage) in buf.staged.iter_mut().enumerate() {
            if stage.is_empty() {
                continue;
            }
            if self.lane_push_all(s, stage).is_err() {
                closed = true;
            }
        }
        if closed {
            Err(SvcError::Closed)
        } else {
            Ok(())
        }
    }

    /// Like [`SvcHandle::send_batch`] but never blocks: each touched
    /// shard accepts the prefix of its sub-batch that fits its mailbox
    /// right now. Returns how many routed parts were accepted; the
    /// refused remainder is put **back into `buf`** (as individually
    /// resubmittable messages, split parts included), so backpressure
    /// pacing — `lease-rt`'s `RetryAfter` — just resubmits the buffer
    /// after a delay. `buf.is_empty()` afterwards means everything went
    /// through.
    ///
    /// As with [`SvcHandle::try_send`], a split message may have some
    /// parts delivered and others refused; refused parts are returned as
    /// self-contained messages (a per-shard `Renew`/`Relinquish` slice is
    /// itself a valid request), so resubmitting exactly the refusals is
    /// sufficient and duplicates nothing.
    pub fn try_send_batch(&self, buf: &mut BatchBuf<R, D>) -> Result<usize, SvcError> {
        self.try_send_batch_at(buf, None)
    }

    /// [`SvcHandle::try_send_batch`] with deadline enforcement at the
    /// door: given `now`, buffered messages whose
    /// [`BatchBuf::push_deadline`] deadline has already passed are
    /// dropped at staging time (tallied in [`BatchBuf::expired`]) rather
    /// than submitted — a resubmission loop under backpressure stops
    /// queueing work whose caller has already timed out.
    pub fn try_send_batch_at(
        &self,
        buf: &mut BatchBuf<R, D>,
        now: Option<Time>,
    ) -> Result<usize, SvcError> {
        let n = self.shards();
        buf.stage(n, now);
        let mut accepted = 0;
        let mut closed = false;
        for (s, stage) in buf.staged.iter_mut().enumerate() {
            if stage.is_empty() {
                continue;
            }
            let k = self.lanes[s].push_from(stage);
            if k > 0 {
                self.wake(s);
                accepted += k;
            } else if self.lanes[s].is_closed() {
                closed = true;
            }
        }
        buf.unstage_refused();
        if closed {
            return Err(SvcError::Closed);
        }
        Ok(accepted)
    }

    /// An administrative write originating at the server (install, §4).
    pub fn local_write(&self, resource: R, data: D) -> Result<(), SvcError> {
        let s = shard_of(&resource, self.shards());
        self.lane_push(
            s,
            ShardMsg::Input {
                input: ServerInput::LocalWrite { resource, data },
                deadline: None,
            },
        )
    }

    /// Fault injection: panic shard `shard`'s worker. The supervisor
    /// catches the panic and restarts the shard through §5 MaxTerm
    /// recovery, so this models a server crash, not a shutdown.
    ///
    /// The kill travels through **this handle's lane**, so it is ordered
    /// after everything this handle already submitted: chaos plans that
    /// interleave kills with traffic from the same producer replay
    /// identically on the ring ingress (the crash boundary stays
    /// message-aligned — see the shard worker's stash).
    pub fn kill_shard(&self, shard: usize) -> Result<(), SvcError> {
        if shard >= self.shards() {
            return Err(SvcError::ShardDown(shard));
        }
        self.lane_push(shard, ShardMsg::Kill)
    }

    /// Routes `msg` through the **cold path** — the original
    /// shim-crossbeam control channel — instead of this handle's lanes.
    ///
    /// One shared FIFO, a mutex acquisition per send, a condvar signal
    /// per wake: the pre-ring ingress, kept alive as the executable spec
    /// the ring path is property-tested against (`batch_equiv`) and for
    /// callers that must not touch the per-producer lanes (e.g. a
    /// chaos-delay thread holding a borrowed handle's clone would
    /// otherwise register a ring pair per delayed message).
    pub fn send_cold(&self, from: ClientId, msg: ToServer<R, D>) -> Result<(), SvcError> {
        let n = self.shards();
        match route_single(msg, n) {
            Ok((s, msg)) => {
                self.shared.txs[s]
                    .send(ShardMsg::Input {
                        input: ServerInput::Msg { from, msg },
                        deadline: None,
                    })
                    .map_err(|_| SvcError::Closed)?;
                self.wake(s);
                Ok(())
            }
            Err(msg) => {
                let mut staged: Vec<Vec<ShardMsg<R, D>>> = (0..n).map(|_| Vec::new()).collect();
                route_into(from, msg, None, n, &mut staged);
                for (s, stage) in staged.iter_mut().enumerate() {
                    if stage.is_empty() {
                        continue;
                    }
                    self.shared.txs[s]
                        .send_many(stage.drain(..))
                        .map_err(|_| SvcError::Closed)?;
                    self.wake(s);
                }
                Ok(())
            }
        }
    }

    /// [`SvcHandle::kill_shard`] over the cold path: the kill is ordered
    /// against [`SvcHandle::send_cold`] traffic (control-channel FIFO),
    /// not against this handle's lanes. The spec half of the ring-vs-shim
    /// equivalence tests uses this.
    pub fn kill_shard_cold(&self, shard: usize) -> Result<(), SvcError> {
        self.shared
            .txs
            .get(shard)
            .ok_or(SvcError::ShardDown(shard))?
            .send(ShardMsg::Kill)
            .map_err(|_| SvcError::Closed)?;
        self.wake(shard);
        Ok(())
    }
}

/// Routes a message that targets exactly one shard, or gives it back.
///
/// The hot per-op wire messages — a fetch with no piggybacked extensions,
/// a write, an approval — always have a single destination; resolving
/// them here keeps the single-message [`SvcHandle::send`] path free of
/// staging entirely. `Approve` is rewritten from the service-global write
/// id back to the owning shard's local id space.
fn route_single<R: Resource, D>(
    msg: ToServer<R, D>,
    n: usize,
) -> Result<(usize, ToServer<R, D>), ToServer<R, D>> {
    if n == 1 {
        return Ok((0, msg));
    }
    match msg {
        ToServer::Fetch {
            ref resource,
            ref also_extend,
            ..
        } if also_extend.is_empty() => {
            let s = shard_of(resource, n);
            Ok((s, msg))
        }
        ToServer::Write { ref resource, .. } => Ok((shard_of(resource, n), msg)),
        ToServer::Approve { write_id } => Ok((
            (write_id.0 % n as u64) as usize,
            ToServer::Approve {
                write_id: WriteId(write_id.0 / n as u64),
            },
        )),
        other => Err(other),
    }
}

/// Splits one wire message into per-shard sub-messages, pushing each into
/// its shard's staging list.
///
/// * `Fetch` goes to the target's shard; piggybacked `also_extend`
///   entries for other shards are re-expressed as `Renew` under the same
///   request id (the client treats grants lacking its fetch target as
///   partial replies).
/// * `Renew` and `Relinquish` partition by resource, preserving relative
///   order within each shard; when every entry maps to one shard the
///   original vector is forwarded without re-bucketing.
/// * `Approve` carries a service-global write id minted by a shard
///   (`global = local * nshards + shard`, epoch-tagged) and routes
///   straight back.
fn route_into<R: Resource, D>(
    from: ClientId,
    msg: ToServer<R, D>,
    deadline: Option<Time>,
    n: usize,
    staged: &mut [Vec<ShardMsg<R, D>>],
) {
    let input = |msg: ToServer<R, D>| ShardMsg::Input {
        input: ServerInput::Msg { from, msg },
        deadline,
    };
    let msg = match route_single(msg, n) {
        Ok((s, msg)) => {
            staged[s].push(input(msg));
            return;
        }
        Err(msg) => msg,
    };
    match msg {
        ToServer::Fetch {
            req,
            resource,
            cached,
            also_extend,
        } => {
            let primary = shard_of(&resource, n);
            let mut per = partition(also_extend, n, |(r, _, _)| r);
            staged[primary].push(input(ToServer::Fetch {
                req,
                resource,
                cached,
                also_extend: std::mem::take(&mut per[primary]),
            }));
            for (s, resources) in per.into_iter().enumerate() {
                if !resources.is_empty() {
                    staged[s].push(input(ToServer::Renew { req, resources }));
                }
            }
        }
        ToServer::Renew { req, resources } => {
            if let Some(s) = sole_shard(&resources, n, |(r, _, _)| r) {
                staged[s].push(input(ToServer::Renew { req, resources }));
                return;
            }
            for (s, resources) in partition(resources, n, |(r, _, _)| r)
                .into_iter()
                .enumerate()
            {
                if !resources.is_empty() {
                    staged[s].push(input(ToServer::Renew { req, resources }));
                }
            }
        }
        ToServer::Relinquish { resources } => {
            if let Some(s) = sole_shard(&resources, n, |r| r) {
                staged[s].push(input(ToServer::Relinquish { resources }));
                return;
            }
            for (s, resources) in partition(resources, n, |r| r).into_iter().enumerate() {
                if !resources.is_empty() {
                    staged[s].push(input(ToServer::Relinquish { resources }));
                }
            }
        }
        // route_single handled these.
        ToServer::Write { .. } | ToServer::Approve { .. } => unreachable!(),
    }
}

/// The single shard every item maps to, if there is one (`None` for an
/// empty list or a genuinely split one).
fn sole_shard<T, K: Hash>(items: &[T], n: usize, key: impl Fn(&T) -> &K) -> Option<usize> {
    let first = items.first()?;
    let s = shard_of(key(first), n);
    items[1..]
        .iter()
        .all(|it| shard_of(key(it), n) == s)
        .then_some(s)
}

/// Partitions `items` into `n` buckets by the shard of `key(item)`,
/// preserving relative order within each bucket.
fn partition<T, K: Hash>(items: Vec<T>, n: usize, key: impl Fn(&T) -> &K) -> Vec<Vec<T>> {
    let mut per: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
    for it in items {
        let s = shard_of(key(&it), n);
        per[s].push(it);
    }
    per
}

/// A running sharded lease service: N supervised shard worker threads,
/// each owning the slice of the lease table whose resources hash to it.
pub struct LeaseService<R: Resource, D> {
    handle: SvcHandle<R, D>,
    threads: Vec<JoinHandle<()>>,
    restarts: Vec<Arc<AtomicU64>>,
}

impl<R: Resource, D: Clone + Send + 'static> LeaseService<R, D> {
    /// Spawns the shard workers.
    ///
    /// `make_shard(i)` builds shard `i`'s state machine and storage; use
    /// [`shard_of`] to pre-partition any per-resource server state (e.g.
    /// installed files). The state machines are unmodified `lease-core`
    /// servers — the service only partitions, supervises, and schedules
    /// them. The factory is retained for the life of the service: each
    /// crash of shard `i` calls `make_shard(i)` again to build the
    /// replacement incarnation, which then runs §5 MaxTerm recovery from
    /// [`SvcHooks::recover_max_term`].
    pub fn spawn<F>(
        cfg: SvcConfig,
        sink: Arc<dyn ClientSink<R, D>>,
        hooks: SvcHooks,
        make_shard: F,
    ) -> LeaseService<R, D>
    where
        F: Fn(usize) -> (LeaseServer<R, D>, Box<dyn Storage<R, D> + Send>) + Send + Sync + 'static,
    {
        assert!(cfg.shards >= 1, "a service needs at least one shard");
        // On a single hardware thread, spin-waiting is provably useless:
        // the producer cannot run while this worker spins, so no poll can
        // ever observe a new publish — parking immediately hands the core
        // to whoever has work. Spin only buys latency when another core
        // can publish concurrently.
        let spin = if std::thread::available_parallelism().map_or(1, |n| n.get()) > 1 {
            cfg.spin
        } else {
            0
        };
        let clock: Arc<dyn Clock> = hooks
            .clock
            .clone()
            .unwrap_or_else(|| Arc::new(WallClock::new()));
        let factory: crate::shard::ShardFactory<R, D> = Arc::new(make_shard);
        let restarts: Vec<Arc<AtomicU64>> = (0..cfg.shards)
            .map(|_| Arc::new(AtomicU64::new(0)))
            .collect();
        let mut txs = Vec::with_capacity(cfg.shards);
        let mut ingress = Vec::with_capacity(cfg.shards);
        let mut threads = Vec::with_capacity(cfg.shards);
        for (i, shard_restarts) in restarts.iter().enumerate() {
            let (tx, rx) = bounded(cfg.mailbox.max(1));
            let ing = Arc::new(ShardIngress::new());
            let ctx = ShardCtx {
                index: i as u64,
                nshards: cfg.shards as u64,
                batch: cfg.batch.max(1),
                tick: cfg.wheel_tick,
                idle_wait: cfg.idle_wait,
                spin,
                mailbox: cfg.mailbox.max(1),
                ingress: ing.clone(),
                pin: cfg.pin,
                admission: cfg.admission,
                slow: cfg.slow_shard.and_then(|(s, d)| (s == i).then_some(d)),
                sink: sink.clone(),
                hooks: hooks.clone(),
                clock: clock.clone(),
                factory: factory.clone(),
                restarts: shard_restarts.clone(),
                stash: std::sync::Mutex::new(Vec::new()),
            };
            threads.push(spawn_shard(rx, ctx));
            txs.push(tx);
            ingress.push(ing);
        }
        let shared = Arc::new(HandleShared {
            txs: txs.into(),
            ingress: ingress.into(),
            // Each producer lane gets the mailbox's capacity: the knob
            // keeps its meaning as "how much one submitter may have in
            // flight per shard before backpressure".
            lane_cap: cfg.mailbox.max(1),
        });
        LeaseService {
            handle: SvcHandle::attach(shared),
            threads,
            restarts,
        }
    }

    /// A handle for submitting client traffic.
    pub fn handle(&self) -> SvcHandle<R, D> {
        self.handle.clone()
    }

    /// Snapshots and merges every shard's counters.
    ///
    /// Fails with [`SvcError::ShardDown`] when a shard's worker is gone
    /// (its mailbox is disconnected or it died holding the request) and
    /// with [`SvcError::Timeout`] when a shard is merely too busy to
    /// answer within 5 seconds — callers can tell a dead shard from a
    /// slow one.
    ///
    /// Every shard's `Stats` request is issued before any reply is
    /// awaited, and the replies are collected against one shared
    /// deadline, so the shards snapshot concurrently and a stats call
    /// costs the *slowest* shard's latency, not the sum of all of them.
    /// A shard answers stats only after flushing its pending egress, so a
    /// successful snapshot also means every reply to earlier-submitted
    /// input has left the service.
    pub fn stats(&self) -> Result<SvcStats, SvcError> {
        let shared = &self.handle.shared;
        let mut replies = Vec::with_capacity(shared.txs.len());
        for (i, tx) in shared.txs.iter().enumerate() {
            let (stx, srx) = bounded(1);
            tx.send(ShardMsg::Stats {
                reply: stx,
                barriered: false,
            })
            .map_err(|_| SvcError::ShardDown(i))?;
            shared.ingress[i].bell().ring();
            replies.push(srx);
        }
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        let mut counters = ServerCounters::default();
        let mut per_shard = Vec::with_capacity(replies.len());
        for (i, rx) in replies.into_iter().enumerate() {
            let c = rx
                .recv_timeout(deadline.saturating_duration_since(Instant::now()))
                .map_err(|e| match e {
                    RecvTimeoutError::Timeout => SvcError::Timeout(i),
                    RecvTimeoutError::Disconnected => SvcError::ShardDown(i),
                })?;
            counters.merge(&c);
            per_shard.push(c);
        }
        Ok(SvcStats {
            counters,
            per_shard,
            restarts: self
                .restarts
                .iter()
                .map(|r| r.load(Ordering::Relaxed))
                .collect(),
        })
    }

    /// Stops every shard worker and waits for them.
    pub fn shutdown(mut self) {
        let shared = &self.handle.shared;
        for (i, tx) in shared.txs.iter().enumerate() {
            let _ = tx.send(ShardMsg::Shutdown);
            shared.ingress[i].bell().ring();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::{unbounded, Receiver};
    use lease_core::{Grant, MemStorage, ReqId, ServerConfig};

    type Msg = (ClientId, ToClient<u64, String>);

    struct ChanSink(Sender<Msg>);
    impl ClientSink<u64, String> for ChanSink {
        fn deliver(&self, to: ClientId, msg: ToClient<u64, String>) {
            let _ = self.0.send((to, msg));
        }
    }

    fn service(shards: usize, resources: u64) -> (LeaseService<u64, String>, Receiver<Msg>) {
        let (tx, rx) = unbounded();
        let svc = LeaseService::spawn(
            SvcConfig {
                shards,
                ..SvcConfig::default()
            },
            Arc::new(ChanSink(tx)),
            SvcHooks::default(),
            move |_| {
                let mut store = MemStorage::new();
                for r in 0..resources {
                    store.insert(r, format!("v{r}"));
                }
                (
                    LeaseServer::new(ServerConfig::fixed(Dur::from_secs(10))),
                    Box::new(store) as Box<dyn Storage<u64, String> + Send>,
                )
            },
        );
        (svc, rx)
    }

    fn recv(rx: &Receiver<Msg>) -> Msg {
        rx.recv_timeout(std::time::Duration::from_secs(5))
            .expect("reply")
    }

    #[test]
    fn fetches_are_granted_across_shards() {
        let (svc, rx) = service(4, 16);
        let h = svc.handle();
        for r in 0..16u64 {
            h.send(
                ClientId(0),
                ToServer::Fetch {
                    req: ReqId(r),
                    resource: r,
                    cached: None,
                    also_extend: vec![],
                },
            )
            .unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..16 {
            let (to, msg) = recv(&rx);
            assert_eq!(to, ClientId(0));
            match msg {
                ToClient::Grants { grants, .. } => {
                    for Grant { resource, data, .. } in grants {
                        assert_eq!(data.as_deref(), Some(format!("v{resource}").as_str()));
                        seen.insert(resource);
                    }
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert_eq!(seen.len(), 16);
        let stats = svc.stats().unwrap();
        assert_eq!(stats.counters.fetch_rx, 16);
        assert_eq!(stats.per_shard.len(), 4);
        // The merged view is exactly the sum of the shards.
        let sum: u64 = stats.per_shard.iter().map(|c| c.fetch_rx).sum();
        assert_eq!(sum, stats.counters.fetch_rx);
        svc.shutdown();
    }

    #[test]
    fn batched_extension_splits_into_renewals() {
        let (svc, rx) = service(4, 8);
        let h = svc.handle();
        // Take leases on every resource first, remembering versions.
        let mut versions = std::collections::HashMap::new();
        for r in 0..8u64 {
            h.send(
                ClientId(0),
                ToServer::Fetch {
                    req: ReqId(r),
                    resource: r,
                    cached: None,
                    also_extend: vec![],
                },
            )
            .unwrap();
        }
        for _ in 0..8 {
            let (_, msg) = recv(&rx);
            let ToClient::Grants { grants, .. } = msg else {
                panic!("expected grants, got {msg:?}");
            };
            for g in grants {
                versions.insert(g.resource, g.version);
            }
        }
        // One fetch piggybacking extension of all the others: the router
        // splits the batch across every shard that holds a piece.
        h.send(
            ClientId(0),
            ToServer::Fetch {
                req: ReqId(100),
                resource: 0,
                cached: Some(versions[&0]),
                also_extend: (1..8u64)
                    .map(|r| (r, versions[&r], lease_core::LeaseHandle::NULL))
                    .collect(),
            },
        )
        .unwrap();
        let mut extended = std::collections::HashSet::new();
        while extended.len() < 8 {
            let (_, msg) = recv(&rx);
            match msg {
                ToClient::Grants { req, grants } => {
                    assert_eq!(req, ReqId(100));
                    for g in grants {
                        extended.insert(g.resource);
                    }
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
        let stats = svc.stats().unwrap();
        assert_eq!(stats.counters.fetch_rx, 9);
        assert!(stats.counters.renew_rx >= 1);
        svc.shutdown();
    }

    #[test]
    fn write_approval_round_trips_through_global_write_ids() {
        let (svc, rx) = service(4, 8);
        let h = svc.handle();
        // Client 1 takes a lease on every resource, so every write below
        // needs its approval — wherever the resource's shard is.
        for r in 0..8u64 {
            h.send(
                ClientId(1),
                ToServer::Fetch {
                    req: ReqId(r),
                    resource: r,
                    cached: None,
                    also_extend: vec![],
                },
            )
            .unwrap();
            recv(&rx);
        }
        for r in 0..8u64 {
            h.send(
                ClientId(0),
                ToServer::Write {
                    req: ReqId(100 + r),
                    resource: r,
                    data: format!("w{r}"),
                },
            )
            .unwrap();
            // The approval request reaches client 1 with a global id...
            let (to, msg) = recv(&rx);
            assert_eq!(to, ClientId(1));
            let ToClient::ApprovalRequest {
                write_id, resource, ..
            } = msg
            else {
                panic!("expected approval request, got {msg:?}");
            };
            assert_eq!(resource, r);
            // ...which routes the approval back to the owning shard.
            h.send(ClientId(1), ToServer::Approve { write_id }).unwrap();
            let (to, msg) = recv(&rx);
            assert_eq!(to, ClientId(0));
            let ToClient::WriteDone { resource, .. } = msg else {
                panic!("expected write done, got {msg:?}");
            };
            assert_eq!(resource, r);
        }
        let stats = svc.stats().unwrap();
        assert_eq!(stats.counters.writes_rx, 8);
        assert_eq!(stats.counters.approvals_rx, 8);
        svc.shutdown();
    }

    #[test]
    fn backpressure_is_reported_not_dropped() {
        // A 1-slot mailbox feeding a shard whose sink quickly jams: once
        // the worker blocks delivering a reply and the mailbox is full,
        // try_send must refuse rather than block or drop.
        let (tx, rx) = bounded(1);
        let svc = LeaseService::spawn(
            SvcConfig {
                shards: 1,
                mailbox: 1,
                ..SvcConfig::default()
            },
            Arc::new(ChanSink(tx)),
            SvcHooks::default(),
            move |_| {
                let mut store = MemStorage::new();
                for r in 0..16u64 {
                    store.insert(r, String::new());
                }
                (
                    LeaseServer::new(ServerConfig::fixed(Dur::from_secs(10))),
                    Box::new(store) as Box<dyn Storage<u64, String> + Send>,
                )
            },
        );
        let h = svc.handle();
        let fetch = |r| ToServer::Fetch {
            req: ReqId(r),
            resource: r,
            cached: None,
            also_extend: vec![],
        };
        let mut refused = false;
        for r in 0..1000u64 {
            if h.try_send(ClientId(0), fetch(r)) == Err(SvcError::Backpressure) {
                refused = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(
            refused,
            "a 1-slot mailbox behind a jammed sink never refused"
        );
        // Unjam the sink so the worker can drain and shut down.
        let drainer = std::thread::spawn(move || while rx.recv().is_ok() {});
        svc.shutdown();
        drainer.join().unwrap();
    }

    /// Golden routing vectors: `shard_of` is a persistence contract (see
    /// its docs) — embedders pre-partition durable state by it. If this
    /// test fails, the routing changed; fix the hash, never the vectors.
    #[test]
    fn shard_of_is_pinned() {
        let route = |n: usize| -> Vec<usize> { (0..16u64).map(|r| shard_of(&r, n)).collect() };
        assert_eq!(route(1), vec![0; 16]);
        assert_eq!(
            route(2),
            vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1]
        );
        assert_eq!(
            route(4),
            vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]
        );
        assert_eq!(
            route(8),
            vec![0, 5, 2, 7, 4, 1, 6, 3, 0, 5, 2, 7, 4, 1, 6, 3]
        );
        assert_eq!(shard_of(&0xdead_beefu64, 4), 3);
        assert_eq!(shard_of(&u64::MAX, 8), 3);
        assert_eq!(shard_of(&(1u64 << 40), 8), 0);
    }

    #[test]
    fn send_batch_round_trips_across_shards() {
        let (svc, rx) = service(4, 32);
        let h = svc.handle();
        let mut buf = BatchBuf::new();
        for r in 0..32u64 {
            buf.push(
                ClientId(0),
                ToServer::Fetch {
                    req: ReqId(r),
                    resource: r,
                    cached: None,
                    also_extend: vec![],
                },
            );
        }
        assert_eq!(buf.len(), 32);
        h.send_batch(&mut buf).unwrap();
        assert!(buf.is_empty(), "send_batch must consume the whole buffer");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..32 {
            let (_, msg) = recv(&rx);
            let ToClient::Grants { grants, .. } = msg else {
                panic!("expected grants, got {msg:?}");
            };
            for g in grants {
                seen.insert(g.resource);
            }
        }
        assert_eq!(seen.len(), 32);
        let stats = svc.stats().unwrap();
        assert_eq!(stats.counters.fetch_rx, 32);
        svc.shutdown();
    }

    #[test]
    fn overloaded_shard_sheds_cold_fetches_but_not_renewals() {
        // One slow-ish path to overload: a tiny mailbox plus a jammed
        // sink. With admission control on, drains that see a backlogged
        // mailbox answer cold fetches with Shed instead of granting.
        use lease_core::ErrorReason;
        let (tx, rx) = unbounded();
        let svc = LeaseService::spawn(
            SvcConfig {
                shards: 1,
                mailbox: 8,
                batch: 2,
                admission: Some(AdmissionControl {
                    shed_watermark: 0.25, // >= 2 of 8 slots still queued
                    stats_watermark: 2.0,
                    retry_after: Dur::from_millis(7),
                }),
                slow_shard: Some((0, Dur::from_millis(2))),
                ..SvcConfig::default()
            },
            Arc::new(ChanSink(tx)),
            SvcHooks::default(),
            move |_| {
                let mut store = MemStorage::new();
                for r in 0..64u64 {
                    store.insert(r, String::new());
                }
                (
                    LeaseServer::new(ServerConfig::fixed(Dur::from_secs(10))),
                    Box::new(store) as Box<dyn Storage<u64, String> + Send>,
                )
            },
        );
        let h = svc.handle();
        // Grant one lease while the service is idle (never shed).
        h.send(
            ClientId(0),
            ToServer::Fetch {
                req: ReqId(0),
                resource: 0,
                cached: None,
                also_extend: vec![],
            },
        )
        .unwrap();
        let (_, first) = recv(&rx);
        let ToClient::Grants { grants, .. } = first else {
            panic!("expected idle-path grant, got {first:?}");
        };
        let handle = grants[0].handle;
        let version = grants[0].version;
        // Now pile on cold fetches faster than the 2ms/input slow shard
        // can drain, with renewals of resource 0 interleaved.
        for r in 1..32u64 {
            h.send(
                ClientId(0),
                ToServer::Fetch {
                    req: ReqId(r),
                    resource: 1 + (r % 7),
                    cached: None,
                    also_extend: vec![],
                },
            )
            .unwrap();
            h.send(
                ClientId(0),
                ToServer::Renew {
                    req: ReqId(1000 + r),
                    resources: vec![(0u64, version, handle)],
                },
            )
            .unwrap();
        }
        let mut sheds = 0u64;
        let mut renew_grants = 0u64;
        for _ in 0..62 {
            let (_, msg) = recv(&rx);
            match msg {
                ToClient::Error {
                    reason: ErrorReason::Shed { retry_after },
                    ..
                } => {
                    assert_eq!(retry_after, Dur::from_millis(7));
                    sheds += 1;
                }
                ToClient::Grants { req, .. } if req.0 >= 1000 => renew_grants += 1,
                ToClient::Grants { .. } => {}
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert!(sheds > 0, "a backlogged shard never shed a cold fetch");
        assert_eq!(renew_grants, 31, "renewals must never be shed");
        let stats = svc.stats().unwrap();
        assert_eq!(stats.counters.sheds, sheds);
        svc.shutdown();
    }

    #[test]
    fn expired_deadlines_are_dropped_not_processed() {
        let (svc, rx) = service(1, 8);
        let h = svc.handle();
        // A deadline far in the past: the shard must drop the input.
        h.send_at(
            ClientId(0),
            ToServer::Fetch {
                req: ReqId(1),
                resource: 1,
                cached: None,
                also_extend: vec![],
            },
            Some(Time::ZERO),
        )
        .unwrap();
        // And one with no deadline right behind it, to order the check.
        h.send(
            ClientId(0),
            ToServer::Fetch {
                req: ReqId(2),
                resource: 2,
                cached: None,
                also_extend: vec![],
            },
        )
        .unwrap();
        let (_, msg) = recv(&rx);
        let ToClient::Grants { req, .. } = msg else {
            panic!("expected a grant, got {msg:?}");
        };
        assert_eq!(req, ReqId(2), "the expired fetch must not be answered");
        let stats = svc.stats().unwrap();
        assert_eq!(stats.counters.expired_drops, 1);
        assert_eq!(stats.counters.fetch_rx, 1);
        svc.shutdown();
    }

    #[test]
    fn try_send_batch_at_drops_expired_at_the_door() {
        let (svc, rx) = service(1, 8);
        let h = svc.handle();
        let mut buf = BatchBuf::new();
        buf.push_deadline(
            ClientId(0),
            ToServer::Fetch {
                req: ReqId(1),
                resource: 1,
                cached: None,
                also_extend: vec![],
            },
            Some(Time::from_millis(5)),
        );
        buf.push_deadline(
            ClientId(0),
            ToServer::Fetch {
                req: ReqId(2),
                resource: 2,
                cached: None,
                also_extend: vec![],
            },
            Some(Time::from_secs(1_000_000)),
        );
        let n = h
            .try_send_batch_at(&mut buf, Some(Time::from_millis(10)))
            .unwrap();
        assert_eq!(n, 1, "only the live fetch is submitted");
        assert_eq!(buf.expired, 1, "the dead fetch is tallied, not queued");
        assert!(buf.is_empty());
        let (_, msg) = recv(&rx);
        let ToClient::Grants { req, .. } = msg else {
            panic!("expected a grant, got {msg:?}");
        };
        assert_eq!(req, ReqId(2));
        svc.shutdown();
    }

    #[test]
    fn try_send_batch_returns_refusals_for_resubmission() {
        // A 1-slot mailbox behind a jammed sink: try_send_batch must
        // accept what fits and hand the refused remainder back in the
        // buffer, self-contained, so resubmitting exactly `buf` is
        // enough.
        let (tx, rx) = bounded(1);
        let svc = LeaseService::spawn(
            SvcConfig {
                shards: 1,
                mailbox: 1,
                ..SvcConfig::default()
            },
            Arc::new(ChanSink(tx)),
            SvcHooks::default(),
            move |_| {
                let mut store = MemStorage::new();
                for r in 0..64u64 {
                    store.insert(r, String::new());
                }
                (
                    LeaseServer::new(ServerConfig::fixed(Dur::from_secs(10))),
                    Box::new(store) as Box<dyn Storage<u64, String> + Send>,
                )
            },
        );
        let h = svc.handle();
        let fill = |buf: &mut BatchBuf<u64, String>, lo: u64, hi: u64| {
            for r in lo..hi {
                buf.push(
                    ClientId(0),
                    ToServer::Fetch {
                        req: ReqId(r),
                        resource: r,
                        cached: None,
                        also_extend: vec![],
                    },
                );
            }
        };
        let mut buf = BatchBuf::new();
        let mut accepted = 0u64;
        let mut drained = 0u64;
        let mut refused_once = false;
        while accepted < 64 {
            if buf.is_empty() {
                fill(&mut buf, accepted, 64);
            }
            let before = buf.len();
            let n = h.try_send_batch(&mut buf).unwrap();
            assert_eq!(before, n + buf.len(), "accepted + refused must tally");
            accepted += n as u64;
            if !buf.is_empty() {
                refused_once = true;
                // Drain a reply to make room, then resubmit the refusals.
                if rx.recv_timeout(std::time::Duration::from_secs(5)).is_ok() {
                    drained += 1;
                }
            }
        }
        assert!(refused_once, "a 1-slot mailbox never refused a 64-batch");
        // Keep the sink flowing so the worker can answer stats and drain.
        let drainer = std::thread::spawn(move || {
            let mut got = 0u64;
            while rx.recv().is_ok() {
                got += 1;
            }
            got
        });
        let stats = svc.stats().unwrap();
        assert_eq!(stats.counters.fetch_rx, 64);
        svc.shutdown();
        // Every accepted fetch was answered exactly once.
        assert_eq!(drained + drainer.join().unwrap(), 64);
    }
}
