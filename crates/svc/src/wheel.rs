//! A hierarchical timer wheel (Varghese & Lauck style).
//!
//! The seed runtime kept server timers in a binary heap and found lease
//! expirations by scanning the table index. The wheel replaces both:
//! scheduling and firing are O(1) amortized per timer regardless of how
//! many are pending, which is what lets a shard worker carry millions of
//! leases without its expiry path growing with table size.
//!
//! Semantics:
//!
//! * Timers never fire early. An entry scheduled at `at` is placed on the
//!   tick boundary at or after `at` (round up) and [`TimerWheel::advance`]
//!   only releases ticks fully covered by `now` (round down), so an entry
//!   fires at most one tick late and never before `at` — firing a write
//!   deadline before the blocking lease expired would break the protocol.
//! * `advance` returns the due batch sorted by `(at, key)`, so timers with
//!   distinct deadlines fire in deadline order and ties break by key —
//!   exactly the order a naive scan of an expiry-ordered index produces
//!   (the property test in `tests/wheel_prop.rs` pins this down).
//! * The wheel does not cancel. Callers keep a `key -> latest deadline`
//!   map and drop entries whose deadline no longer matches when they fire
//!   (lazy cancellation); re-scheduling a key simply supersedes it.

use lease_clock::{Dur, Time};

/// Slots per level. With 4 levels the horizon is `64^4` ticks; anything
/// farther out parks in an overflow list and is re-examined on cascade.
const SLOTS: usize = 64;
/// Hierarchy depth.
const LEVELS: usize = 4;
/// log2(SLOTS), for slot arithmetic.
const SLOT_BITS: u32 = 6;

#[derive(Debug, Clone)]
struct Entry<K> {
    /// The requested deadline (not quantized; used for ordering).
    at: Time,
    /// Deadline rounded up to a tick count.
    tick: u64,
    /// Insertion order, the final tie-break.
    seq: u64,
    key: K,
}

/// A hierarchical timer wheel over keys of type `K`.
///
/// `K: Ord` only so the due batch can be deterministically ordered; the
/// wheel itself never compares keys.
#[derive(Debug, Clone)]
pub struct TimerWheel<K> {
    tick_ns: u64,
    /// The last tick fully covered by `advance`.
    now_tick: u64,
    /// `levels[l][s]`: entries due in slot `s` of level `l`. Level 0 slots
    /// span one tick, level `l` slots span `64^l` ticks.
    levels: Vec<Vec<Vec<Entry<K>>>>,
    /// Entries beyond the wheel horizon.
    overflow: Vec<Entry<K>>,
    /// Entries already due when scheduled (or cascaded onto `now_tick`).
    due: Vec<Entry<K>>,
    len: usize,
    /// Entries currently in level 0 — lets `advance` skip whole empty
    /// blocks instead of stepping tick by tick.
    len0: usize,
    seq: u64,
}

impl<K: Ord> TimerWheel<K> {
    /// A wheel with the given tick quantum, started at `now`.
    ///
    /// Panics if `tick` is zero.
    pub fn new(tick: Dur, now: Time) -> TimerWheel<K> {
        assert!(tick.0 > 0, "timer wheel tick must be non-zero");
        TimerWheel {
            tick_ns: tick.0,
            now_tick: now.0 / tick.0,
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            overflow: Vec::new(),
            due: Vec::new(),
            len: 0,
            len0: 0,
            seq: 0,
        }
    }

    /// Pending entries (including already-due ones not yet collected).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `key` to fire once `advance` is called with a time at or
    /// after `at`. Scheduling in the past fires on the next `advance`.
    pub fn schedule(&mut self, at: Time, key: K) {
        let tick = at.0.div_ceil(self.tick_ns);
        let e = Entry {
            at,
            tick,
            seq: self.seq,
            key,
        };
        self.seq += 1;
        self.len += 1;
        self.place(e);
    }

    fn place(&mut self, e: Entry<K>) {
        let delta = e.tick.saturating_sub(self.now_tick);
        if delta == 0 {
            self.due.push(e);
            return;
        }
        for l in 0..LEVELS {
            // Level `l` covers deadlines up to `64^(l+1)` ticks out.
            if delta < 1u64 << (SLOT_BITS * (l as u32 + 1)) {
                let slot = ((e.tick >> (SLOT_BITS * l as u32)) % SLOTS as u64) as usize;
                self.levels[l][slot].push(e);
                if l == 0 {
                    self.len0 += 1;
                }
                return;
            }
        }
        self.overflow.push(e);
    }

    /// Collects every entry due at or before `now`, sorted by
    /// `(at, key, seq)`.
    pub fn advance(&mut self, now: Time) -> Vec<(Time, K)> {
        let target = now.0 / self.tick_ns;
        let mut out = std::mem::take(&mut self.due);
        while self.now_tick < target {
            if self.len == out.len() {
                // Nothing on the wheel: jump straight to the target.
                self.now_tick = target;
                break;
            }
            if self.len0 == 0 {
                // No tick-granular entries: jump a whole block to the
                // next cascade boundary (or to the target).
                let next_wrap = self.now_tick - self.now_tick % SLOTS as u64 + SLOTS as u64;
                if next_wrap > target {
                    self.now_tick = target;
                    break;
                }
                self.now_tick = next_wrap;
                self.cascade(&mut out);
                continue;
            }
            self.now_tick += 1;
            let s0 = (self.now_tick % SLOTS as u64) as usize;
            self.len0 -= self.levels[0][s0].len();
            out.append(&mut self.levels[0][s0]);
            if s0 == 0 {
                self.cascade(&mut out);
            }
        }
        self.len -= out.len();
        out.sort_by(|a, b| (a.at, &a.key, a.seq).cmp(&(b.at, &b.key, b.seq)));
        out.into_iter().map(|e| (e.at, e.key)).collect()
    }

    /// Redistributes the expiring slot of each higher level whose block
    /// boundary `now_tick` just crossed, innermost first.
    fn cascade(&mut self, out: &mut Vec<Entry<K>>) {
        for l in 1..LEVELS {
            let shift = SLOT_BITS * l as u32;
            if !self.now_tick.is_multiple_of(1u64 << shift) {
                return;
            }
            let slot = ((self.now_tick >> shift) % SLOTS as u64) as usize;
            for e in std::mem::take(&mut self.levels[l][slot]) {
                if e.tick <= self.now_tick {
                    out.push(e);
                } else {
                    self.place(e);
                }
            }
        }
        // Every level wrapped: overflow entries may now be in range.
        for e in std::mem::take(&mut self.overflow) {
            if e.tick <= self.now_tick {
                out.push(e);
            } else {
                self.place(e);
            }
        }
    }

    /// A lower bound on when the next entry fires: exact within the
    /// innermost level, otherwise the next cascade boundary (the caller
    /// wakes, cascades, and asks again). `None` when nothing is pending.
    pub fn next_deadline(&self) -> Option<Time> {
        if let Some(min) = self.due.iter().map(|e| e.at).min() {
            return Some(min);
        }
        if self.len == 0 {
            return None;
        }
        for off in 1..SLOTS as u64 {
            let slot = ((self.now_tick + off) % SLOTS as u64) as usize;
            if let Some(min) = self.levels[0][slot].iter().map(|e| e.at).min() {
                return Some(min);
            }
        }
        // Beyond level 0: wake at the next level-0 wrap and re-check.
        let next_wrap = (self.now_tick - self.now_tick % SLOTS as u64) + SLOTS as u64;
        Some(Time(next_wrap.saturating_mul(self.tick_ns)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel() -> TimerWheel<u32> {
        TimerWheel::new(Dur(1000), Time::ZERO)
    }

    #[test]
    fn fires_in_deadline_order_never_early() {
        let mut w = wheel();
        w.schedule(Time(5500), 1);
        w.schedule(Time(2500), 2);
        w.schedule(Time(2500), 0);
        assert!(w.advance(Time(2499)).is_empty());
        // 2500 rounds up to tick 3: not due until now covers tick 3.
        assert!(w.advance(Time(2999)).is_empty());
        assert_eq!(
            w.advance(Time(3000)),
            vec![(Time(2500), 0), (Time(2500), 2)]
        );
        assert_eq!(w.advance(Time(10_000)), vec![(Time(5500), 1)]);
        assert!(w.is_empty());
    }

    #[test]
    fn past_deadlines_fire_immediately() {
        let mut w = wheel();
        let _ = w.advance(Time(50_000));
        w.schedule(Time(10), 9);
        assert_eq!(w.advance(Time(50_000)), vec![(Time(10), 9)]);
    }

    #[test]
    fn cascades_across_levels_and_overflow() {
        let mut w = wheel();
        // One entry per level, plus one past the horizon.
        let deadlines = [
            Time(63 * 1000),                  // level 0
            Time(300 * 1000),                 // level 1
            Time(5000 * 1000),                // level 2
            Time(300_000 * 1000),             // level 3
            Time(64u64.pow(4) * 1000 + 1000), // overflow
        ];
        for (i, at) in deadlines.iter().enumerate() {
            w.schedule(*at, i as u32);
        }
        let mut fired = Vec::new();
        let mut now = Time::ZERO;
        while !w.is_empty() {
            now = w.next_deadline().expect("pending");
            fired.extend(w.advance(now));
        }
        assert_eq!(
            fired,
            deadlines
                .iter()
                .copied()
                .enumerate()
                .map(|(i, at)| (at, i as u32))
                .collect::<Vec<_>>()
        );
        assert!(now >= deadlines[4]);
    }

    #[test]
    fn next_deadline_is_a_usable_wakeup_bound() {
        let mut w = wheel();
        assert_eq!(w.next_deadline(), None);
        w.schedule(Time(7300), 1);
        // Exact when the entry sits in level 0.
        assert_eq!(w.next_deadline(), Some(Time(7300)));
        w.schedule(Time(1_000_000), 2);
        let _ = w.advance(Time(8000));
        // Far entry: bound is the next wrap, never past the deadline.
        let d = w.next_deadline().unwrap();
        assert!(d <= Time(1_000_000));
    }

    #[test]
    fn many_random_timers_fire_exactly_once_in_order() {
        // Cheap LCG so the test is deterministic without dev-deps.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut w = wheel();
        let mut expect = Vec::new();
        for i in 0..5000u32 {
            let at = Time(next() % 2_000_000);
            w.schedule(at, i);
            expect.push((at, i));
        }
        let mut fired = Vec::new();
        let mut now = 0u64;
        while !w.is_empty() {
            now += 1 + next() % 100_000;
            fired.extend(w.advance(Time(now)));
        }
        expect.sort();
        assert_eq!(fired.len(), expect.len());
        assert_eq!(fired, expect);
    }
}
