//! Thread-per-core egress: per-(shard→client) SPSC reply lanes with
//! coalesced doorbell wakeups.
//!
//! PR 8 made ingress lock-free (every producer owns one bounded SPSC
//! ring per shard); this module is the mirror image for the reply path.
//! Each shard worker owns one bounded SPSC ring **per client it has
//! ever replied to** — the worker is the single producer, the client
//! thread the single consumer — so a steady-state reply crosses zero
//! locks between the shard's state machine and the client's cache:
//!
//! * The shard's per-wakeup outbox flush groups consecutive same-client
//!   runs (replies arrive heavily run-clustered: one client's batch
//!   drains in order) and publishes each run with **one `Release`
//!   store** via [`lease_core::ring::Producer::push_from`].
//! * Each touched client's [`lease_core::ring::Doorbell`] is rung
//!   **once per flush** — coalesced, not per message. A flush that
//!   answers a 64-op batch for one client costs one ring; if the client
//!   is mid-drain or spinning, that ring is two uncontended atomics and
//!   no futex at all (the wakes-per-op collapse `svc_load` measures).
//! * Client threads drain their lanes round-robin through
//!   [`lease_core::ring::Lanes`] with the same ticket-before-final-poll
//!   spin-then-park loop shard workers use, so a publish-then-ring can
//!   never slip between a client's last look and its sleep.
//!
//! Lanes are created lazily and adopted through the same
//! [`Inbox`] registration machinery the ingress direction uses — a
//! shard's first reply to a client registers a fresh lane the client
//! adopts on its next wakeup. The handshake with the service is
//! [`ClientSink::attach_worker`]: each worker asks the sink for its
//! private [`EgressWorker`] at thread start (ring producers are
//! deliberately `!Sync`, so they cannot live behind the shared sink
//! `Arc`), and transports that must stay on the shared path — chaos
//! dice, replica fences — simply decline.

use std::sync::{Arc, Mutex};

use lease_core::ring::{spsc, Inbox, Lanes, Producer};
use lease_core::{ClientId, ToClient};

use crate::service::{ClientSink, WorkerSink};

/// The client-side receiving half for one client: its adopted egress
/// lanes (one per shard worker that has replied to it) plus the
/// doorbell to park on. Create exactly one per client via
/// [`Egress::rx`] and give it to the client's thread; dropping it
/// closes the client's inbox, so shard workers observe `Closed` and
/// drop further replies instead of stalling on a full lane nobody
/// drains.
pub type EgressRx<R, D> = Lanes<ToClient<R, D>>;

/// One client's registration hub in the shared registry.
type ClientInbox<R, D> = Arc<Inbox<ToClient<R, D>>>;

/// The shared egress registry: one [`Inbox`] per client, handed to the
/// sink side ([`EgressWorker`]s publish into it) and the client side
/// ([`EgressRx`]s drain from it). Cheaply cloneable.
pub struct Egress<R, D> {
    inboxes: Arc<[ClientInbox<R, D>]>,
    lane_cap: usize,
}

impl<R, D> Clone for Egress<R, D> {
    fn clone(&self) -> Self {
        Egress {
            inboxes: Arc::clone(&self.inboxes),
            lane_cap: self.lane_cap,
        }
    }
}

impl<R: Send + 'static, D: Send + 'static> Egress<R, D> {
    /// A registry for `clients` clients, each lane holding `lane_cap`
    /// replies (rounded up to a power of two). A full lane briefly
    /// stalls the producing shard worker (ring-then-yield until the
    /// client drains or disconnects), so size it to the largest burst a
    /// single flush can address to one client — the service's mailbox
    /// capacity is the natural choice.
    pub fn new(clients: usize, lane_cap: usize) -> Egress<R, D> {
        Egress {
            inboxes: (0..clients).map(|_| Arc::new(Inbox::new())).collect(),
            lane_cap,
        }
    }

    /// How many clients the registry was built for.
    pub fn clients(&self) -> usize {
        self.inboxes.len()
    }

    /// The receiving half for client `c`. Call exactly once per client
    /// (two `EgressRx` over one inbox would split its lanes between
    /// them arbitrarily).
    pub fn rx(&self, c: usize) -> EgressRx<R, D> {
        Lanes::new(Arc::clone(&self.inboxes[c]))
    }

    /// Client `c`'s inbox — for transports that keep a side channel
    /// (cold/chaos paths) and must ring the client's one doorbell after
    /// publishing to it.
    pub fn inbox(&self, c: usize) -> Arc<Inbox<ToClient<R, D>>> {
        Arc::clone(&self.inboxes[c])
    }

    /// A private sending half for one shard worker (the
    /// [`ClientSink::attach_worker`] handshake).
    pub fn worker(&self) -> EgressWorker<R, D> {
        EgressWorker {
            egress: self.clone(),
            producers: (0..self.inboxes.len()).map(|_| None).collect(),
            touched: vec![false; self.inboxes.len()],
            rung: Vec::with_capacity(self.inboxes.len()),
            run: Vec::new(),
        }
    }

    /// Total futex-backed wakeups issued across every client doorbell —
    /// rings that found the client parked (see
    /// [`lease_core::ring::Doorbell::wakes`]). `wakes() / ops` is the
    /// wakes-per-op figure the benchmarks record; coalescing and client
    /// spin push it far below one.
    pub fn wakes(&self) -> u64 {
        self.inboxes.iter().map(|i| i.bell().wakes()).sum()
    }
}

/// One shard worker's private egress half: the per-client ring
/// producers (created lazily on first reply to each client) and the
/// flush's coalescing state. `Send` but not `Sync` — exactly one worker
/// thread owns it.
pub struct EgressWorker<R, D> {
    egress: Egress<R, D>,
    producers: Vec<Option<Producer<ToClient<R, D>>>>,
    /// Per-client "this flush touched you" flags, cleared by
    /// [`EgressWorker::flush_wakes`].
    touched: Vec<bool>,
    /// The touched client ids of the current flush.
    rung: Vec<usize>,
    /// Reusable same-client run buffer for
    /// [`EgressWorker::deliver_batch`].
    run: Vec<ToClient<R, D>>,
}

impl<R: Send + 'static, D: Send + 'static> EgressWorker<R, D> {
    /// Publishes one same-client run (draining `run`) with one
    /// `Release` store, creating and registering the lane on first use,
    /// and marks the client for the flush's coalesced wakeup.
    ///
    /// A full lane rings the client's bell immediately (it may be
    /// parked behind a backlog) and yields until space frees; a closed
    /// lane — the client is gone — drops the run.
    pub fn push_run(&mut self, to: ClientId, run: &mut Vec<ToClient<R, D>>) {
        let c = to.0 as usize;
        if c >= self.producers.len() {
            debug_assert!(false, "egress to unknown client {c}");
            run.clear();
            return;
        }
        let inbox = &self.egress.inboxes[c];
        let p = self.producers[c].get_or_insert_with(|| {
            let (tx, rx) = spsc(self.egress.lane_cap);
            inbox.register(rx);
            tx
        });
        while !run.is_empty() {
            p.push_from(run);
            if run.is_empty() {
                break;
            }
            if p.is_closed() {
                // The client dropped its EgressRx (or never will adopt,
                // because its inbox closed): the replies die here, like
                // a send to a disconnected channel.
                run.clear();
                return;
            }
            // Lane full: this is backpressure from a slow client. Wake
            // it *now* — it may be parked with a full lane it polled
            // before we published — then let it run.
            inbox.bell().ring();
            std::thread::yield_now();
        }
        if !self.touched[c] {
            self.touched[c] = true;
            self.rung.push(c);
        }
    }

    /// Rings each client touched since the last call — once per client,
    /// however many runs the flush pushed at it.
    pub fn flush_wakes(&mut self) {
        for c in self.rung.drain(..) {
            self.touched[c] = false;
            self.egress.inboxes[c].bell().ring();
        }
    }

    /// One whole flush: groups consecutive same-client runs, publishes
    /// each with one `Release` store, then rings each touched client
    /// once. Allocation-free once the lanes and scratch buffers are
    /// warm (pinned by `zero_alloc_egress`).
    pub fn deliver_batch(&mut self, msgs: &mut Vec<(ClientId, ToClient<R, D>)>) {
        let mut run = std::mem::take(&mut self.run);
        let mut it = msgs.drain(..).peekable();
        while let Some((to, msg)) = it.next() {
            run.push(msg);
            while let Some((next, _)) = it.peek() {
                if *next != to {
                    break;
                }
                run.push(it.next().expect("peeked").1);
            }
            self.push_run(to, &mut run);
        }
        drop(it);
        self.run = run;
        self.flush_wakes();
    }
}

impl<R: Send + 'static, D: Send + 'static> WorkerSink<R, D> for EgressWorker<R, D> {
    fn deliver_batch(&mut self, msgs: &mut Vec<(ClientId, ToClient<R, D>)>) {
        EgressWorker::deliver_batch(self, msgs);
    }
}

/// A ready-made [`ClientSink`] over an [`Egress`] registry for
/// embedders without a transport of their own (benchmarks, tests):
/// every shard worker gets its own [`EgressWorker`] through the
/// [`ClientSink::attach_worker`] handshake, and the rare shared-path
/// call (a custom sink layered on top, a cold single delivery) goes
/// through one mutex-guarded fallback worker.
pub struct EgressSink<R, D> {
    egress: Egress<R, D>,
    cold: Mutex<EgressWorker<R, D>>,
}

impl<R: Send + 'static, D: Send + 'static> EgressSink<R, D> {
    /// Wraps a registry.
    pub fn new(egress: Egress<R, D>) -> EgressSink<R, D> {
        let cold = Mutex::new(egress.worker());
        EgressSink { egress, cold }
    }
}

impl<R: Send + 'static, D: Send + 'static> ClientSink<R, D> for EgressSink<R, D> {
    fn deliver(&self, to: ClientId, msg: ToClient<R, D>) {
        let mut w = self.cold.lock().expect("egress cold worker poisoned");
        let mut one = vec![msg];
        w.push_run(to, &mut one);
        w.flush_wakes();
    }

    fn deliver_batch(&self, msgs: &mut Vec<(ClientId, ToClient<R, D>)>) {
        let mut w = self.cold.lock().expect("egress cold worker poisoned");
        w.deliver_batch(msgs);
    }

    fn attach_worker(&self) -> Option<Box<dyn WorkerSink<R, D>>> {
        Some(Box::new(self.egress.worker()))
    }
}
