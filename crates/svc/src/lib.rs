#![warn(missing_docs)]

//! A sharded, batched, timer-wheel-driven lease service runtime.
//!
//! The paper's server is one lease table probed on every read, write, and
//! expiry — fine for the 1989 V file server, but a single mailbox in front
//! of a single state machine is the bottleneck of the real-time deployment
//! at scale. This crate turns the *unmodified* sans-IO `lease-core` server
//! into a horizontally partitioned service component:
//!
//! * **Sharding** — resources are partitioned by key hash ([`shard_of`])
//!   across N single-threaded shard workers, each owning its slice of the
//!   lease table behind a bounded crossbeam mailbox. Distinct files never
//!   contend; the paper's per-datum protocol makes the partition exact.
//! * **Batching** — batched end to end. Ingress: [`SvcHandle::send_batch`]
//!   routes a whole [`BatchBuf`] in one pass and submits one locked
//!   enqueue per touched shard. Worker: a shard drains its mailbox in
//!   batches, so one wakeup amortizes grant/extend/approval processing
//!   and timer maintenance. Egress: replies accumulate across the whole
//!   wakeup and leave through a single [`ClientSink::deliver_batch`] call.
//! * **Adaptive parking** — a loaded shard spins briefly
//!   (`SvcConfig::spin` polls) for its next batch before falling back to
//!   a timed park on the mailbox condvar, keeping the hot path off the
//!   futex without burning an idle core.
//! * **Timer wheel** — lease expirations and write deadlines are driven by
//!   a hierarchical [`TimerWheel`] (O(1) amortized per timer) instead of a
//!   heap or a table scan; the table's own expiry index is consulted only
//!   to arm a single `Prune` entry at the earliest expiry.
//! * **Cross-shard coordination** — the [`SvcHandle`] router splits
//!   batched extensions along shard boundaries, fans approval requests out
//!   with service-global write ids, and routes each approval back to the
//!   shard that is collecting it (the §3.1 multicast approval path,
//!   partitioned).
//! * **Backpressure** — mailboxes are bounded; [`SvcHandle::send`] blocks
//!   and [`SvcHandle::try_send`] refuses when a shard is saturated.
//! * **Admission control** — beyond transport backpressure, a shard over
//!   its [`AdmissionControl`] watermark sheds cold fetches with an
//!   explicit `Shed { retry_after }` reply (renewals, writes, and
//!   approvals keep flowing), feeds its occupancy to the core's
//!   adaptive-term controller, and drops inputs whose propagated op
//!   deadline has already passed.
//! * **Supervision** — each shard worker runs under a supervisor that
//!   catches panics and restarts the shard through §5 MaxTerm recovery on
//!   the *same* mailbox; restart epochs are folded into global write ids
//!   so approvals addressed to a dead incarnation are dropped, not
//!   misapplied ([`SvcHandle::kill_shard`] injects such a crash on
//!   purpose).
//! * **Chaos** — seeded, deterministic fault plans ([`chaos::FaultPlan`])
//!   describe shard kills, message drop/delay/duplication, link cuts, and
//!   clock faults for transports and harnesses to replay.
//!
//! Protocol semantics are untouched: each shard runs the same
//! `LeaseServer` the simulator and `lease-rt` run, so every consistency
//! argument (and the oracle test suites) carries over shard by shard.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use lease_clock::Dur;
//! use lease_core::{
//!     ClientId, LeaseServer, MemStorage, ReqId, ServerConfig, Storage, ToClient, ToServer,
//! };
//! use lease_svc::{ClientSink, LeaseService, SvcConfig, SvcHooks};
//!
//! // Replies go wherever the embedder wants; here, a channel.
//! let (tx, rx) = crossbeam::channel::unbounded();
//! struct Sink(crossbeam::channel::Sender<(ClientId, ToClient<u64, String>)>);
//! impl ClientSink<u64, String> for Sink {
//!     fn deliver(&self, to: ClientId, msg: ToClient<u64, String>) {
//!         let _ = self.0.send((to, msg));
//!     }
//! }
//!
//! let svc = LeaseService::spawn(
//!     SvcConfig { shards: 4, ..SvcConfig::default() },
//!     Arc::new(Sink(tx)),
//!     SvcHooks::default(),
//!     |_shard| {
//!         let mut store = MemStorage::new();
//!         store.insert(7u64, "contents".to_string());
//!         (
//!             LeaseServer::new(ServerConfig::fixed(Dur::from_secs(10))),
//!             Box::new(store) as Box<dyn Storage<u64, String> + Send>,
//!         )
//!     },
//! );
//! let h = svc.handle();
//! h.send(ClientId(0), ToServer::Fetch {
//!     req: ReqId(1), resource: 7, cached: None, also_extend: vec![],
//! }).unwrap();
//! let (to, reply) = rx.recv().unwrap();
//! assert_eq!(to, ClientId(0));
//! assert!(matches!(reply, ToClient::Grants { .. }));
//! svc.shutdown();
//! ```

pub mod chaos;
pub mod egress;
pub mod service;
mod shard;

/// The hierarchical timer wheel, re-exported from `lease_core`.
///
/// The wheel moved down into dep-free `lease-core` so the slab lease
/// table could delegate expiry ordering to it; this alias keeps the
/// `lease_svc::wheel` path (and every import in the shard worker and the
/// wheel property tests) working unchanged.
pub use lease_core::wheel;

pub use chaos::{
    Arrivals, Delivery, FaultPlan, LinkChaos, OverloadPlan, OVERLOAD_STREAM, REPLICA_STREAM,
};
pub use egress::{Egress, EgressRx, EgressSink, EgressWorker};
pub use service::{
    shard_of, AdmissionControl, BatchBuf, ClientSink, LeaseService, SvcConfig, SvcError, SvcHandle,
    SvcHooks, SvcStats, WorkerSink,
};
pub use shard::INJECTED_KILL;
pub use wheel::TimerWheel;
