//! Deterministic, seeded fault plans for chaos-testing the runtime.
//!
//! The simulator (`lease-vsys`) gets determinism for free — one event
//! queue, one RNG. The real-time runtime does not, so this module makes
//! its fault *decisions* deterministic even though thread interleavings
//! are not: every per-link coin flip is a pure function of `(seed, stream,
//! counter)`, kills fire at plan-relative instants, and clock faults are
//! `lease-clock` models applied to whole hosts. Re-running a seed replays
//! the same fault pattern modulo scheduling noise, and sweeping seeds
//! explores distinct patterns — the rt analogue of the simulator's seeded
//! fault plans, generalizing the boolean cut switches the transport
//! started with.
//!
//! The plan is deliberately transport-agnostic: `lease-rt` consults
//! [`LinkChaos`] on every client↔server delivery and a driver thread
//! replays [`FaultPlan::kills`] through
//! [`SvcHandle::kill_shard`](crate::SvcHandle::kill_shard), while the
//! clock models ride into the service via
//! [`SvcHooks::clock`](crate::SvcHooks) and into clients via their clock
//! parameter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;

use lease_clock::{ClockModel, Dur};

use crate::shard::INJECTED_KILL;

/// A seeded schedule of faults to inject into one run.
///
/// All instants are relative to the start of the run. The default plan is
/// fault-free; builders add one fault class at a time.
///
/// Faults come at two granularities:
///
/// * **shard-level** ([`FaultPlan::kill_shard`]) — panic one shard worker
///   inside a single server; the supervisor restarts it through §5
///   MaxTerm recovery.
/// * **host-level** ([`FaultPlan::kill_replica`], [`FaultPlan::cut_replica`],
///   [`FaultPlan::with_replica_clock`]) — crash, isolate, or clock-skew a
///   whole grantor replica in a replicated (`lease-quorum`) topology.
///   Replica indices live in their own namespace; they are **not** shard
///   ids.
///
/// # Examples
///
/// ```
/// use lease_clock::Dur;
/// use lease_svc::chaos::FaultPlan;
///
/// let plan = FaultPlan::new(42)
///     .kill(Dur::from_millis(300), 0)
///     .drop_messages(0.05)
///     .delay_messages(Dur::from_millis(10));
/// let link = plan.link(7);
/// // Deterministic: the same seed and stream give the same decisions.
/// assert_eq!(link.next(), FaultPlan::new(42).drop_messages(0.05)
///     .delay_messages(Dur::from_millis(10)).link(7).next());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Root seed; every derived decision stream mixes it in.
    pub seed: u64,
    /// `(when, shard)`: panic shard `shard`'s worker at `when`.
    pub kills: Vec<(Dur, usize)>,
    /// Probability a delivered message is silently dropped.
    pub drop_prob: f64,
    /// Probability a delivered message is delivered twice.
    pub dup_prob: f64,
    /// Extra latency per delivery, uniform in `[0, delay_max]`.
    pub delay_max: Dur,
    /// `(from, until, client)`: windows in which `client`'s link is cut in
    /// both directions — the generalization of the boolean cut switch.
    pub cuts: Vec<(Dur, Dur, usize)>,
    /// Clock model the server's shards read through, if any.
    pub server_clock: Option<ClockModel>,
    /// Per-client clock models as `(client index, model)` pairs.
    pub client_clocks: Vec<(usize, ClockModel)>,
    /// Open-loop overload scenario driving the load generator, if any.
    pub overload: Option<OverloadPlan>,
    /// `(shard, per_input)`: make one shard worker sleep `per_input`
    /// after every processed input, bounding its throughput — the
    /// slow-shard injection behind
    /// [`SvcConfig::slow_shard`](crate::SvcConfig).
    pub slow_shard: Option<(usize, Dur)>,
    /// `(when, replica)`: crash-restart grantor replica `replica` at
    /// `when`. Host-level — distinct from [`FaultPlan::kills`], whose
    /// indices name shards *within* one server.
    pub replica_kills: Vec<(Dur, usize)>,
    /// `(from, until, replica)`: windows in which `replica` is partitioned
    /// from every peer (and from clients routed to it).
    pub replica_cuts: Vec<(Dur, Dur, usize)>,
    /// Per-replica clock models as `(replica index, model)` pairs.
    pub replica_clocks: Vec<(usize, ClockModel)>,
}

/// High bit namespace for replica↔replica decision streams, so quorum
/// traffic never collides with the client link streams (`client` and
/// `client | 1<<32`). See [`FaultPlan::replica_link`].
pub const REPLICA_STREAM: u64 = 1 << 33;

/// High bit namespace for open-loop arrival streams, independent of every
/// link stream. See [`FaultPlan::arrivals`].
pub const OVERLOAD_STREAM: u64 = 1 << 34;

/// An open-loop overload scenario: a load generator submits ops with
/// Poisson (exponential-gap) arrivals at `base_rate` ops/sec per stream,
/// surging to `burst_rate` during `[burst_at, burst_at + burst_len)`.
///
/// Open loop is the point: unlike a closed-loop generator, arrivals do
/// **not** slow down when the server does, so queues genuinely build and
/// shedding/pacing behaviour is observable. With `herd` set, every
/// arrival stream additionally aligns one arrival at exactly `burst_at`
/// — a thundering herd on top of the rate surge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadPlan {
    /// Steady-state arrival rate per stream, ops/sec.
    pub base_rate: f64,
    /// Arrival rate during the burst window, ops/sec.
    pub burst_rate: f64,
    /// Burst window start, relative to run start.
    pub burst_at: Dur,
    /// Burst window length.
    pub burst_len: Dur,
    /// Align one arrival of every stream at exactly `burst_at`.
    pub herd: bool,
}

impl OverloadPlan {
    /// The arrival rate in force at `elapsed` since run start.
    pub fn rate_at(&self, elapsed: Dur) -> f64 {
        if elapsed >= self.burst_at && elapsed < self.burst_at + self.burst_len {
            self.burst_rate
        } else {
            self.base_rate
        }
    }
}

/// One deterministic open-loop Poisson arrival stream (see
/// [`FaultPlan::arrivals`]): arrival `k` of stream `s` under seed `q` is
/// the same instant in every run.
#[derive(Debug)]
pub struct Arrivals {
    key: u64,
    counter: u64,
    plan: OverloadPlan,
    at: Dur,
    herded: bool,
}

impl Arrivals {
    /// The next arrival instant (relative to run start). Monotone
    /// non-decreasing; gaps are exponential with the rate in force at the
    /// previous arrival.
    pub fn next_at(&mut self) -> Dur {
        let rate = self.plan.rate_at(self.at);
        let u = unit(mix(self.key ^ self.counter));
        self.counter += 1;
        let gap = if rate > 0.0 {
            // Exponential inter-arrival gap; (1 - u) keeps ln away from 0.
            Dur::from_secs_f64((-(1.0 - u).ln() / rate).min(3600.0))
        } else {
            Dur::from_secs(3600)
        };
        let mut next = self.at + gap;
        // Thundering herd: the first gap that would step across the burst
        // start is clamped to it, so every stream fires together there.
        if self.plan.herd && !self.herded && self.at < self.plan.burst_at {
            self.herded = next >= self.plan.burst_at;
            if self.herded {
                next = self.plan.burst_at;
            }
        }
        self.at = next;
        next
    }
}

impl FaultPlan {
    /// A fault-free plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds a shard kill at `when`.
    ///
    /// Alias of [`FaultPlan::kill_shard`], kept for existing plans; the
    /// index names a *shard within one server*, not a replica.
    pub fn kill(self, when: Dur, shard: usize) -> FaultPlan {
        self.kill_shard(when, shard)
    }

    /// Adds a shard-level kill at `when`: panic the worker that owns
    /// shard `shard` inside a single server. For crashing a whole grantor
    /// replica, use [`FaultPlan::kill_replica`].
    pub fn kill_shard(mut self, when: Dur, shard: usize) -> FaultPlan {
        self.kills.push((when, shard));
        self
    }

    /// Adds a host-level kill at `when`: crash-restart grantor replica
    /// `replica` (its quorum node forgets all volatile ballot state and
    /// must wait out MaxTerm before re-promising; its service shards die
    /// with it).
    pub fn kill_replica(mut self, when: Dur, replica: usize) -> FaultPlan {
        self.replica_kills.push((when, replica));
        self
    }

    /// Partitions replica `replica` from all peers during `[from, until)`.
    pub fn cut_replica(mut self, from: Dur, until: Dur, replica: usize) -> FaultPlan {
        self.replica_cuts.push((from, until, replica));
        self
    }

    /// Subjects grantor replica `replica` to `model`.
    pub fn with_replica_clock(mut self, replica: usize, model: ClockModel) -> FaultPlan {
        self.replica_clocks.push((replica, model));
        self
    }

    /// Sets the message-drop probability.
    pub fn drop_messages(mut self, p: f64) -> FaultPlan {
        self.drop_prob = p;
        self
    }

    /// Sets the message-duplication probability.
    pub fn duplicate_messages(mut self, p: f64) -> FaultPlan {
        self.dup_prob = p;
        self
    }

    /// Sets the maximum injected delivery delay.
    pub fn delay_messages(mut self, max: Dur) -> FaultPlan {
        self.delay_max = max;
        self
    }

    /// Cuts `client`'s link (both directions) during `[from, until)`.
    pub fn cut(mut self, from: Dur, until: Dur, client: usize) -> FaultPlan {
        self.cuts.push((from, until, client));
        self
    }

    /// Installs an open-loop overload scenario (see [`OverloadPlan`]).
    pub fn with_overload(mut self, plan: OverloadPlan) -> FaultPlan {
        self.overload = Some(plan);
        self
    }

    /// Makes shard `shard` sleep `per_input` after every processed input,
    /// bounding its throughput to roughly `1 / per_input` inputs/sec.
    pub fn with_slow_shard(mut self, shard: usize, per_input: Dur) -> FaultPlan {
        self.slow_shard = Some((shard, per_input));
        self
    }

    /// The deterministic open-loop arrival schedule for load stream
    /// `stream` (one per generator client), or `None` when the plan has
    /// no overload scenario. Distinct streams draw independent Poisson
    /// gaps from the same seed.
    pub fn arrivals(&self, stream: u64) -> Option<Arrivals> {
        self.overload.map(|plan| Arrivals {
            key: mix(self.seed ^ mix(stream ^ OVERLOAD_STREAM)),
            counter: 0,
            plan,
            at: Dur::ZERO,
            herded: false,
        })
    }

    /// Subjects the server's shards to `model`.
    pub fn with_server_clock(mut self, model: ClockModel) -> FaultPlan {
        self.server_clock = Some(model);
        self
    }

    /// Subjects client `client` to `model`.
    pub fn with_client_clock(mut self, client: usize, model: ClockModel) -> FaultPlan {
        self.client_clocks.push((client, model));
        self
    }

    /// Whether the plan injects any per-message faults at all (fast path
    /// check for transports).
    pub fn perturbs_messages(&self) -> bool {
        self.drop_prob > 0.0 || self.dup_prob > 0.0 || !self.delay_max.is_zero()
    }

    /// The deterministic fault decider for one link. `stream` names the
    /// link (e.g. `client_index` for server→client, `client_index | HI`
    /// for client→server); distinct streams draw independent decisions.
    pub fn link(&self, stream: u64) -> LinkChaos {
        LinkChaos {
            drop_prob: self.drop_prob,
            dup_prob: self.dup_prob,
            delay_max: self.delay_max,
            key: mix(self.seed ^ mix(stream)),
            counter: AtomicU64::new(0),
        }
    }

    /// Whether some cut window covers `client` at `elapsed` since start.
    pub fn cut_active(&self, client: usize, elapsed: Dur) -> bool {
        self.cuts
            .iter()
            .any(|&(from, until, c)| c == client && elapsed >= from && elapsed < until)
    }

    /// The clock model for client `client`, if the plan sets one.
    pub fn client_clock(&self, client: usize) -> Option<ClockModel> {
        self.client_clocks
            .iter()
            .find(|(c, _)| *c == client)
            .map(|(_, m)| m.clone())
    }

    /// Whether some replica-cut window covers `replica` at `elapsed`.
    /// Half-open like [`FaultPlan::cut_active`]: a link between replicas
    /// `i` and `j` is severed while *either* endpoint is cut.
    pub fn replica_cut_active(&self, replica: usize, elapsed: Dur) -> bool {
        self.replica_cuts
            .iter()
            .any(|&(from, until, r)| r == replica && elapsed >= from && elapsed < until)
    }

    /// The clock model for grantor replica `replica`, if the plan sets one.
    pub fn replica_clock(&self, replica: usize) -> Option<ClockModel> {
        self.replica_clocks
            .iter()
            .find(|(r, _)| *r == replica)
            .map(|(_, m)| m.clone())
    }

    /// The deterministic fault decider for the directed replica link
    /// `from → to`, in the [`REPLICA_STREAM`] namespace. Direction matters:
    /// `replica_link(0, 1)` and `replica_link(1, 0)` draw independently.
    pub fn replica_link(&self, from: usize, to: usize) -> LinkChaos {
        self.link(REPLICA_STREAM | ((from as u64) << 16) | to as u64)
    }
}

/// What a transport should do with one message on a chaotic link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Drop the message silently.
    Drop,
    /// Deliver after `delay`, `copies` times (1 = normal, 2 = duplicated).
    Deliver {
        /// Injected extra latency.
        delay: Dur,
        /// How many copies to deliver.
        copies: u32,
    },
}

/// Deterministic per-link fault dice: decision `k` on stream `s` of seed
/// `q` is the same in every run, regardless of thread interleaving on
/// *other* links.
#[derive(Debug)]
pub struct LinkChaos {
    drop_prob: f64,
    dup_prob: f64,
    delay_max: Dur,
    key: u64,
    counter: AtomicU64,
}

impl LinkChaos {
    /// Decides the fate of the next message on this link.
    pub fn next(&self) -> Delivery {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        // Independent sub-draws for each decision from one counter value.
        if unit(mix(self.key ^ n.wrapping_mul(3))) < self.drop_prob {
            return Delivery::Drop;
        }
        let copies = if unit(mix(self.key ^ n.wrapping_mul(3).wrapping_add(1))) < self.dup_prob {
            2
        } else {
            1
        };
        let delay = if self.delay_max.is_zero() {
            Dur::ZERO
        } else {
            self.delay_max
                .mul_f64(unit(mix(self.key ^ n.wrapping_mul(3).wrapping_add(2))))
        };
        Delivery::Deliver { delay, copies }
    }
}

/// SplitMix64 finalizer.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from 64 random bits.
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Installs a process-wide panic hook that swallows the panics
/// [`SvcHandle::kill_shard`](crate::SvcHandle::kill_shard) injects —
/// they are expected and supervised, and a chaos sweep would otherwise
/// bury real output under backtraces. All other panics still reach the
/// previous hook. Safe to call repeatedly; only the first call installs.
pub fn silence_injected_kills() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains(INJECTED_KILL))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.contains(INJECTED_KILL))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_decisions_are_deterministic_per_stream() {
        let plan = FaultPlan::new(9)
            .drop_messages(0.3)
            .duplicate_messages(0.2)
            .delay_messages(Dur::from_millis(50));
        let a: Vec<Delivery> = {
            let l = plan.link(1);
            (0..256).map(|_| l.next()).collect()
        };
        let b: Vec<Delivery> = {
            let l = plan.link(1);
            (0..256).map(|_| l.next()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<Delivery> = {
            let l = plan.link(2);
            (0..256).map(|_| l.next()).collect()
        };
        assert_ne!(a, c, "distinct streams should diverge");
        // Frequencies are in the right ballpark.
        let drops = a.iter().filter(|d| **d == Delivery::Drop).count();
        assert!((30..130).contains(&drops), "drops = {drops} of 256");
    }

    #[test]
    fn delays_are_bounded() {
        let plan = FaultPlan::new(5).delay_messages(Dur::from_millis(20));
        let l = plan.link(0);
        for _ in 0..1000 {
            match l.next() {
                Delivery::Deliver { delay, copies } => {
                    assert!(delay <= Dur::from_millis(20));
                    assert_eq!(copies, 1);
                }
                Delivery::Drop => panic!("no drops configured"),
            }
        }
    }

    #[test]
    fn cut_windows_cover_half_open_ranges() {
        let plan = FaultPlan::new(0).cut(Dur::from_millis(100), Dur::from_millis(200), 3);
        assert!(!plan.cut_active(3, Dur::from_millis(99)));
        assert!(plan.cut_active(3, Dur::from_millis(100)));
        assert!(plan.cut_active(3, Dur::from_millis(199)));
        assert!(!plan.cut_active(3, Dur::from_millis(200)));
        assert!(!plan.cut_active(2, Dur::from_millis(150)));
    }

    #[test]
    fn replica_faults_live_in_their_own_namespace() {
        let plan = FaultPlan::new(1)
            .kill_shard(Dur::from_millis(10), 2)
            .kill_replica(Dur::from_millis(20), 2)
            .cut_replica(Dur::from_millis(50), Dur::from_millis(60), 1)
            .with_replica_clock(0, ClockModel::drifting(1_000_000.0));
        // Shard kill and replica kill with the same index are distinct
        // faults in distinct schedules.
        assert_eq!(plan.kills, vec![(Dur::from_millis(10), 2)]);
        assert_eq!(plan.replica_kills, vec![(Dur::from_millis(20), 2)]);
        // Replica cuts are half-open like client cuts.
        assert!(!plan.replica_cut_active(1, Dur::from_millis(49)));
        assert!(plan.replica_cut_active(1, Dur::from_millis(50)));
        assert!(plan.replica_cut_active(1, Dur::from_millis(59)));
        assert!(!plan.replica_cut_active(1, Dur::from_millis(60)));
        assert!(!plan.replica_cut_active(0, Dur::from_millis(55)));
        // Replica clocks resolve per index; clients are unaffected.
        assert!(plan.replica_clock(0).is_some());
        assert!(plan.replica_clock(1).is_none());
        assert!(plan.client_clock(0).is_none());
    }

    #[test]
    fn arrivals_are_deterministic_and_rate_shaped() {
        let plan = FaultPlan::new(11).with_overload(OverloadPlan {
            base_rate: 100.0,
            burst_rate: 1000.0,
            burst_at: Dur::from_secs(2),
            burst_len: Dur::from_secs(1),
            herd: false,
        });
        let take = |stream: u64| -> Vec<Dur> {
            let mut a = plan.arrivals(stream).unwrap();
            (0..2000).map(|_| a.next_at()).collect()
        };
        assert_eq!(take(0), take(0), "same stream must replay");
        assert_ne!(take(0), take(1), "distinct streams must diverge");
        let ts = take(0);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "monotone arrivals");
        // ~100/s outside the burst, ~1000/s inside: count the window.
        let in_burst = ts
            .iter()
            .filter(|t| **t >= Dur::from_secs(2) && **t < Dur::from_secs(3))
            .count();
        assert!(
            (600..1600).contains(&in_burst),
            "burst second saw {in_burst} arrivals, expected ~1000"
        );
        let first_two_secs = ts.iter().filter(|t| **t < Dur::from_secs(2)).count();
        assert!(
            (100..350).contains(&first_two_secs),
            "first two seconds saw {first_two_secs} arrivals, expected ~200"
        );
    }

    #[test]
    fn herd_aligns_every_stream_at_the_burst_start() {
        let plan = FaultPlan::new(3).with_overload(OverloadPlan {
            base_rate: 2.0,
            burst_rate: 50.0,
            burst_at: Dur::from_secs(5),
            burst_len: Dur::from_secs(1),
            herd: true,
        });
        for stream in 0..32u64 {
            let mut a = plan.arrivals(stream).unwrap();
            let mut hit = false;
            for _ in 0..200 {
                let t = a.next_at();
                if t == Dur::from_secs(5) {
                    hit = true;
                }
                if t > Dur::from_secs(6) {
                    break;
                }
            }
            assert!(hit, "stream {stream} missed the herd instant");
        }
    }

    /// Pins full-plan replay determinism: rebuilding the same plan from
    /// the same seed replays identical decision streams across shard,
    /// client, and replica links — and the replica-link namespace never
    /// collides with client streams even at the same numeric index.
    #[test]
    fn chaos_plan_replay_is_deterministic() {
        let build = || {
            FaultPlan::new(0xfeed)
                .kill_shard(Dur::from_millis(5), 1)
                .kill_replica(Dur::from_millis(7), 0)
                .drop_messages(0.2)
                .duplicate_messages(0.1)
                .delay_messages(Dur::from_millis(15))
        };
        let (a, b) = (build(), build());
        for stream in [0u64, 1, 1 << 32, REPLICA_STREAM | 3] {
            let (la, lb) = (a.link(stream), b.link(stream));
            let da: Vec<Delivery> = (0..128).map(|_| la.next()).collect();
            let db: Vec<Delivery> = (0..128).map(|_| lb.next()).collect();
            assert_eq!(da, db, "stream {stream:#x} must replay identically");
        }
        for (from, to) in [(0usize, 1usize), (1, 0), (1, 2)] {
            let (la, lb) = (a.replica_link(from, to), b.replica_link(from, to));
            let da: Vec<Delivery> = (0..128).map(|_| la.next()).collect();
            let db: Vec<Delivery> = (0..128).map(|_| lb.next()).collect();
            assert_eq!(da, db, "replica link {from}->{to} must replay identically");
        }
        // Directionality: the two directions of one replica pair diverge.
        let fwd: Vec<Delivery> = {
            let l = a.replica_link(0, 1);
            (0..128).map(|_| l.next()).collect()
        };
        let rev: Vec<Delivery> = {
            let l = a.replica_link(1, 0);
            (0..128).map(|_| l.next()).collect()
        };
        assert_ne!(fwd, rev, "directed replica links draw independently");
        // Replica stream 0->1 differs from the client-1 s2c stream.
        let client1: Vec<Delivery> = {
            let l = a.link(1);
            (0..128).map(|_| l.next()).collect()
        };
        assert_ne!(fwd, client1, "replica links must not alias client links");
    }
}
