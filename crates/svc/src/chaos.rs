//! Deterministic, seeded fault plans for chaos-testing the runtime.
//!
//! The simulator (`lease-vsys`) gets determinism for free — one event
//! queue, one RNG. The real-time runtime does not, so this module makes
//! its fault *decisions* deterministic even though thread interleavings
//! are not: every per-link coin flip is a pure function of `(seed, stream,
//! counter)`, kills fire at plan-relative instants, and clock faults are
//! `lease-clock` models applied to whole hosts. Re-running a seed replays
//! the same fault pattern modulo scheduling noise, and sweeping seeds
//! explores distinct patterns — the rt analogue of the simulator's seeded
//! fault plans, generalizing the boolean cut switches the transport
//! started with.
//!
//! The plan is deliberately transport-agnostic: `lease-rt` consults
//! [`LinkChaos`] on every client↔server delivery and a driver thread
//! replays [`FaultPlan::kills`] through
//! [`SvcHandle::kill_shard`](crate::SvcHandle::kill_shard), while the
//! clock models ride into the service via
//! [`SvcHooks::clock`](crate::SvcHooks) and into clients via their clock
//! parameter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;

use lease_clock::{ClockModel, Dur};

use crate::shard::INJECTED_KILL;

/// A seeded schedule of faults to inject into one run.
///
/// All instants are relative to the start of the run. The default plan is
/// fault-free; builders add one fault class at a time.
///
/// # Examples
///
/// ```
/// use lease_clock::Dur;
/// use lease_svc::chaos::FaultPlan;
///
/// let plan = FaultPlan::new(42)
///     .kill(Dur::from_millis(300), 0)
///     .drop_messages(0.05)
///     .delay_messages(Dur::from_millis(10));
/// let link = plan.link(7);
/// // Deterministic: the same seed and stream give the same decisions.
/// assert_eq!(link.next(), FaultPlan::new(42).drop_messages(0.05)
///     .delay_messages(Dur::from_millis(10)).link(7).next());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Root seed; every derived decision stream mixes it in.
    pub seed: u64,
    /// `(when, shard)`: panic shard `shard`'s worker at `when`.
    pub kills: Vec<(Dur, usize)>,
    /// Probability a delivered message is silently dropped.
    pub drop_prob: f64,
    /// Probability a delivered message is delivered twice.
    pub dup_prob: f64,
    /// Extra latency per delivery, uniform in `[0, delay_max]`.
    pub delay_max: Dur,
    /// `(from, until, client)`: windows in which `client`'s link is cut in
    /// both directions — the generalization of the boolean cut switch.
    pub cuts: Vec<(Dur, Dur, usize)>,
    /// Clock model the server's shards read through, if any.
    pub server_clock: Option<ClockModel>,
    /// Per-client clock models as `(client index, model)` pairs.
    pub client_clocks: Vec<(usize, ClockModel)>,
}

impl FaultPlan {
    /// A fault-free plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds a shard kill at `when`.
    pub fn kill(mut self, when: Dur, shard: usize) -> FaultPlan {
        self.kills.push((when, shard));
        self
    }

    /// Sets the message-drop probability.
    pub fn drop_messages(mut self, p: f64) -> FaultPlan {
        self.drop_prob = p;
        self
    }

    /// Sets the message-duplication probability.
    pub fn duplicate_messages(mut self, p: f64) -> FaultPlan {
        self.dup_prob = p;
        self
    }

    /// Sets the maximum injected delivery delay.
    pub fn delay_messages(mut self, max: Dur) -> FaultPlan {
        self.delay_max = max;
        self
    }

    /// Cuts `client`'s link (both directions) during `[from, until)`.
    pub fn cut(mut self, from: Dur, until: Dur, client: usize) -> FaultPlan {
        self.cuts.push((from, until, client));
        self
    }

    /// Subjects the server's shards to `model`.
    pub fn with_server_clock(mut self, model: ClockModel) -> FaultPlan {
        self.server_clock = Some(model);
        self
    }

    /// Subjects client `client` to `model`.
    pub fn with_client_clock(mut self, client: usize, model: ClockModel) -> FaultPlan {
        self.client_clocks.push((client, model));
        self
    }

    /// Whether the plan injects any per-message faults at all (fast path
    /// check for transports).
    pub fn perturbs_messages(&self) -> bool {
        self.drop_prob > 0.0 || self.dup_prob > 0.0 || !self.delay_max.is_zero()
    }

    /// The deterministic fault decider for one link. `stream` names the
    /// link (e.g. `client_index` for server→client, `client_index | HI`
    /// for client→server); distinct streams draw independent decisions.
    pub fn link(&self, stream: u64) -> LinkChaos {
        LinkChaos {
            drop_prob: self.drop_prob,
            dup_prob: self.dup_prob,
            delay_max: self.delay_max,
            key: mix(self.seed ^ mix(stream)),
            counter: AtomicU64::new(0),
        }
    }

    /// Whether some cut window covers `client` at `elapsed` since start.
    pub fn cut_active(&self, client: usize, elapsed: Dur) -> bool {
        self.cuts
            .iter()
            .any(|&(from, until, c)| c == client && elapsed >= from && elapsed < until)
    }

    /// The clock model for client `client`, if the plan sets one.
    pub fn client_clock(&self, client: usize) -> Option<ClockModel> {
        self.client_clocks
            .iter()
            .find(|(c, _)| *c == client)
            .map(|(_, m)| m.clone())
    }
}

/// What a transport should do with one message on a chaotic link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Drop the message silently.
    Drop,
    /// Deliver after `delay`, `copies` times (1 = normal, 2 = duplicated).
    Deliver {
        /// Injected extra latency.
        delay: Dur,
        /// How many copies to deliver.
        copies: u32,
    },
}

/// Deterministic per-link fault dice: decision `k` on stream `s` of seed
/// `q` is the same in every run, regardless of thread interleaving on
/// *other* links.
#[derive(Debug)]
pub struct LinkChaos {
    drop_prob: f64,
    dup_prob: f64,
    delay_max: Dur,
    key: u64,
    counter: AtomicU64,
}

impl LinkChaos {
    /// Decides the fate of the next message on this link.
    pub fn next(&self) -> Delivery {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        // Independent sub-draws for each decision from one counter value.
        if unit(mix(self.key ^ n.wrapping_mul(3))) < self.drop_prob {
            return Delivery::Drop;
        }
        let copies = if unit(mix(self.key ^ n.wrapping_mul(3).wrapping_add(1))) < self.dup_prob {
            2
        } else {
            1
        };
        let delay = if self.delay_max.is_zero() {
            Dur::ZERO
        } else {
            self.delay_max
                .mul_f64(unit(mix(self.key ^ n.wrapping_mul(3).wrapping_add(2))))
        };
        Delivery::Deliver { delay, copies }
    }
}

/// SplitMix64 finalizer.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from 64 random bits.
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Installs a process-wide panic hook that swallows the panics
/// [`SvcHandle::kill_shard`](crate::SvcHandle::kill_shard) injects —
/// they are expected and supervised, and a chaos sweep would otherwise
/// bury real output under backtraces. All other panics still reach the
/// previous hook. Safe to call repeatedly; only the first call installs.
pub fn silence_injected_kills() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains(INJECTED_KILL))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.contains(INJECTED_KILL))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_decisions_are_deterministic_per_stream() {
        let plan = FaultPlan::new(9)
            .drop_messages(0.3)
            .duplicate_messages(0.2)
            .delay_messages(Dur::from_millis(50));
        let a: Vec<Delivery> = {
            let l = plan.link(1);
            (0..256).map(|_| l.next()).collect()
        };
        let b: Vec<Delivery> = {
            let l = plan.link(1);
            (0..256).map(|_| l.next()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<Delivery> = {
            let l = plan.link(2);
            (0..256).map(|_| l.next()).collect()
        };
        assert_ne!(a, c, "distinct streams should diverge");
        // Frequencies are in the right ballpark.
        let drops = a.iter().filter(|d| **d == Delivery::Drop).count();
        assert!((30..130).contains(&drops), "drops = {drops} of 256");
    }

    #[test]
    fn delays_are_bounded() {
        let plan = FaultPlan::new(5).delay_messages(Dur::from_millis(20));
        let l = plan.link(0);
        for _ in 0..1000 {
            match l.next() {
                Delivery::Deliver { delay, copies } => {
                    assert!(delay <= Dur::from_millis(20));
                    assert_eq!(copies, 1);
                }
                Delivery::Drop => panic!("no drops configured"),
            }
        }
    }

    #[test]
    fn cut_windows_cover_half_open_ranges() {
        let plan = FaultPlan::new(0).cut(Dur::from_millis(100), Dur::from_millis(200), 3);
        assert!(!plan.cut_active(3, Dur::from_millis(99)));
        assert!(plan.cut_active(3, Dur::from_millis(100)));
        assert!(plan.cut_active(3, Dur::from_millis(199)));
        assert!(!plan.cut_active(3, Dur::from_millis(200)));
        assert!(!plan.cut_active(2, Dur::from_millis(150)));
    }
}
