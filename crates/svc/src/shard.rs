//! One shard worker: a supervised thread owning a slice of the lease table.
//!
//! Each worker runs an unmodified `lease-core` [`LeaseServer`] over the
//! resources that hash to its shard. It drains its mailbox in batches (one
//! wakeup amortizes many grants/extends/approvals), drives the core's
//! timers and the table's expiry pruning from a hierarchical
//! [`TimerWheel`], and rewrites write ids on outbound approval requests so
//! that approvals can be routed back to the owning shard from anywhere.
//!
//! # Supervision
//!
//! The thread is a *supervisor loop*: the worker proper runs inside
//! [`std::panic::catch_unwind`], and a panic — organic or injected via
//! [`ShardMsg::Kill`] — is treated as a §5 server crash. The supervisor
//! rebuilds the state machine from the shard factory, replays MaxTerm
//! recovery from whatever [`SvcHooks::recover_max_term`] persisted, and
//! resumes on the *same* mailbox, so [`crate::SvcHandle`]s held by clients
//! stay valid across the crash. Every incarnation gets a new *epoch*,
//! folded into outbound global write ids; approvals addressed to a dead
//! incarnation carry its old epoch and are dropped on arrival instead of
//! being misapplied to an unrelated post-restart write with the same local
//! id — in-flight cross-shard write ids fail cleanly rather than leak.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use lease_clock::{Clock, Dur, Time};
use lease_core::{
    LeaseServer, Resource, ServerCounters, ServerInput, ServerOutput, ServerTimer, Storage,
    ToClient, ToServer, WriteId,
};

use crate::service::{ClientSink, SvcHooks};
use crate::wheel::TimerWheel;

/// Bits of a global write id reserved for the shard's restart epoch.
///
/// Global ids are `((local << EPOCH_BITS) | epoch) * nshards + shard`;
/// 10 bits lets approvals distinguish the last 1024 incarnations, far more
/// than can be in flight at once.
pub(crate) const EPOCH_BITS: u32 = 10;
pub(crate) const EPOCH_MASK: u64 = (1 << EPOCH_BITS) - 1;

/// The panic message used by [`ShardMsg::Kill`]; chaos harnesses install a
/// panic hook that recognizes it to keep injected-crash logs quiet.
pub const INJECTED_KILL: &str = "injected shard kill (chaos)";

/// Messages into one shard worker.
pub(crate) enum ShardMsg<R, D> {
    /// A routed protocol input.
    Input(ServerInput<R, D>),
    /// Snapshot this shard's counters.
    Stats(Sender<ServerCounters>),
    /// Chaos injection: panic the worker; the supervisor restarts it.
    Kill,
    /// Stop the worker.
    Shutdown,
}

/// The timer-wheel key space of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum WheelKey {
    /// Prune the lease table (armed at the table's earliest expiry).
    Prune,
    /// A core server timer: 0 = InstalledTick, k+1 = WriteDeadline(k).
    Timer(u64),
}

fn key_of(t: ServerTimer) -> WheelKey {
    match t {
        ServerTimer::InstalledTick => WheelKey::Timer(0),
        ServerTimer::WriteDeadline(w) => WheelKey::Timer(w.0 + 1),
    }
}

fn timer_of(k: u64) -> ServerTimer {
    if k == 0 {
        ServerTimer::InstalledTick
    } else {
        ServerTimer::WriteDeadline(WriteId(k - 1))
    }
}

/// Builds one shard's state machine and storage; called once at spawn and
/// again after every crash.
pub(crate) type ShardFactory<R, D> =
    Arc<dyn Fn(usize) -> (LeaseServer<R, D>, Box<dyn Storage<R, D> + Send>) + Send + Sync>;

/// Everything a worker needs besides its state machine and storage.
pub(crate) struct ShardCtx<R: Resource, D> {
    pub index: u64,
    pub nshards: u64,
    pub batch: usize,
    pub tick: Dur,
    pub idle_wait: Dur,
    pub sink: Arc<dyn ClientSink<R, D>>,
    pub hooks: SvcHooks,
    pub clock: Arc<dyn Clock>,
    pub factory: ShardFactory<R, D>,
    /// Completed restarts of this shard, shared with the service for stats.
    pub restarts: Arc<AtomicU64>,
}

/// Rewrites a shard-local write id into the service-global namespace
/// (`global = ((local << EPOCH_BITS) | epoch) * nshards + shard`) so
/// [`crate::SvcHandle`] can route the matching `Approve` straight back to
/// this shard, and this shard can tell which incarnation minted it.
fn globalize<R, D>(mut msg: ToClient<R, D>, ctx: &ShardCtx<R, D>, epoch: u64) -> ToClient<R, D>
where
    R: Resource,
{
    if let ToClient::ApprovalRequest { write_id, .. } = &mut msg {
        let tagged = (write_id.0 << EPOCH_BITS) | (epoch & EPOCH_MASK);
        *write_id = WriteId(tagged * ctx.nshards + ctx.index);
    }
    msg
}

fn apply<R, D>(
    outs: Vec<ServerOutput<R, D>>,
    wheel: &mut TimerWheel<WheelKey>,
    armed: &mut HashMap<WheelKey, Time>,
    ctx: &ShardCtx<R, D>,
    epoch: u64,
) where
    R: Resource,
    D: Clone,
{
    for o in outs {
        match o {
            ServerOutput::Send { to, msg } => ctx.sink.deliver(to, globalize(msg, ctx, epoch)),
            ServerOutput::Multicast { to, msg } => {
                let msg = globalize(msg, ctx, epoch);
                for c in to {
                    ctx.sink.deliver(c, msg.clone());
                }
            }
            ServerOutput::SetTimer { at, timer } => {
                let k = key_of(timer);
                // Re-arming a key supersedes: the stale wheel entry is
                // dropped when it fires and no longer matches `armed`.
                armed.insert(k, at);
                wheel.schedule(at, k);
            }
            ServerOutput::PersistMaxTerm(d) => {
                if let Some(f) = &ctx.hooks.persist_max_term {
                    f(d);
                }
            }
            ServerOutput::PersistLease { .. } => {
                // The service recovers via MaxTerm, like lease-rt.
            }
            ServerOutput::Committed { .. } => {}
        }
    }
}

/// Keeps one `Prune` entry armed at the table's earliest expiry, so
/// expirations cost a wheel fire instead of periodic table walks.
fn schedule_prune(
    wheel: &mut TimerWheel<WheelKey>,
    armed: &mut HashMap<WheelKey, Time>,
    next: Option<Time>,
) {
    let Some(t) = next else { return };
    match armed.get(&WheelKey::Prune) {
        Some(&p) if p <= t => {}
        _ => {
            armed.insert(WheelKey::Prune, t);
            wheel.schedule(t, WheelKey::Prune);
        }
    }
}

/// Why one incarnation's run loop returned (panics don't return — they
/// unwind into the supervisor).
enum Exit {
    /// [`ShardMsg::Shutdown`] received.
    Shutdown,
    /// Every sender is gone.
    Disconnected,
}

/// One incarnation of the worker: runs until shutdown, disconnect, or
/// panic.
fn run<R, D>(rx: &Receiver<ShardMsg<R, D>>, ctx: &ShardCtx<R, D>, epoch: u64) -> Exit
where
    R: Resource,
    D: Clone + Send + 'static,
{
    let (mut server, mut storage) = (ctx.factory)(ctx.index as usize);
    let now = ctx.clock.now();
    let mut wheel: TimerWheel<WheelKey> = TimerWheel::new(ctx.tick, now);
    let mut armed: HashMap<WheelKey, Time> = HashMap::new();
    let outs = if epoch == 0 {
        server.start(now, &*storage)
    } else {
        // §5 crash recovery: the previous incarnation's lease grants are
        // unknown, so recover from the persisted maximum term and let the
        // server stall writes (and, when configured, refuse grants) until
        // every possibly-outstanding lease has expired.
        let max_term = ctx.hooks.recover_max_term.as_ref().and_then(|f| f());
        server.recover(now, max_term, Vec::new(), &*storage)
    };
    apply(outs, &mut wheel, &mut armed, ctx, epoch);

    let mut batch: Vec<ShardMsg<R, D>> = Vec::with_capacity(ctx.batch);
    loop {
        // Fire due wheel entries, skipping superseded ones.
        for (at, k) in wheel.advance(ctx.clock.now()) {
            if armed.get(&k) != Some(&at) {
                continue;
            }
            armed.remove(&k);
            match k {
                WheelKey::Prune => {
                    server.prune(ctx.clock.now());
                }
                WheelKey::Timer(enc) => {
                    let outs = server.handle(
                        ctx.clock.now(),
                        ServerInput::Timer(timer_of(enc)),
                        &mut *storage,
                    );
                    apply(outs, &mut wheel, &mut armed, ctx, epoch);
                }
            }
        }
        schedule_prune(&mut wheel, &mut armed, server.table().next_expiry());

        // Sleep until the next wheel deadline (capped), then drain
        // a batch so one wakeup amortizes many messages.
        let wait = std::time::Duration::from(
            wheel
                .next_deadline()
                .map(|at| at.saturating_since(ctx.clock.now()))
                .map_or(ctx.idle_wait, |d| d.min(ctx.idle_wait)),
        );
        match rx.recv_timeout(wait) {
            Ok(m) => {
                batch.push(m);
                while batch.len() < ctx.batch {
                    match rx.try_recv() {
                        Ok(m) => batch.push(m),
                        Err(_) => break,
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return Exit::Disconnected,
        }
        for m in batch.drain(..) {
            match m {
                ShardMsg::Input(input) => {
                    let input = match input {
                        ServerInput::Msg {
                            from,
                            msg: ToServer::Approve { write_id },
                        } => {
                            // Strip the epoch tag; an approval minted by a
                            // previous incarnation approves nothing now —
                            // its write died with the crash and the writer
                            // will retransmit.
                            if write_id.0 & EPOCH_MASK != epoch & EPOCH_MASK {
                                continue;
                            }
                            ServerInput::Msg {
                                from,
                                msg: ToServer::Approve {
                                    write_id: WriteId(write_id.0 >> EPOCH_BITS),
                                },
                            }
                        }
                        other => other,
                    };
                    let outs = server.handle(ctx.clock.now(), input, &mut *storage);
                    apply(outs, &mut wheel, &mut armed, ctx, epoch);
                }
                ShardMsg::Stats(reply) => {
                    let _ = reply.send(server.counters);
                }
                ShardMsg::Kill => panic!("{INJECTED_KILL}"),
                ShardMsg::Shutdown => return Exit::Shutdown,
            }
        }
    }
}

/// Spawns the supervisor thread for one shard.
pub(crate) fn spawn_shard<R, D>(rx: Receiver<ShardMsg<R, D>>, ctx: ShardCtx<R, D>) -> JoinHandle<()>
where
    R: Resource,
    D: Clone + Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("lease-shard-{}", ctx.index))
        .spawn(move || {
            let mut epoch: u64 = 0;
            loop {
                match catch_unwind(AssertUnwindSafe(|| run(&rx, &ctx, epoch))) {
                    Ok(Exit::Shutdown) | Ok(Exit::Disconnected) => break,
                    Err(_) => {
                        // Crash: restart on the same mailbox with the next
                        // epoch. Unprocessed inputs queued behind the
                        // panic are handled by the new incarnation, which
                        // answers them with fresh (post-recovery) state.
                        epoch = epoch.wrapping_add(1);
                        ctx.restarts.fetch_add(1, Ordering::Relaxed);
                        if let Some(f) = &ctx.hooks.on_restart {
                            f(ctx.index as usize, epoch);
                        }
                    }
                }
            }
        })
        .expect("spawn shard worker")
}
