//! One shard worker: a supervised thread owning a slice of the lease table.
//!
//! Each worker runs an unmodified `lease-core` [`LeaseServer`] over the
//! resources that hash to its shard. Input arrives on two paths: the hot
//! path is a set of per-producer SPSC ring *lanes* (one per live
//! [`crate::SvcHandle`], adopted through the shard's
//! [`lease_core::ring::Inbox`] and drained round-robin with pure atomic
//! loads), the cold path is the original shim-crossbeam control channel
//! (stats, shutdown, `send_cold`). The worker gathers both into one
//! batch per wakeup (control first, so it cannot starve behind
//! saturated lanes), accumulates every reply those inputs and the timer
//! advance produce into an outbox that leaves through a single flush
//! per wakeup — via the worker's private [`WorkerSink`] egress lanes
//! when the sink granted one at [`ClientSink::attach_worker`], else the
//! shared [`ClientSink::deliver_batch`] — drives the core's timers and
//! the table's expiry pruning from a hierarchical [`TimerWheel`], and
//! rewrites write ids on outbound approval requests so that approvals
//! can be routed back to the owning shard from anywhere.
//!
//! Between batches the worker parks *adaptively*: after a non-empty drain
//! it polls its lanes up to `SvcConfig::spin` times (lock-free `Acquire`
//! loads with a spin-loop hint) before falling back to a timed park on
//! the shard's [`lease_core::ring::Doorbell`]. The eventcount ticket is
//! taken before the last poll, so a producer's publish-then-ring can
//! never fall between the worker's final look and its sleep — the
//! lost-wakeup hole a bare spin-then-park would have.
//!
//! # Supervision
//!
//! The thread is a *supervisor loop*: the worker proper runs inside
//! [`std::panic::catch_unwind`], and a panic — organic or injected via
//! [`ShardMsg::Kill`] — is treated as a §5 server crash. The supervisor
//! rebuilds the state machine from the shard factory, replays MaxTerm
//! recovery from whatever [`SvcHooks::recover_max_term`] persisted, and
//! resumes on the *same* mailbox, so [`crate::SvcHandle`]s held by clients
//! stay valid across the crash. Every incarnation gets a new *epoch*,
//! folded into outbound global write ids; approvals addressed to a dead
//! incarnation carry its old epoch and are dropped on arrival instead of
//! being misapplied to an unrelated post-restart write with the same local
//! id — in-flight cross-shard write ids fail cleanly rather than leak.
//!
//! An *injected* kill is message-aligned: the dying worker flushes replies
//! it already computed and stashes the drained-but-unprocessed tail of its
//! batch for the next incarnation to replay first, so a kill's observable
//! effect does not depend on how the mailbox was chunked into batches
//! (seeded chaos plans replay identically). Organic panics make no such
//! promise — a real crash may lose its in-flight batch and outbox.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crossbeam::channel::{Receiver, Sender, TryRecvError};
use lease_clock::{Clock, Dur, Time};
use lease_core::ring::{Inbox, Lanes};
use lease_core::{
    ClientId, ErrorReason, LeaseServer, Resource, ServerCounters, ServerInput, ServerOutput,
    ServerTimer, Storage, ToClient, ToServer, WriteId,
};

use crate::service::{AdmissionControl, ClientSink, SvcHooks, WorkerSink};
use crate::wheel::TimerWheel;

/// Bits of a global write id reserved for the shard's restart epoch.
///
/// Global ids are `((local << EPOCH_BITS) | epoch) * nshards + shard`;
/// 10 bits lets approvals distinguish the last 1024 incarnations, far more
/// than can be in flight at once.
pub(crate) const EPOCH_BITS: u32 = 10;
pub(crate) const EPOCH_MASK: u64 = (1 << EPOCH_BITS) - 1;

/// The panic message used by [`ShardMsg::Kill`]; chaos harnesses install a
/// panic hook that recognizes it to keep injected-crash logs quiet.
pub const INJECTED_KILL: &str = "injected shard kill (chaos)";

/// Messages into one shard worker.
pub(crate) enum ShardMsg<R, D> {
    /// A routed protocol input, carrying the originating op's deadline
    /// (if the submitter propagated one): the worker drops the input
    /// unprocessed once the deadline has passed — the caller has already
    /// timed out, so the work is dead.
    Input {
        /// The routed input.
        input: ServerInput<R, D>,
        /// Drop-dead time; `None` means never expire.
        deadline: Option<Time>,
    },
    /// Snapshot this shard's counters.
    Stats {
        /// Where to send the snapshot.
        reply: Sender<ServerCounters>,
        /// Set once the worker has run the ring barrier for this request
        /// (drained and re-queued everything published before it), so a
        /// re-queued stats request is answered instead of re-barriered.
        barriered: bool,
    },
    /// Chaos injection: panic the worker; the supervisor restarts it.
    Kill,
    /// Stop the worker.
    Shutdown,
}

/// The ingress side of one shard, shared between the worker and every
/// [`crate::SvcHandle`]: the doorbell the worker parks on, plus the
/// hand-off point where freshly cloned handles deposit the consumer end
/// of their per-producer SPSC lane for the worker to adopt. Since the
/// registration/adoption machinery moved down into `lease_core::ring`
/// (the egress direction reuses it per client), this is just that
/// [`Inbox`] over the shard's message type.
pub(crate) type ShardIngress<R, D> = Inbox<ShardMsg<R, D>>;

/// The timer-wheel key space of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum WheelKey {
    /// Prune the lease table (armed at the table's earliest expiry).
    Prune,
    /// A core server timer: 0 = InstalledTick, k+1 = WriteDeadline(k).
    Timer(u64),
}

fn key_of(t: ServerTimer) -> WheelKey {
    match t {
        ServerTimer::InstalledTick => WheelKey::Timer(0),
        ServerTimer::WriteDeadline(w) => WheelKey::Timer(w.0 + 1),
    }
}

fn timer_of(k: u64) -> ServerTimer {
    if k == 0 {
        ServerTimer::InstalledTick
    } else {
        ServerTimer::WriteDeadline(WriteId(k - 1))
    }
}

/// Builds one shard's state machine and storage; called once at spawn and
/// again after every crash.
pub(crate) type ShardFactory<R, D> =
    Arc<dyn Fn(usize) -> (LeaseServer<R, D>, Box<dyn Storage<R, D> + Send>) + Send + Sync>;

/// Everything a worker needs besides its state machine and storage.
pub(crate) struct ShardCtx<R: Resource, D> {
    pub index: u64,
    pub nshards: u64,
    pub batch: usize,
    pub tick: Dur,
    pub idle_wait: Dur,
    pub spin: usize,
    /// Mailbox capacity, for computing occupancy (admission pressure).
    pub mailbox: usize,
    /// Doorbell + lane hand-off shared with every handle.
    pub ingress: Arc<ShardIngress<R, D>>,
    /// Pin this worker to core `base + index` (best effort, Linux).
    pub pin: Option<usize>,
    /// Watermark-driven shedding; `None` processes everything.
    pub admission: Option<AdmissionControl>,
    /// Chaos: sleep this long after every *processed* input (shed or
    /// expired-dropped inputs pay nothing), modelling a degraded worker.
    pub slow: Option<Dur>,
    pub sink: Arc<dyn ClientSink<R, D>>,
    pub hooks: SvcHooks,
    pub clock: Arc<dyn Clock>,
    pub factory: ShardFactory<R, D>,
    /// Completed restarts of this shard, shared with the service for stats.
    pub restarts: Arc<AtomicU64>,
    /// Messages an injected kill had already drained but not yet
    /// processed, handed across the panic to the next incarnation (which
    /// replays them before touching the mailbox, preserving FIFO order).
    /// Keeps the kill's crash boundary message-aligned no matter how the
    /// mailbox was chunked into batches; organic panics don't use it — a
    /// real crash may lose its in-flight batch.
    pub stash: Mutex<Vec<ShardMsg<R, D>>>,
}

/// Rewrites a shard-local write id into the service-global namespace
/// (`global = ((local << EPOCH_BITS) | epoch) * nshards + shard`) so
/// [`crate::SvcHandle`] can route the matching `Approve` straight back to
/// this shard, and this shard can tell which incarnation minted it.
fn globalize<R, D>(mut msg: ToClient<R, D>, ctx: &ShardCtx<R, D>, epoch: u64) -> ToClient<R, D>
where
    R: Resource,
{
    if let ToClient::ApprovalRequest { write_id, .. } = &mut msg {
        let tagged = (write_id.0 << EPOCH_BITS) | (epoch & EPOCH_MASK);
        *write_id = WriteId(tagged * ctx.nshards + ctx.index);
    }
    msg
}

fn apply<R, D>(
    outs: Vec<ServerOutput<R, D>>,
    wheel: &mut TimerWheel<WheelKey>,
    armed: &mut HashMap<WheelKey, Time>,
    outbox: &mut Vec<(ClientId, ToClient<R, D>)>,
    ctx: &ShardCtx<R, D>,
    epoch: u64,
) where
    R: Resource,
    D: Clone,
{
    for o in outs {
        match o {
            // Outbound protocol messages accumulate in the worker's
            // outbox and leave in one `deliver_batch` per wakeup, so the
            // sink's per-call cost is paid per flush, not per message.
            ServerOutput::Send { to, msg } => outbox.push((to, globalize(msg, ctx, epoch))),
            ServerOutput::Multicast { to, msg } => {
                let msg = globalize(msg, ctx, epoch);
                for c in to {
                    outbox.push((c, msg.clone()));
                }
            }
            ServerOutput::SetTimer { at, timer } => {
                let k = key_of(timer);
                // Re-arming a key supersedes: the stale wheel entry is
                // dropped when it fires and no longer matches `armed`.
                armed.insert(k, at);
                wheel.schedule(at, k);
            }
            ServerOutput::PersistMaxTerm(d) => {
                if let Some(f) = &ctx.hooks.persist_max_term {
                    f(d);
                }
            }
            ServerOutput::PersistLease { .. } => {
                // The service recovers via MaxTerm, like lease-rt.
            }
            ServerOutput::Committed { .. } => {}
        }
    }
}

/// Keeps one `Prune` entry armed at the table's earliest expiry, so
/// expirations cost a wheel fire instead of periodic table walks.
fn schedule_prune(
    wheel: &mut TimerWheel<WheelKey>,
    armed: &mut HashMap<WheelKey, Time>,
    next: Option<Time>,
) {
    let Some(t) = next else { return };
    match armed.get(&WheelKey::Prune) {
        Some(&p) if p <= t => {}
        _ => {
            armed.insert(WheelKey::Prune, t);
            wheel.schedule(t, WheelKey::Prune);
        }
    }
}

/// Why one incarnation's run loop returned (panics don't return — they
/// unwind into the supervisor).
enum Exit {
    /// [`ShardMsg::Shutdown`] received.
    Shutdown,
    /// Every sender is gone.
    Disconnected,
}

/// Non-blocking drain of the cold/control channel (stats, shutdown,
/// `send_cold` traffic) into `batch`, capped at `max` total batch
/// entries. `Err(())` means every control sender is gone.
fn drain_control<R, D>(
    rx: &Receiver<ShardMsg<R, D>>,
    batch: &mut Vec<ShardMsg<R, D>>,
    max: usize,
) -> Result<(), ()> {
    while batch.len() < max {
        match rx.try_recv() {
            Ok(m) => batch.push(m),
            Err(TryRecvError::Empty) => return Ok(()),
            Err(TryRecvError::Disconnected) => return Err(()),
        }
    }
    Ok(())
}

/// One egress flush: everything the wakeup accumulated leaves through
/// the worker's private ring-lane sink when the shared sink granted one
/// at attach time, else through the shared [`ClientSink::deliver_batch`].
fn flush_outbox<R, D>(
    ctx: &ShardCtx<R, D>,
    wsink: &mut Option<Box<dyn WorkerSink<R, D>>>,
    outbox: &mut Vec<(ClientId, ToClient<R, D>)>,
) where
    R: Resource,
    D: Clone + Send + 'static,
{
    if outbox.is_empty() {
        return;
    }
    match wsink {
        Some(w) => w.deliver_batch(outbox),
        None => ctx.sink.deliver_batch(outbox),
    }
    outbox.clear(); // In case a custom sink did not drain fully.
}

/// One incarnation of the worker: runs until shutdown, disconnect, or
/// panic. `lanes` (the adopted per-producer ring consumers with their
/// round-robin cursor) and `wsink` (the per-worker egress sink) live in
/// the supervisor so queued ring traffic — and established egress lanes
/// — survive a crash exactly like the control mailbox does.
fn run<R, D>(
    rx: &Receiver<ShardMsg<R, D>>,
    ctx: &ShardCtx<R, D>,
    lanes: &mut Lanes<ShardMsg<R, D>>,
    wsink: &mut Option<Box<dyn WorkerSink<R, D>>>,
    epoch: u64,
) -> Exit
where
    R: Resource,
    D: Clone + Send + 'static,
{
    let (mut server, mut storage) = (ctx.factory)(ctx.index as usize);
    let now = ctx.clock.now();
    let mut wheel: TimerWheel<WheelKey> = TimerWheel::new(ctx.tick, now);
    let mut armed: HashMap<WheelKey, Time> = HashMap::new();
    let mut outbox: Vec<(ClientId, ToClient<R, D>)> = Vec::new();
    let outs = if epoch == 0 {
        server.start(now, &*storage)
    } else {
        // §5 crash recovery: the previous incarnation's lease grants are
        // unknown, so recover from the persisted maximum term and let the
        // server stall writes (and, when configured, refuse grants) until
        // every possibly-outstanding lease has expired.
        let max_term = ctx.hooks.recover_max_term.as_ref().and_then(|f| f());
        server.recover(now, max_term, Vec::new(), &*storage)
    };
    apply(outs, &mut wheel, &mut armed, &mut outbox, ctx, epoch);

    // Start from whatever an injected kill left half-drained: those
    // messages precede everything still in the mailbox, so the new
    // incarnation replays them first, preserving FIFO order.
    let mut batch: Vec<ShardMsg<R, D>> = std::mem::take(&mut *ctx.stash.lock().unwrap());
    batch.reserve(ctx.batch.saturating_sub(batch.len()));
    // Whether the last wakeup drained any input — the adaptive-park
    // signal: loaded shards spin briefly for the next batch, idle shards
    // park on the condvar exactly as before.
    let mut hot = false;
    loop {
        // Fire due wheel entries, skipping superseded ones.
        for (at, k) in wheel.advance(ctx.clock.now()) {
            if armed.get(&k) != Some(&at) {
                continue;
            }
            armed.remove(&k);
            match k {
                WheelKey::Prune => {
                    server.prune(ctx.clock.now());
                }
                WheelKey::Timer(enc) => {
                    let outs = server.handle(
                        ctx.clock.now(),
                        ServerInput::Timer(timer_of(enc)),
                        &mut *storage,
                    );
                    apply(outs, &mut wheel, &mut armed, &mut outbox, ctx, epoch);
                }
            }
        }
        schedule_prune(&mut wheel, &mut armed, server.table().next_expiry());

        // One egress flush per wakeup: everything the drained batch and
        // the wheel advance produced leaves in a single sink call.
        flush_outbox(ctx, wsink, &mut outbox);

        // Gather input (unless a replayed stash is already pending).
        // Ticket first, then poll: any publish after a poll bumps the
        // ticket and makes the park below return immediately, so a
        // producer's publish-then-ring can never slip between the
        // worker's last look and its sleep (the lost-wakeup hole a bare
        // spin-then-park has).
        if batch.is_empty() {
            let ticket = ctx.ingress.bell().ticket();
            lanes.prune_disconnected();
            // Control first: it is rare, low-volume, and must not starve
            // behind a saturated data path. The per-producer lanes are
            // drained round-robin behind it.
            let disconnected = drain_control(rx, &mut batch, ctx.batch).is_err();
            let room = ctx.batch.saturating_sub(batch.len());
            lanes.drain_into(&mut batch, room);
            if batch.is_empty() && hot && ctx.spin > 0 {
                // Adaptive spin: a loaded shard polls its lanes (pure
                // Acquire loads — the control mutex is not touched) up
                // to `spin` times before conceding the park.
                for _ in 0..ctx.spin {
                    if lanes.drain_into(&mut batch, ctx.batch) > 0 {
                        break;
                    }
                    std::hint::spin_loop();
                }
            }
            if batch.is_empty() {
                if disconnected {
                    // Every handle is gone and the lanes are dry.
                    return Exit::Disconnected;
                }
                let wait = std::time::Duration::from(
                    wheel
                        .next_deadline()
                        .map(|at| at.saturating_since(ctx.clock.now()))
                        .map_or(ctx.idle_wait, |d| d.min(ctx.idle_wait)),
                );
                ctx.ingress.bell().wait(ticket, wait);
                // Woken or timed out either way: loop back through the
                // wheel advance and re-gather.
            }
        }
        hot = !batch.is_empty();
        // Admission pressure: occupancy *behind* this drain — what is
        // still queued (control plus every adopted lane) after we took
        // our batch, against the nominal mailbox capacity. Fed to the
        // server's term controller every wakeup, so sustained overload
        // degrades granted terms and idle wakeups decay the degradation
        // back out.
        let queued = rx.len() + lanes.queued();
        let occ = queued as f64 / ctx.mailbox as f64;
        server.set_pressure(occ);
        let shed = ctx.admission.filter(|a| occ >= a.shed_watermark);
        let stats_skip_flush = ctx.admission.is_some_and(|a| occ >= a.stats_watermark);
        {
            // Indexed iteration (with a cheap placeholder swap) so the
            // Kill arm can move the unprocessed tail into the stash. A
            // `while` rather than `for`: the Stats barrier may splice a
            // lane snapshot into the unprocessed tail, growing the batch
            // mid-iteration.
            let mut i = 0;
            while i < batch.len() {
                let m = std::mem::replace(&mut batch[i], ShardMsg::Kill);
                i += 1;
                match m {
                    ShardMsg::Input { input, deadline } => {
                        if deadline.is_some_and(|d| ctx.clock.now() > d) {
                            // The caller already timed out; processing the
                            // input would be dead work at the worst time.
                            server.counters.expired_drops += 1;
                            continue;
                        }
                        if let Some(a) = shed {
                            // Over the shed watermark: refuse the
                            // lowest-priority class — cold fetches, i.e.
                            // brand-new grants with nothing cached and no
                            // piggybacked extensions. Renewals, writes,
                            // approvals, and relinquishes keep flowing
                            // (lease continuity and expiry outrank new
                            // admissions). Refusing a grant is always
                            // consistency-safe: no lease comes into
                            // existence.
                            if let ServerInput::Msg {
                                from,
                                msg:
                                    ToServer::Fetch {
                                        req,
                                        cached: None,
                                        also_extend,
                                        ..
                                    },
                            } = &input
                            {
                                if also_extend.is_empty() {
                                    server.counters.sheds += 1;
                                    outbox.push((
                                        *from,
                                        ToClient::Error {
                                            req: *req,
                                            reason: ErrorReason::Shed {
                                                retry_after: a.retry_after,
                                            },
                                        },
                                    ));
                                    continue;
                                }
                            }
                        }
                        let input = match input {
                            ServerInput::Msg {
                                from,
                                msg: ToServer::Approve { write_id },
                            } => {
                                // Strip the epoch tag; an approval minted
                                // by a previous incarnation approves
                                // nothing now — its write died with the
                                // crash and the writer will retransmit.
                                if write_id.0 & EPOCH_MASK != epoch & EPOCH_MASK {
                                    continue;
                                }
                                ServerInput::Msg {
                                    from,
                                    msg: ToServer::Approve {
                                        write_id: WriteId(write_id.0 >> EPOCH_BITS),
                                    },
                                }
                            }
                            other => other,
                        };
                        let outs = server.handle(ctx.clock.now(), input, &mut *storage);
                        apply(outs, &mut wheel, &mut armed, &mut outbox, ctx, epoch);
                        if let Some(d) = ctx.slow {
                            // Injected degradation: bound this worker's
                            // throughput to ~1/d inputs per second.
                            std::thread::sleep(std::time::Duration::from(d));
                        }
                    }
                    ShardMsg::Stats { reply, barriered } => {
                        // The stats barrier: a stats reply certifies that
                        // every reply to input submitted before the stats
                        // request has left the service (the contract
                        // `LeaseService::stats` documents and the
                        // equivalence tests rely on). The control channel
                        // orders cold traffic by FIFO, but hot traffic
                        // rides the per-producer lanes — and this gather
                        // may already have drained lane messages *behind*
                        // this request in `batch`. So take a snapshot of
                        // everything still visible in the lanes, append
                        // it to the end of the batch, and re-queue the
                        // request (marked) behind all of it. Above the
                        // stats watermark both the barrier and the egress
                        // flush are skipped — stats are the
                        // lowest-priority work and must not stall an
                        // overloaded drain; the counters stay exact.
                        if !stats_skip_flush && !barriered {
                            lanes.snapshot_into(&mut batch);
                            batch.push(ShardMsg::Stats {
                                reply,
                                barriered: true,
                            });
                            continue;
                        }
                        if !stats_skip_flush {
                            flush_outbox(ctx, wsink, &mut outbox);
                        }
                        let _ = reply.send(server.counters);
                    }
                    ShardMsg::Kill => {
                        // Make the injected crash boundary exactly this
                        // message, independent of batch chunking: flush
                        // replies already computed for earlier inputs,
                        // and hand the drained-but-unprocessed tail to
                        // the next incarnation via the stash. Seeded
                        // chaos plans (and the batch-equivalence tests)
                        // rely on a kill's observable effect not
                        // depending on how the mailbox happened to be
                        // chunked into batches.
                        flush_outbox(ctx, wsink, &mut outbox);
                        *ctx.stash.lock().unwrap() = batch.drain(i..).collect();
                        panic!("{INJECTED_KILL}")
                    }
                    ShardMsg::Shutdown => {
                        // Deliver what this batch already produced; the
                        // rest of the mailbox is abandoned with the
                        // service.
                        flush_outbox(ctx, wsink, &mut outbox);
                        return Exit::Shutdown;
                    }
                }
            }
            batch.clear();
        }
    }
}

/// Spawns the supervisor thread for one shard.
pub(crate) fn spawn_shard<R, D>(rx: Receiver<ShardMsg<R, D>>, ctx: ShardCtx<R, D>) -> JoinHandle<()>
where
    R: Resource,
    D: Clone + Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("lease-shard-{}", ctx.index))
        .spawn(move || {
            if let Some(base) = ctx.pin {
                lease_core::affinity::pin_to_core(base + ctx.index as usize);
            }
            let mut epoch: u64 = 0;
            // Adopted lanes (with their round-robin cursor) and the
            // per-worker egress sink live here, outside the incarnation,
            // so ring traffic queued at crash time is replayed by the
            // next incarnation exactly like the control mailbox
            // (dropping the consumers would instead sever every live
            // handle), and established egress lanes survive the restart.
            let mut lanes: Lanes<ShardMsg<R, D>> = Lanes::new(Arc::clone(&ctx.ingress));
            let mut wsink: Option<Box<dyn WorkerSink<R, D>>> = ctx.sink.attach_worker();
            loop {
                match catch_unwind(AssertUnwindSafe(|| {
                    run(&rx, &ctx, &mut lanes, &mut wsink, epoch)
                })) {
                    Ok(Exit::Shutdown) | Ok(Exit::Disconnected) => break,
                    Err(_) => {
                        // Crash: restart on the same mailbox with the next
                        // epoch. Unprocessed inputs queued behind the
                        // panic are handled by the new incarnation, which
                        // answers them with fresh (post-recovery) state.
                        epoch = epoch.wrapping_add(1);
                        ctx.restarts.fetch_add(1, Ordering::Relaxed);
                        if let Some(f) = &ctx.hooks.on_restart {
                            f(ctx.index as usize, epoch);
                        }
                    }
                }
            }
            // Sever the producers: dropping `lanes` closes the inbox —
            // adopted lanes drop with it, and pending (never-adopted)
            // ones are dropped under the closed flag so a handle cloned
            // after shutdown cannot block forever.
            drop(lanes);
        })
        .expect("spawn shard worker")
}
