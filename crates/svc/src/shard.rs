//! One shard worker: a thread owning a slice of the lease table.
//!
//! Each worker runs an unmodified `lease-core` [`LeaseServer`] over the
//! resources that hash to its shard. It drains its mailbox in batches (one
//! wakeup amortizes many grants/extends/approvals), drives the core's
//! timers and the table's expiry pruning from a hierarchical
//! [`TimerWheel`], and rewrites write ids on outbound approval requests so
//! that approvals can be routed back to the owning shard from anywhere.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use lease_clock::{Clock, Dur, Time, WallClock};
use lease_core::{
    LeaseServer, Resource, ServerCounters, ServerInput, ServerOutput, ServerTimer, Storage,
    ToClient, WriteId,
};

use crate::service::{ClientSink, SvcHooks};
use crate::wheel::TimerWheel;

/// Messages into one shard worker.
pub(crate) enum ShardMsg<R, D> {
    /// A routed protocol input.
    Input(ServerInput<R, D>),
    /// Snapshot this shard's counters.
    Stats(Sender<ServerCounters>),
    /// Stop the worker.
    Shutdown,
}

/// The timer-wheel key space of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum WheelKey {
    /// Prune the lease table (armed at the table's earliest expiry).
    Prune,
    /// A core server timer: 0 = InstalledTick, k+1 = WriteDeadline(k).
    Timer(u64),
}

fn key_of(t: ServerTimer) -> WheelKey {
    match t {
        ServerTimer::InstalledTick => WheelKey::Timer(0),
        ServerTimer::WriteDeadline(w) => WheelKey::Timer(w.0 + 1),
    }
}

fn timer_of(k: u64) -> ServerTimer {
    if k == 0 {
        ServerTimer::InstalledTick
    } else {
        ServerTimer::WriteDeadline(WriteId(k - 1))
    }
}

/// Everything a worker needs besides its state machine and storage.
pub(crate) struct ShardCtx<R: Resource, D> {
    pub index: u64,
    pub nshards: u64,
    pub batch: usize,
    pub tick: Dur,
    pub idle_wait: Dur,
    pub sink: Arc<dyn ClientSink<R, D>>,
    pub hooks: SvcHooks,
}

/// Rewrites a shard-local write id into the service-global namespace
/// (`global = local * nshards + shard`) so [`crate::SvcHandle`] can route
/// the matching `Approve` straight back to this shard.
fn globalize<R, D>(mut msg: ToClient<R, D>, ctx: &ShardCtx<R, D>) -> ToClient<R, D>
where
    R: Resource,
{
    if let ToClient::ApprovalRequest { write_id, .. } = &mut msg {
        *write_id = WriteId(write_id.0 * ctx.nshards + ctx.index);
    }
    msg
}

fn apply<R, D>(
    outs: Vec<ServerOutput<R, D>>,
    wheel: &mut TimerWheel<WheelKey>,
    armed: &mut HashMap<WheelKey, Time>,
    ctx: &ShardCtx<R, D>,
) where
    R: Resource,
    D: Clone,
{
    for o in outs {
        match o {
            ServerOutput::Send { to, msg } => ctx.sink.deliver(to, globalize(msg, ctx)),
            ServerOutput::Multicast { to, msg } => {
                let msg = globalize(msg, ctx);
                for c in to {
                    ctx.sink.deliver(c, msg.clone());
                }
            }
            ServerOutput::SetTimer { at, timer } => {
                let k = key_of(timer);
                // Re-arming a key supersedes: the stale wheel entry is
                // dropped when it fires and no longer matches `armed`.
                armed.insert(k, at);
                wheel.schedule(at, k);
            }
            ServerOutput::PersistMaxTerm(d) => {
                if let Some(f) = &ctx.hooks.persist_max_term {
                    f(d);
                }
            }
            ServerOutput::PersistLease { .. } => {
                // The service recovers via MaxTerm, like lease-rt.
            }
            ServerOutput::Committed { .. } => {}
        }
    }
}

/// Keeps one `Prune` entry armed at the table's earliest expiry, so
/// expirations cost a wheel fire instead of periodic table walks.
fn schedule_prune(
    wheel: &mut TimerWheel<WheelKey>,
    armed: &mut HashMap<WheelKey, Time>,
    next: Option<Time>,
) {
    let Some(t) = next else { return };
    match armed.get(&WheelKey::Prune) {
        Some(&p) if p <= t => {}
        _ => {
            armed.insert(WheelKey::Prune, t);
            wheel.schedule(t, WheelKey::Prune);
        }
    }
}

pub(crate) fn spawn_shard<R, D>(
    mut server: LeaseServer<R, D>,
    mut storage: Box<dyn Storage<R, D> + Send>,
    rx: Receiver<ShardMsg<R, D>>,
    ctx: ShardCtx<R, D>,
    clock: WallClock,
) -> JoinHandle<()>
where
    R: Resource,
    D: Clone + Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("lease-shard-{}", ctx.index))
        .spawn(move || {
            let mut wheel: TimerWheel<WheelKey> = TimerWheel::new(ctx.tick, clock.now());
            let mut armed: HashMap<WheelKey, Time> = HashMap::new();
            let outs = server.start(clock.now(), &*storage);
            apply(outs, &mut wheel, &mut armed, &ctx);

            let mut batch: Vec<ShardMsg<R, D>> = Vec::with_capacity(ctx.batch);
            'worker: loop {
                // Fire due wheel entries, skipping superseded ones.
                for (at, k) in wheel.advance(clock.now()) {
                    if armed.get(&k) != Some(&at) {
                        continue;
                    }
                    armed.remove(&k);
                    match k {
                        WheelKey::Prune => {
                            server.prune(clock.now());
                        }
                        WheelKey::Timer(enc) => {
                            let outs = server.handle(
                                clock.now(),
                                ServerInput::Timer(timer_of(enc)),
                                &mut *storage,
                            );
                            apply(outs, &mut wheel, &mut armed, &ctx);
                        }
                    }
                }
                schedule_prune(&mut wheel, &mut armed, server.table().next_expiry());

                // Sleep until the next wheel deadline (capped), then drain
                // a batch so one wakeup amortizes many messages.
                let wait = std::time::Duration::from(
                    wheel
                        .next_deadline()
                        .map(|at| at.saturating_since(clock.now()))
                        .map_or(ctx.idle_wait, |d| d.min(ctx.idle_wait)),
                );
                match rx.recv_timeout(wait) {
                    Ok(m) => {
                        batch.push(m);
                        while batch.len() < ctx.batch {
                            match rx.try_recv() {
                                Ok(m) => batch.push(m),
                                Err(_) => break,
                            }
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
                for m in batch.drain(..) {
                    match m {
                        ShardMsg::Input(input) => {
                            let outs = server.handle(clock.now(), input, &mut *storage);
                            apply(outs, &mut wheel, &mut armed, &ctx);
                        }
                        ShardMsg::Stats(reply) => {
                            let _ = reply.send(server.counters);
                        }
                        ShardMsg::Shutdown => break 'worker,
                    }
                }
            }
        })
        .expect("spawn shard worker")
}
