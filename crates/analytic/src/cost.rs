//! Failure-aware term selection: where the paper's model stops.
//!
//! Formula (1) and (2) both *decrease* monotonically in the term, so taken
//! alone they would recommend infinite leases. What caps the term in the
//! paper is qualitative: "short lease terms minimize the delay resulting
//! from client and server failures" (§2), with "the rate of failures
//! assumed to be low enough to have no significant effect" in the model
//! itself (§3.1). This module quantifies that missing piece, giving the
//! dynamic term-picker of §4 a genuine optimum to find.
//!
//! # The failure-delay model
//!
//! Let each of the `S` caches holding the file crash (or drop off the
//! network) at rate `λ_f` per second, with repairs slow relative to the
//! term. A cache that dies leaves an unexpired lease behind for half a
//! term on average, so at any instant the probability that *some* holder
//! is dead-but-leased is approximately
//!
//! ```text
//!   p_blocked ≈ S · λ_f · t_s / 2            (for small λ_f · t_s)
//! ```
//!
//! A write arriving in that window stalls for the remaining term — on
//! average `t_s / 2` — so the expected extra write delay is
//!
//! ```text
//!   E[stall] ≈ S · λ_f · t_s² / 4
//! ```
//!
//! Spread over all operations, the failure-adjusted per-op delay is
//!
//! ```text
//!   delay_f(t_s) = added_delay(t_s) + W/(R+W) · S · λ_f · t_s² / 4
//! ```
//!
//! which is U-shaped in `t_s`: extension savings fall off hyperbolically
//! while failure exposure grows quadratically. [`optimal_term`] locates
//! the minimum by ternary search. With the V parameters and one failure
//! per host-day, the optimum lands in the tens of seconds — right where
//! the paper's qualitative argument put it.

use crate::model::Params;

/// Expected extra write stall per operation due to crashed leaseholders
/// (seconds), for a per-holder failure rate `crash_rate` (1/s).
pub fn failure_delay(p: &Params, ts: f64, crash_rate: f64) -> f64 {
    if ts <= 0.0 || !ts.is_finite() {
        // Zero term: no leases to strand. Infinite term: unbounded stall —
        // represent as infinity so the optimizer steers away.
        return if ts <= 0.0 { 0.0 } else { f64::INFINITY };
    }
    let p_write = p.w / (p.r + p.w);
    p_write * p.s.max(1.0) * crash_rate * ts * ts / 4.0
}

/// The failure-adjusted per-operation delay (seconds): formula (2) plus
/// the expected crash-induced write stall.
pub fn adjusted_delay(p: &Params, ts: f64, crash_rate: f64) -> f64 {
    p.added_delay(ts) + failure_delay(p, ts, crash_rate)
}

/// The term minimizing [`adjusted_delay`], found by ternary search over
/// `[0, cap]` (seconds). Returns the term and its delay.
pub fn optimal_term(p: &Params, crash_rate: f64, cap: f64) -> (f64, f64) {
    // The function is unimodal for positive terms: compare against the
    // zero-term corner case explicitly.
    let (mut lo, mut hi) = (0.0f64, cap.max(1e-3));
    for _ in 0..200 {
        let m1 = lo + (hi - lo) / 3.0;
        let m2 = hi - (hi - lo) / 3.0;
        if adjusted_delay(p, m1, crash_rate) <= adjusted_delay(p, m2, crash_rate) {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    let t = (lo + hi) / 2.0;
    let interior = adjusted_delay(p, t, crash_rate);
    let at_zero = adjusted_delay(p, 0.0, crash_rate);
    if at_zero < interior {
        (0.0, at_zero)
    } else {
        (t, interior)
    }
}

/// One failure per host per day, a conservative 1989 workstation figure.
pub const PER_DAY: f64 = 1.0 / 86_400.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_delay_shape() {
        let p = Params::v_system().with_sharing(4.0);
        assert_eq!(failure_delay(&p, 0.0, PER_DAY), 0.0);
        assert!(failure_delay(&p, f64::INFINITY, PER_DAY).is_infinite());
        // Quadratic growth.
        let d10 = failure_delay(&p, 10.0, PER_DAY);
        let d20 = failure_delay(&p, 20.0, PER_DAY);
        assert!((d20 / d10 - 4.0).abs() < 1e-9);
        // Linear in crash rate and sharing.
        assert!((failure_delay(&p, 10.0, 2.0 * PER_DAY) / d10 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn optimum_is_finite_and_in_the_paper_range() {
        // With V parameters, S = 4, one failure per host-day: the optimum
        // sits in the tens of seconds — consistent with the paper's
        // "short lease term of (say) 10 seconds" recommendation once
        // failures are priced in.
        let p = Params::v_system().with_sharing(4.0);
        let (t, d) = optimal_term(&p, PER_DAY, 3600.0);
        assert!(t > 5.0 && t < 300.0, "optimal term {t}");
        assert!(d < adjusted_delay(&p, 0.0, PER_DAY), "beats zero term");
        assert!(d < adjusted_delay(&p, 3600.0, PER_DAY), "beats an hour");
    }

    #[test]
    fn higher_failure_rates_push_terms_down() {
        let p = Params::v_system().with_sharing(4.0);
        let (t_rare, _) = optimal_term(&p, PER_DAY, 3600.0);
        let (t_flaky, _) = optimal_term(&p, 100.0 * PER_DAY, 3600.0);
        assert!(
            t_flaky < t_rare / 3.0,
            "flaky hosts need shorter leases: {t_flaky} vs {t_rare}"
        );
    }

    #[test]
    fn reliable_unshared_files_want_long_terms() {
        // No write sharing and essentially no failures: the optimizer
        // pushes toward the cap (the model's infinite-term limit).
        let p = Params::v_system();
        let (t, _) = optimal_term(&p, 1e-12, 600.0);
        assert!(t > 500.0, "near-reliable system: term {t}");
    }

    #[test]
    fn write_hot_files_still_get_zero() {
        // alpha <= 1 means even the base model prefers zero; failures only
        // reinforce it.
        let p = Params {
            r: 0.05,
            w: 0.5,
            ..Params::v_system()
        }
        .with_sharing(8.0);
        assert!(p.alpha() < 1.0);
        let (t, _) = optimal_term(&p, PER_DAY, 600.0);
        // The delay curve for writes is dominated by t_w (constant) and
        // failure stalls (growing): short terms win.
        assert!(t < 5.0, "write-hot: term {t}");
    }

    #[test]
    fn adjusted_delay_reduces_to_formula_2_without_failures() {
        let p = Params::v_system().with_sharing(10.0);
        for ts in [0.0, 1.0, 10.0, 60.0] {
            assert!((adjusted_delay(&p, ts, 0.0) - p.added_delay(ts)).abs() < 1e-15);
        }
    }
}
