//! Term sweeps: the series behind Figures 1–3.

use serde::{Deserialize, Serialize};

use crate::model::Params;

/// One point of a swept curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Lease term `t_s`, seconds.
    pub term: f64,
    /// The swept quantity (relative load, delay, ...).
    pub value: f64,
}

/// The relative-consistency-load curve of Figure 1 for one sharing degree.
pub fn load_curve(p: &Params, terms: &[f64]) -> Vec<Point> {
    terms
        .iter()
        .map(|&t| Point {
            term: t,
            value: p.relative_load(t),
        })
        .collect()
}

/// The added-delay curve of Figures 2 and 3, in milliseconds.
pub fn delay_curve(p: &Params, terms: &[f64]) -> Vec<Point> {
    terms
        .iter()
        .map(|&t| Point {
            term: t,
            value: p.added_delay(t) * 1e3,
        })
        .collect()
}

/// Total relative server load given the consistency share at zero term.
pub fn total_load_curve(p: &Params, terms: &[f64], share: f64) -> Vec<Point> {
    terms
        .iter()
        .map(|&t| Point {
            term: t,
            value: p.total_relative_load(t, share),
        })
        .collect()
}

/// Evenly spaced terms from 0 to `max` inclusive.
pub fn term_grid(max: f64, steps: usize) -> Vec<f64> {
    (0..=steps).map(|i| max * i as f64 / steps as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_monotone_decreasing_past_the_dip() {
        let p = Params::v_system();
        let terms = term_grid(30.0, 30);
        let curve = load_curve(&p, &terms);
        // Skip the t=0 -> tiny-term dip; from 1 s on the curve decreases.
        for w in curve.windows(2).skip(1) {
            assert!(w[1].value <= w[0].value + 1e-12);
        }
        assert_eq!(curve[0].value, 1.0);
    }

    #[test]
    fn delay_curve_is_in_milliseconds() {
        let p = Params::v_system();
        let c = delay_curve(&p, &[0.0]);
        // Zero term: about R/(R+W) * 3 ms = 2.87 ms.
        assert!((c[0].value - 2.867).abs() < 0.01, "{}", c[0].value);
    }

    #[test]
    fn term_grid_spacing() {
        let g = term_grid(10.0, 5);
        assert_eq!(g, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn total_load_interpolates_between_shares() {
        let p = Params::v_system();
        let c = total_load_curve(&p, &[0.0, 1e9], 0.3);
        assert!((c[0].value - 1.0).abs() < 1e-12);
        assert!((c[1].value - 0.7).abs() < 1e-3);
    }
}
