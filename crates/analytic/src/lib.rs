#![warn(missing_docs)]

//! The paper's analytic model of lease performance (§3.1).
//!
//! The model considers one server, one file, and `N` client caches whose
//! reads and writes are Poisson with per-client rates `R` and `W`; the file
//! is shared by `S` caches whenever it is written. Messages cost a
//! propagation delay `m_prop` and a per-send/per-receive processing time
//! `m_proc`; client clocks may be off by at most `ε`.
//!
//! Key quantities (all derived in §3.1 of the paper):
//!
//! * effective client-side term: `t_c = max(0, t_s − (m_prop + 2·m_proc) − ε)`
//! * consistency message load (formula 1):
//!   `2NR / (1 + R·t_c) + NSW` for `S > 1, t_s > 0`; the `NSW` term
//!   disappears for unshared files and the whole load collapses to `2NR`
//!   at `t_s = 0` (no leaseholders, no approvals);
//! * added delay per operation (formula 2):
//!   `[R·(2m_prop + 4m_proc)/(1 + R·t_c) + W·t_w] / (R + W)` where
//!   `t_w = 2m_prop + (S+2)·m_proc` is the multicast approval round;
//! * lease benefit factor `α = 2R/(SW)`: a non-zero term lowers server
//!   load iff `α > 1`, and then any `t > 1/(R(α−1))` beats a zero term.
//!
//! # Examples
//!
//! Reproducing the headline claim — with the V parameters, a 10-second
//! term cuts consistency traffic to ≈10% of a zero term's:
//!
//! ```
//! use lease_analytic::Params;
//!
//! let p = Params::v_system();
//! let rel = p.relative_load(10.0);
//! assert!((rel - 0.104).abs() < 0.005, "got {rel}");
//! ```

pub mod cost;
pub mod model;
pub mod sweep;

pub use cost::{adjusted_delay, failure_delay, optimal_term, PER_DAY};
pub use model::Params;
pub use sweep::{delay_curve, load_curve, total_load_curve, Point};
