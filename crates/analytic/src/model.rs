//! The model parameters and closed-form quantities.

use serde::{Deserialize, Serialize};

/// The performance parameters of Table 1, plus the clock allowance ε.
///
/// All times are in seconds, rates in events per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Number of client caches `N`.
    pub n: f64,
    /// Per-client read rate `R`.
    pub r: f64,
    /// Per-client write rate `W`.
    pub w: f64,
    /// Sharing degree `S`: caches holding the file when it is written.
    pub s: f64,
    /// One-way propagation delay `m_prop`.
    pub m_prop: f64,
    /// Per-message processing time `m_proc`.
    pub m_proc: f64,
    /// Clock-error allowance `ε`.
    pub epsilon: f64,
}

impl Params {
    /// The V-system file-caching parameters (Table 2).
    ///
    /// The paper's table is partially illegible in surviving copies; only
    /// `R = 0.864/s` is certain. The remaining values are reconstructed so
    /// the model reproduces every §3.2 number (see EXPERIMENTS.md):
    /// `W = 0.04/s`, `m_prop = m_proc = 0.5 ms` (3 ms request–response,
    /// consistent with V IPC on MicroVAX II), `ε = 100 ms`, one client,
    /// no write sharing in the trace (`S = 1`).
    pub fn v_system() -> Params {
        Params {
            n: 1.0,
            r: 0.864,
            w: 0.04,
            s: 1.0,
            m_prop: 0.0005,
            m_proc: 0.0005,
            epsilon: 0.1,
        }
    }

    /// The wide-area variant of Figure 3: a 100 ms round trip, other
    /// parameters unchanged.
    pub fn v_system_wan() -> Params {
        Params {
            m_prop: 0.048,
            m_proc: 0.001,
            ..Params::v_system()
        }
    }

    /// Returns a copy with a different sharing degree.
    pub fn with_sharing(self, s: f64) -> Params {
        Params { s, ..self }
    }

    /// Returns a copy with client processors `k` times faster: compute
    /// time between operations shrinks, so both rates scale by `k` (§3.3).
    pub fn with_speedup(self, k: f64) -> Params {
        Params {
            r: self.r * k,
            w: self.w * k,
            ..self
        }
    }

    /// The effective term at the cache:
    /// `t_c = max(0, t_s − (m_prop + 2·m_proc) − ε)`.
    pub fn t_c(&self, ts: f64) -> f64 {
        if ts.is_infinite() {
            return f64::INFINITY;
        }
        (ts - (self.m_prop + 2.0 * self.m_proc) - self.epsilon).max(0.0)
    }

    /// Unicast request–response time: `2·m_prop + 4·m_proc`.
    pub fn round_trip(&self) -> f64 {
        2.0 * self.m_prop + 4.0 * self.m_proc
    }

    /// Time to gain write approval, `t_w = 2·m_prop + (S+2)·m_proc` for
    /// `S > 1` (multicast request, S−1 replies, implicit self-approval);
    /// zero for an unshared file, whose approval rides on the write's own
    /// request–response.
    pub fn t_w(&self) -> f64 {
        if self.s <= 1.0 {
            0.0
        } else {
            2.0 * self.m_prop + (self.s + 2.0) * self.m_proc
        }
    }

    /// Consistency-related messages handled by the server per second
    /// (formula 1), as a function of the server-side term `t_s`.
    pub fn consistency_load(&self, ts: f64) -> f64 {
        if ts <= 0.0 {
            // No leases: every read is a check; writes need no approvals.
            return 2.0 * self.n * self.r;
        }
        let ext = 2.0 * self.n * self.r / (1.0 + self.r * self.t_c(ts));
        let approvals = if self.s > 1.0 {
            self.n * self.s * self.w
        } else {
            0.0
        };
        ext + approvals
    }

    /// Consistency load relative to a zero term.
    pub fn relative_load(&self, ts: f64) -> f64 {
        self.consistency_load(ts) / self.consistency_load(0.0)
    }

    /// Average delay added to each operation by consistency (formula 2),
    /// in seconds.
    pub fn added_delay(&self, ts: f64) -> f64 {
        let read_delay = if ts <= 0.0 {
            self.round_trip()
        } else {
            self.round_trip() / (1.0 + self.r * self.t_c(ts))
        };
        let write_delay = if ts <= 0.0 { 0.0 } else { self.t_w() };
        (self.r * read_delay + self.w * write_delay) / (self.r + self.w)
    }

    /// The lease benefit factor `α = 2R/(SW)` (multicast approvals).
    ///
    /// Infinite when the file is never written.
    pub fn alpha(&self) -> f64 {
        if self.w <= 0.0 {
            f64::INFINITY
        } else {
            2.0 * self.r / (self.s * self.w)
        }
    }

    /// The benefit factor when approvals use unicast:
    /// `α = R/((S−1)·W)` (footnote 7).
    pub fn alpha_unicast(&self) -> f64 {
        if self.w <= 0.0 || self.s <= 1.0 {
            f64::INFINITY
        } else {
            self.r / ((self.s - 1.0) * self.w)
        }
    }

    /// The term beyond which a lease lowers server load compared to a zero
    /// term: `1/(R(α−1))`, or `None` when `α ≤ 1` (write sharing too heavy
    /// for any non-zero term to help).
    pub fn break_even_term(&self) -> Option<f64> {
        let a = self.alpha();
        if a > 1.0 {
            if a.is_infinite() {
                Some(0.0)
            } else {
                Some(1.0 / (self.r * (a - 1.0)))
            }
        } else {
            None
        }
    }

    /// Total relative server load, given the fraction of server traffic
    /// that consistency accounts for at a zero term (30% in the V trace).
    pub fn total_relative_load(&self, ts: f64, consistency_share: f64) -> f64 {
        (1.0 - consistency_share) + consistency_share * self.relative_load(ts)
    }

    /// Response-time degradation of term `ts` relative to an infinite
    /// term, given the baseline per-operation response time (seconds):
    /// `(resp(ts) − resp(∞)) / resp(∞)`.
    pub fn response_degradation(&self, ts: f64, baseline_response: f64) -> f64 {
        let at = self.added_delay(ts);
        let inf = self.added_delay(f64::INFINITY);
        (at - inf) / (baseline_response + inf)
    }

    /// Combines per-file parameters for a cache that batches extensions
    /// across all files it holds (§3.1: "R and W then correspond to the
    /// total rates for all covered files, and so are higher; the higher
    /// absolute rate of reads increases α, and so the benefit is
    /// greater").
    ///
    /// Rates sum; the sharing degree is the write-weighted average (the
    /// approval cost per write depends on the file actually written).
    /// Message times are taken from the first entry.
    ///
    /// # Panics
    ///
    /// Panics if `files` is empty.
    pub fn batched(files: &[Params]) -> Params {
        assert!(!files.is_empty(), "batched needs at least one file");
        let r: f64 = files.iter().map(|p| p.r).sum();
        let w: f64 = files.iter().map(|p| p.w).sum();
        let s = if w > 0.0 {
            files.iter().map(|p| p.s * p.w).sum::<f64>() / w
        } else {
            files.iter().map(|p| p.s).sum::<f64>() / files.len() as f64
        };
        Params {
            r,
            w,
            s,
            ..files[0]
        }
    }

    /// The shortest term whose extension traffic is at most `theta` of the
    /// zero-term level: `t` with `t_c(t) = (1/θ − 1)/R` (the knee rule a
    /// server can apply per file, §4).
    pub fn knee_term(&self, theta: f64) -> f64 {
        (1.0 / theta - 1.0) / self.r + (self.m_prop + 2.0 * self.m_proc) + self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn t_c_shortens_and_floors() {
        let p = Params::v_system();
        // Overhead = 1.5 ms + 100 ms.
        assert!(close(p.t_c(10.0), 10.0 - 0.1015, 1e-12));
        assert_eq!(p.t_c(0.05), 0.0);
        assert!(p.t_c(f64::INFINITY).is_infinite());
    }

    #[test]
    fn zero_term_load_is_2nr() {
        let p = Params::v_system().with_sharing(10.0);
        assert!(close(p.consistency_load(0.0), 2.0 * 0.864, 1e-12));
    }

    #[test]
    fn tiny_positive_term_is_worse_than_zero() {
        // "A zero lease term is better than a very short lease term."
        let p = Params::v_system().with_sharing(10.0);
        assert!(p.consistency_load(0.01) > p.consistency_load(0.0));
    }

    #[test]
    fn unshared_load_has_no_approval_floor() {
        let p = Params::v_system();
        // As ts grows the load tends to zero for S = 1.
        assert!(p.consistency_load(1e6) < 1e-3);
        // For S = 10 it tends to N*S*W.
        let ps = p.with_sharing(10.0);
        assert!(close(ps.consistency_load(1e6), 10.0 * 0.04, 1e-3));
    }

    #[test]
    fn paper_claim_10s_term_gives_10_percent_traffic() {
        // §3.2: "at S = 1, a term of 10 seconds reduces the consistency
        // traffic to 10% of that for a zero term."
        let p = Params::v_system();
        let rel = p.relative_load(10.0);
        assert!(close(rel, 0.10, 0.005), "got {rel}");
    }

    #[test]
    fn paper_claim_total_traffic_reduction_27_percent() {
        // §3.2: consistency is 30% of server traffic at zero term, so the
        // 10 s term yields a 27% total reduction, 4.5% above infinite.
        let p = Params::v_system();
        let total = p.total_relative_load(10.0, 0.30);
        assert!(close(1.0 - total, 0.27, 0.005), "reduction {}", 1.0 - total);
        let inf = p.total_relative_load(f64::INFINITY, 0.30);
        let over_inf = total / inf - 1.0;
        assert!(close(over_inf, 0.045, 0.005), "over infinite {over_inf}");
    }

    #[test]
    fn paper_claim_s10_20_percent_and_4_1_over_infinite() {
        // §3.2: "At S = 10, total server traffic is 20% less than for a
        // zero term and 4.1% over that for an infinite term."
        let p = Params::v_system().with_sharing(10.0);
        let total = p.total_relative_load(10.0, 0.30);
        assert!(close(1.0 - total, 0.20, 0.01), "reduction {}", 1.0 - total);
        let inf = p.total_relative_load(f64::INFINITY, 0.30);
        let over = total / inf - 1.0;
        assert!(close(over, 0.041, 0.01), "over infinite {over}");
    }

    #[test]
    fn paper_claim_figure3_wan_degradation() {
        // §3.3: on a 100 ms round-trip network, "a 10 second term degrades
        // response by 10.1% over using an infinite term and a 30 second
        // term degrades it by 3.6%", for a baseline response ≈ 100 ms.
        let p = Params::v_system_wan();
        let d10 = p.response_degradation(10.0, 0.0995);
        assert!(close(d10, 0.101, 0.01), "10 s degradation {d10}");
        let d30 = p.response_degradation(30.0, 0.0995);
        assert!(close(d30, 0.036, 0.005), "30 s degradation {d30}");
    }

    #[test]
    fn alpha_and_break_even() {
        let p = Params::v_system().with_sharing(10.0);
        // alpha = 2*0.864/(10*0.04) = 4.32.
        assert!(close(p.alpha(), 4.32, 1e-9));
        let be = p.break_even_term().unwrap();
        assert!(close(be, 1.0 / (0.864 * 3.32), 1e-9));
        // Load at a term above break-even beats zero term.
        assert!(p.consistency_load(be * 3.0 + 1.0) < p.consistency_load(0.0));
        // Heavy write sharing: alpha <= 1, no non-zero term helps.
        let heavy = Params {
            r: 0.1,
            w: 0.1,
            s: 4.0,
            ..Params::v_system()
        };
        assert!(heavy.alpha() <= 1.0);
        assert!(heavy.break_even_term().is_none());
        assert!(heavy.consistency_load(100.0) > heavy.consistency_load(0.0));
    }

    #[test]
    fn alpha_unicast_matches_footnote() {
        let p = Params::v_system().with_sharing(3.0);
        assert!(close(p.alpha_unicast(), 0.864 / (2.0 * 0.04), 1e-9));
        assert!(Params::v_system().alpha_unicast().is_infinite());
    }

    #[test]
    fn delay_decreases_with_term_for_unshared() {
        let p = Params::v_system();
        let d0 = p.added_delay(0.0);
        let d10 = p.added_delay(10.0);
        let dinf = p.added_delay(f64::INFINITY);
        assert!(d0 > d10 && d10 > dinf);
        // At zero term every read pays one round trip.
        assert!(close(d0, 0.864 / 0.904 * 0.003, 1e-9));
        assert!(close(dinf, 0.0, 1e-12));
    }

    #[test]
    fn shared_delay_floors_at_write_approval_cost() {
        let p = Params::v_system().with_sharing(40.0);
        let dinf = p.added_delay(f64::INFINITY);
        let expected = 0.04 * p.t_w() / 0.904;
        assert!(close(dinf, expected, 1e-12));
        assert!(close(p.t_w(), 2.0 * 0.0005 + 42.0 * 0.0005, 1e-12));
    }

    #[test]
    fn speedup_pushes_knee_lower() {
        // §3.3: faster processors raise rates, so the same residual
        // traffic is reached at a shorter term.
        let p = Params::v_system();
        let fast = p.with_speedup(10.0);
        assert!(fast.knee_term(0.1) < p.knee_term(0.1));
        // And at any fixed term, the fast system keeps less relative load.
        assert!(fast.relative_load(5.0) < p.relative_load(5.0));
    }

    #[test]
    fn batching_raises_alpha_and_lowers_load() {
        // Ten identical files, each with a tenth of the V rates: per file,
        // a 10 s term leaves far more residual extension traffic than the
        // batched cache sees.
        let per_file = Params {
            r: 0.0864,
            w: 0.004,
            ..Params::v_system()
        }
        .with_sharing(4.0);
        let files = vec![per_file; 10];
        let combined = Params::batched(&files);
        assert!(close(combined.r, 0.864, 1e-9));
        assert!(close(combined.w, 0.04, 1e-9));
        assert!(close(combined.s, 4.0, 1e-9));
        // Alpha is a ratio, so it is unchanged by uniform scaling; the
        // benefit shows up in the amortization: the break-even term and
        // the residual extension traffic both shrink with the higher
        // aggregate read rate.
        assert!(close(combined.alpha(), per_file.alpha(), 1e-9));
        assert!(combined.break_even_term().unwrap() < per_file.break_even_term().unwrap() / 9.9);
        let residual = |p: &Params| 1.0 / (1.0 + p.r * p.t_c(10.0));
        assert!(residual(&combined) < residual(&per_file) / 4.0);
    }

    #[test]
    fn batched_of_single_file_is_identity_on_rates() {
        let p = Params::v_system().with_sharing(3.0);
        let b = Params::batched(&[p]);
        assert!(close(b.r, p.r, 1e-12));
        assert!(close(b.w, p.w, 1e-12));
        assert!(close(b.s, p.s, 1e-12));
    }

    #[test]
    fn knee_term_matches_ten_seconds() {
        // theta = 0.1 at the V read rate lands near the paper's 10 s.
        let p = Params::v_system();
        let knee = p.knee_term(0.1);
        assert!(close(knee, 10.4, 0.2), "knee {knee}");
    }
}
