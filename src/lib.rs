#![warn(missing_docs)]

//! # leases
//!
//! A production-quality Rust reproduction of **Gray & Cheriton, "Leases:
//! An Efficient Fault-Tolerant Mechanism for Distributed File Cache
//! Consistency" (SOSP 1989)** — the paper that introduced the lease, the
//! time-bounded contract that now underpins consistency in systems from
//! Chubby and ZooKeeper to etcd and every modern distributed cache.
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `lease-core` | the lease protocol: sans-IO server and client-cache state machines, term policies, installed-file optimization, crash recovery |
//! | [`analytic`] | `lease-analytic` | the §3 model: consistency load, added delay, benefit factor α, term selection |
//! | [`sim`] | `lease-sim` | deterministic discrete-event kernel (actors, timers, metrics) |
//! | [`net`] | `lease-net` | simulated V-style network: `m_prop`/`m_proc` cost model, multicast, loss, partitions |
//! | [`clock`] | `lease-clock` | time types and per-host clock models, including the §5 failure modes |
//! | [`store`] | `lease-store` | file-server substrate: versioned files, directories, durable slots |
//! | [`workload`] | `lease-workload` | Poisson/bursty generators and the synthetic V compile trace |
//! | [`vsys`] | `lease-vsys` | the assembled distributed file system on the simulator, with measurements and history recording |
//! | [`baselines`] | `lease-baselines` | §6 comparison protocols: Andrew callbacks, NFS TTL, check-on-read |
//! | [`faults`] | `lease-faults` | the single-copy consistency oracle and staleness analysis |
//! | [`svc`] | `lease-svc` | service runtime: the lease table sharded across single-threaded workers with batched mailboxes and a hierarchical timer wheel; supervised shard crash/restart (§5 MaxTerm recovery) and seeded chaos plans |
//! | [`rt`] | `lease-rt` | real-time deployment on the service runtime: threads, channels, wall clocks, a real file store; retry backoff with per-op deadlines, chaos fault injection, and true-time history recording for the oracle |
//! | [`quorum`] | `lease-quorum` | replicated grantor: the right to grant is itself a lease, held PaxosLease-style by a majority of diskless acceptors; sans-IO nodes, a wall-clock runtime with per-replica gates, and a deterministic virtual-time simulation |
//! | [`wb`] | `lease-wb` | the non-write-through extension: exclusive write tokens, local buffering, write-back, lost-write semantics |
//!
//! # Quickstart
//!
//! Run a lease-caching file system in real time:
//!
//! ```
//! use leases::clock::Dur;
//! use leases::rt::RtSystem;
//!
//! let sys = RtSystem::builder()
//!     .term(Dur::from_millis(200))
//!     .file("/etc/motd", b"hello, leases".as_ref())
//!     .clients(2)
//!     .start();
//! let motd = sys.lookup("/etc/motd").unwrap();
//! let data = sys.client(0).read(motd).unwrap();
//! assert_eq!(&data[..], b"hello, leases");
//! sys.shutdown();
//! ```
//!
//! Or reproduce a paper result on the simulator:
//!
//! ```
//! use leases::analytic::Params;
//!
//! // Section 3.2: a 10-second term cuts consistency traffic to ~10%.
//! let rel = Params::v_system().relative_load(10.0);
//! assert!((rel - 0.10).abs() < 0.01);
//! ```
//!
//! See `examples/` for runnable scenarios, DESIGN.md for the architecture
//! and experiment index, and EXPERIMENTS.md for paper-vs-measured results.

pub use lease_analytic as analytic;
pub use lease_baselines as baselines;
pub use lease_clock as clock;
pub use lease_core as core;
pub use lease_faults as faults;
pub use lease_net as net;
pub use lease_quorum as quorum;
pub use lease_rt as rt;
pub use lease_sim as sim;
pub use lease_store as store;
pub use lease_svc as svc;
pub use lease_vsys as vsys;
pub use lease_wb as wb;
pub use lease_wire as wire;
pub use lease_workload as workload;
