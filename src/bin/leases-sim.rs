//! `leases-sim`: command-line front end to the leases reproduction.
//!
//! ```text
//! leases-sim trace [--kind vtrace|poisson|bursty] [--seed N] [--clients N]
//!                  [--sharing S] [--duration SECS] [--out FILE]
//! leases-sim stats --trace FILE
//! leases-sim run   [--trace FILE | --kind ...] [--term SECS] [--loss P]
//!                  [--wan] [--installed] [--writeback] [--seed N]
//! leases-sim model [--sharing S] [--max-term SECS] [--wan]
//! leases-sim sweep [--trace FILE | --kind ...] [--terms "0,1,2,5,10,30"]
//! ```
//!
//! Everything the subcommands do is a thin layer over the library; see
//! `examples/` and `crates/bench/src/bin/` for richer drivers.

use std::collections::HashMap;
use std::process::ExitCode;

use leases::analytic::Params;
use leases::clock::Dur;
use leases::faults::check_history;
use leases::net::NetParams;
use leases::vsys::{run_trace_with_history, InstalledMode, SystemConfig, TermSpec};
use leases::wb::{run_wb_with_history, WbConfig};
use leases::workload::{BurstyWorkload, PoissonWorkload, Trace, TraceStats, VTrace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "trace" => cmd_trace(&opts),
        "stats" => cmd_stats(&opts),
        "run" => cmd_run(&opts),
        "model" => cmd_model(&opts),
        "sweep" => cmd_sweep(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
leases-sim — drive the Gray & Cheriton (SOSP 1989) leases reproduction

commands:
  trace   generate a workload trace (JSON)
  stats   print Table-2 style statistics of a trace
  run     simulate one configuration and report load/delay/consistency
  model   print the analytic model's curves (section 3.1)
  sweep   run a trace across a set of lease terms
  help    print this message

common options:
  --kind vtrace|poisson|bursty   workload generator (default vtrace)
  --seed N         RNG seed (default 1989)
  --clients N      client count for poisson/bursty (default 4)
  --sharing S      sharing degree (default 2)
  --duration SECS  trace length for poisson/bursty (default 300)
  --trace FILE     read a trace instead of generating one
  --out FILE       where `trace` writes its JSON
  --term SECS      lease term (default 10; 0 = check-on-read)
  --terms LIST     comma-separated terms for `sweep`
  --loss P         message loss probability (default 0)
  --wan            use the 100 ms round-trip network of Figure 3
  --installed      enable the section-4 installed-file multicast
  --writeback      use the non-write-through (token) extension
  --max-term SECS  sweep bound for `model` (default 30)
  --crash-rate N   host crashes per day for the failure-aware optimum (default 1)";

type Opts = HashMap<String, String>;

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument `{a}`"));
        };
        match key {
            "wan" | "installed" | "writeback" => {
                out.insert(key.to_string(), "true".to_string());
            }
            _ => {
                let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                out.insert(key.to_string(), v.clone());
            }
        }
    }
    Ok(out)
}

fn get<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse `{v}`")),
        None => Ok(default),
    }
}

fn load_or_generate(opts: &Opts) -> Result<Trace, String> {
    if let Some(path) = opts.get("trace") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let trace = Trace::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
        trace.validate()?;
        return Ok(trace);
    }
    let seed: u64 = get(opts, "seed", 1989)?;
    let n: u32 = get(opts, "clients", 4)?;
    let s: u32 = get(opts, "sharing", 2)?;
    let duration: u64 = get(opts, "duration", 300)?;
    let kind = opts.get("kind").map(String::as_str).unwrap_or("vtrace");
    let trace = match kind {
        "vtrace" => VTrace::calibrated(seed).generate(),
        "poisson" => PoissonWorkload {
            n,
            r: 0.864,
            w: 0.04,
            s,
            duration: Dur::from_secs(duration),
            seed,
        }
        .generate(),
        "bursty" => BurstyWorkload {
            n,
            r: 0.864,
            w: 0.04,
            s,
            on: Dur::from_secs(5),
            off: Dur::from_secs(20),
            duration: Dur::from_secs(duration),
            seed,
        }
        .generate(),
        other => return Err(format!("unknown workload kind `{other}`")),
    };
    Ok(trace)
}

fn cmd_trace(opts: &Opts) -> Result<(), String> {
    let trace = load_or_generate(opts)?;
    let stats = TraceStats::from_trace(&trace);
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, trace.to_json()).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote {} records to {path}", trace.records.len());
        }
        None => println!("{}", trace.to_json()),
    }
    eprintln!("\n{}", stats.table());
    Ok(())
}

fn cmd_stats(opts: &Opts) -> Result<(), String> {
    let trace = load_or_generate(opts)?;
    println!("{}", TraceStats::from_trace(&trace).table());
    Ok(())
}

fn sys_config(opts: &Opts) -> Result<SystemConfig, String> {
    let term: f64 = get(opts, "term", 10.0)?;
    let mut cfg = SystemConfig {
        term: TermSpec::Fixed(Dur::from_secs_f64(term)),
        loss: get(opts, "loss", 0.0)?,
        warmup: Dur::from_secs(30),
        seed: get(opts, "seed", 1989)?,
        ..SystemConfig::default()
    };
    if opts.contains_key("wan") {
        cfg.net = NetParams::wan_100ms();
    }
    if opts.contains_key("installed") {
        cfg.installed = InstalledMode::Multicast {
            tick: Dur::from_secs(30),
            term: Dur::from_secs(60),
        };
    }
    Ok(cfg)
}

fn cmd_run(opts: &Opts) -> Result<(), String> {
    let trace = load_or_generate(opts)?;
    if opts.contains_key("writeback") {
        let cfg = WbConfig {
            term: Dur::from_secs_f64(get(opts, "term", 10.0)?),
            warmup: Dur::from_secs(30),
            seed: get(opts, "seed", 1989)?,
            ..WbConfig::default()
        };
        let (report, h) = run_wb_with_history(&cfg, &trace);
        let verdict = check_history(&h.borrow());
        print_report(&report, verdict.is_ok());
        return Ok(());
    }
    let cfg = sys_config(opts)?;
    let (report, handle) = run_trace_with_history(&cfg, &trace);
    let verdict = check_history(&handle.history.borrow());
    print_report(&report, verdict.is_ok());
    Ok(())
}

fn print_report(r: &leases::vsys::RunReport, consistent: bool) {
    println!("consistency messages : {}", r.consistency_msgs);
    println!("data messages        : {}", r.data_msgs);
    println!("cache hit rate       : {:.3}", r.hit_rate());
    println!("mean op delay        : {:.3} ms", r.mean_delay_ms());
    println!("max write stall      : {:.2} s", r.write_delay.max);
    println!("op failures          : {}", r.op_failures);
    println!(
        "single-copy oracle   : {}",
        if consistent { "PASS" } else { "FAIL" }
    );
}

fn cmd_model(opts: &Opts) -> Result<(), String> {
    let s: f64 = get(opts, "sharing", 1.0)?;
    let max: f64 = get(opts, "max-term", 30.0)?;
    let p = if opts.contains_key("wan") {
        Params::v_system_wan().with_sharing(s)
    } else {
        Params::v_system().with_sharing(s)
    };
    println!(
        "{:>8}  {:>14}  {:>12}",
        "term (s)", "relative load", "delay (ms)"
    );
    let steps = 15;
    for i in 0..=steps {
        let t = max * i as f64 / steps as f64;
        println!(
            "{:>8.1}  {:>14.3}  {:>12.3}",
            t,
            p.relative_load(t),
            p.added_delay(t) * 1e3
        );
    }
    println!("\nlease benefit factor alpha = {:.2}", p.alpha());
    if let Some(be) = p.break_even_term() {
        println!("break-even term            = {be:.2} s");
    } else {
        println!("break-even term            = none (alpha <= 1: use a zero term)");
    }
    println!("knee term (theta = 0.1)    = {:.1} s", p.knee_term(0.1));
    let crashes_per_day: f64 = get(opts, "crash-rate", 1.0)?;
    let rate = crashes_per_day / 86_400.0;
    let (t_opt, d_opt) = leases::analytic::optimal_term(&p, rate, 3600.0);
    println!(
        "failure-aware optimum      = {:.1} s ({:.3} ms/op at {} crash(es)/host-day)",
        t_opt,
        d_opt * 1e3,
        crashes_per_day
    );
    Ok(())
}

fn cmd_sweep(opts: &Opts) -> Result<(), String> {
    let trace = load_or_generate(opts)?;
    let terms: Vec<f64> = match opts.get("terms") {
        Some(list) => list
            .split(',')
            .map(|x| x.trim().parse().map_err(|_| format!("bad term `{x}`")))
            .collect::<Result<_, _>>()?,
        None => vec![0.0, 1.0, 2.0, 5.0, 10.0, 30.0],
    };
    println!(
        "{:>8}  {:>12}  {:>9}  {:>11}  {:>7}",
        "term (s)", "cons. msgs", "hit rate", "delay (ms)", "oracle"
    );
    for t in terms {
        let mut opts = opts.clone();
        opts.insert("term".into(), t.to_string());
        let cfg = sys_config(&opts)?;
        let (r, handle) = run_trace_with_history(&cfg, &trace);
        let ok = check_history(&handle.history.borrow()).is_ok();
        println!(
            "{:>8.1}  {:>12}  {:>9.3}  {:>11.3}  {:>7}",
            t,
            r.consistency_msgs,
            r.hit_rate(),
            r.mean_delay_ms(),
            if ok { "PASS" } else { "FAIL" }
        );
    }
    Ok(())
}
