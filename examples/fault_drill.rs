//! A fault drill: crash clients, partition the network, break clocks —
//! and let the consistency oracle judge every run (§5).
//!
//! Run with: `cargo run --release --example fault_drill`

use leases::clock::{ClockModel, Dur, Time};
use leases::faults::{check_history, staleness_of};
use leases::net::Partition;
use leases::sim::ActorId;
use leases::vsys::{run_trace_with_history, CrashEvent, NodeSel, SystemConfig, TermSpec};
use leases::workload::PoissonWorkload;

fn main() {
    let trace = PoissonWorkload {
        n: 6,
        r: 0.8,
        w: 0.05,
        s: 3,
        duration: Dur::from_secs(300),
        seed: 2026,
    }
    .generate();

    let base = SystemConfig {
        term: TermSpec::Fixed(Dur::from_secs(10)),
        max_retries: 500,
        ..SystemConfig::default()
    };

    let drills: Vec<(&str, SystemConfig)> = vec![
        ("no faults", base.clone()),
        (
            "15% message loss",
            SystemConfig {
                loss: 0.15,
                retry_interval: Dur::from_millis(300),
                ..base.clone()
            },
        ),
        (
            "client 1 crashes at 60 s, returns at 150 s",
            SystemConfig {
                crashes: vec![CrashEvent {
                    at: Time::from_secs(60),
                    node: NodeSel::Client(1),
                    recover_at: Some(Time::from_secs(150)),
                }],
                ..base.clone()
            },
        ),
        (
            "server crashes at 100 s, restarts at 102 s",
            SystemConfig {
                crashes: vec![CrashEvent {
                    at: Time::from_secs(100),
                    node: NodeSel::Server,
                    recover_at: Some(Time::from_secs(102)),
                }],
                ..base.clone()
            },
        ),
        (
            "two clients partitioned for 60 s",
            SystemConfig {
                partitions: vec![Partition::new(
                    Time::from_secs(100),
                    Time::from_secs(160),
                    [ActorId(1), ActorId(2)],
                )],
                ..base.clone()
            },
        ),
        (
            "server clock runs 3x fast (the §5 hazard)",
            SystemConfig {
                server_clock: ClockModel::drifting(2_000_000.0),
                ..base.clone()
            },
        ),
    ];

    println!(
        "{:<46}  {:>10}  {:>12}  {:>12}",
        "scenario", "consistent", "stale reads", "max wr stall"
    );
    for (name, cfg) in drills {
        let (report, handle) = run_trace_with_history(&cfg, &trace);
        let outcome = check_history(&handle.history.borrow());
        let (ok, stale) = match outcome {
            Ok(()) => (true, 0),
            Err(v) => (false, staleness_of(&v).len()),
        };
        println!(
            "{:<46}  {:>10}  {:>12}  {:>10.1} s",
            name, ok, stale, report.write_delay.max
        );
    }
    println!();
    println!("every non-Byzantine failure costs only delay (bounded by the 10 s term);");
    println!("only the broken clock — explicitly outside the paper's fault model —");
    println!("produces stale reads, and the oracle catches every one.");
}
