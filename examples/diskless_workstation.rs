//! The paper's §2 walkthrough: a diskless workstation producing documents.
//!
//! "When the workstation executes latex for the first time, it obtains a
//! lease on the binary file containing latex for a term of (say) 10
//! seconds. Another access to the same file 5 seconds later can use the
//! cached version of this file without checking with the file server. [...]
//! When a new version of latex is installed, the write is delayed until
//! every leaseholder has approved the write [or the lease expires]."
//!
//! Run with: `cargo run --example diskless_workstation`
//! (takes a few seconds of real time — the leases are real.)

use std::time::{Duration, Instant};

use leases::clock::Dur;
use leases::rt::RtSystem;

fn main() {
    // Scale the paper's 10-second term down to 1 s so the demo is quick.
    let term = Dur::from_millis(1000);
    let sys = RtSystem::builder()
        .term(term)
        .installed_file("/bin/latex", b"latex-v1".as_ref())
        // The §4 optimization: installed files are covered by a periodic
        // multicast extension instead of per-client leases.
        .installed_multicast(Dur::from_millis(400), Dur::from_millis(1200))
        .file("/home/cary/paper.tex", b"\\begin{document}".as_ref())
        .clients(2)
        .start();

    let latex = sys.lookup("/bin/latex").unwrap();
    let paper = sys.lookup("/home/cary/paper.tex").unwrap();
    let ws = sys.client(0);

    // First run of latex: the binary is fetched and leased.
    let t0 = Instant::now();
    let (_, _, cached) = ws.read_detailed(latex).unwrap();
    println!(
        "[{:>6.1?}] load latex          from_cache={cached}",
        t0.elapsed()
    );

    // "Another access to the same file 5 seconds later" (scaled: 500 ms):
    // served from cache, no server contact.
    std::thread::sleep(Duration::from_millis(500));
    let (_, _, cached) = ws.read_detailed(latex).unwrap();
    println!(
        "[{:>6.1?}] run latex again     from_cache={cached} (within the term)",
        t0.elapsed()
    );
    assert!(cached);

    // Keep using it past the base term: the multicast extension keeps the
    // installed-file lease alive without any request from the client.
    std::thread::sleep(Duration::from_millis(1500));
    let (_, _, cached) = ws.read_detailed(latex).unwrap();
    println!(
        "[{:>6.1?}] third run           from_cache={cached} (multicast-extended)",
        t0.elapsed()
    );

    // Edit the paper: an ordinary leased write-through file.
    ws.write(paper, b"\\begin{document} Leases are contracts...".as_ref())
        .unwrap();
    println!("[{:>6.1?}] saved paper.tex", t0.elapsed());

    // Install a new latex. Delayed update: the server drops the file from
    // the multicast, waits out the outstanding term, then applies — no
    // callbacks to (possibly many, possibly dead) workstations.
    let t_install = Instant::now();
    sys.install(latex, b"latex-v2".as_ref());
    println!(
        "[{:>6.1?}] new latex submitted (delayed update in progress)",
        t0.elapsed()
    );

    // Wait for the extension window to lapse and the write to land.
    std::thread::sleep(Duration::from_millis(1800));
    let data = ws.read(latex).unwrap();
    println!(
        "[{:>6.1?}] workstation now runs {} (install visible after {:?})",
        t0.elapsed(),
        String::from_utf8_lossy(&data),
        t_install.elapsed()
    );
    assert_eq!(&data[..], b"latex-v2");

    // §2 also leases the *name-to-file binding*: "In order to support a
    // repeated open, the cache must also hold the name-to-file binding...
    // Similarly, modification of this information, such as renaming the
    // file, would constitute a write."
    let home = sys.dir("/home/cary").unwrap();
    let opened = ws.open(home, "paper.tex").unwrap();
    println!(
        "[{:>6.1?}] open(paper.tex) resolved to {:?}",
        t0.elapsed(),
        opened
    );
    // Repeated opens hit the cached bindings under the name lease.
    for _ in 0..3 {
        assert_eq!(ws.open(home, "paper.tex").unwrap(), opened);
    }
    sys.rename(home, "paper.tex", "sosp89.tex");
    std::thread::sleep(Duration::from_millis(300));
    assert!(ws.open(home, "paper.tex").unwrap().is_none());
    assert_eq!(ws.open(home, "sosp89.tex").unwrap(), opened);
    println!(
        "[{:>6.1?}] renamed to sosp89.tex — the name lease was recalled first",
        t0.elapsed()
    );

    let stats = sys.server_stats().unwrap();
    println!(
        "server: {} grants, {} installed multicasts, {} writes committed",
        stats.counters.grants, stats.counters.installed_multicasts, stats.writes_committed
    );
    sys.shutdown();
}
