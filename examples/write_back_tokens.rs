//! The non-write-through extension (§2/§6): exclusive write tokens.
//!
//! "We limit ourselves here to write-through caches [...] extending the
//! mechanism to support non-write-through caches is straightforward." This
//! demo runs the same write-heavy workload through both systems and shows
//! the trade the paper describes: buffered writes cost nothing and collapse
//! server traffic, but a crash loses the unwritten tail — which
//! write-through never does.
//!
//! Run with: `cargo run --release --example write_back_tokens`

use leases::clock::{Dur, Time};
use leases::faults::check_history;
use leases::vsys::{run_trace, CrashEvent, HistoryEvent, NodeSel, SystemConfig, TermSpec};
use leases::wb::{run_wb_with_history, WbConfig};
use leases::workload::PoissonWorkload;

fn main() {
    let trace = PoissonWorkload {
        n: 1,
        r: 0.2,
        w: 4.0,
        s: 1,
        duration: Dur::from_secs(200),
        seed: 7,
    }
    .generate();
    println!("workload: one client, 4 writes/second for 200 s\n");

    let wt = run_trace(
        &SystemConfig {
            term: TermSpec::Fixed(Dur::from_secs(10)),
            warmup: Dur::from_secs(20),
            ..SystemConfig::default()
        },
        &trace,
    );
    let (wb, h) = run_wb_with_history(
        &WbConfig {
            warmup: Dur::from_secs(20),
            flush_interval: Dur::from_secs(5),
            ..WbConfig::default()
        },
        &trace,
    );
    check_history(&h.borrow()).expect("write-back run is single-copy consistent");

    println!("                         write-through      write-back tokens");
    println!(
        "server messages          {:>13}      {:>17}",
        wt.consistency_msgs + wt.data_msgs,
        wb.consistency_msgs + wb.data_msgs
    );
    println!(
        "mean write delay         {:>10.3} ms      {:>14.4} ms",
        wt.write_delay.mean * 1e3,
        wb.write_delay.mean * 1e3
    );

    // Now the failure-semantics side: crash the writer mid-run.
    let cfg = WbConfig {
        flush_interval: Dur::from_secs(5),
        term: Dur::from_secs(60),
        crashes: vec![CrashEvent {
            at: Time::from_secs(100),
            node: NodeSel::Client(0),
            recover_at: Some(Time::from_secs(105)),
        }],
        ..WbConfig::default()
    };
    let (_, h) = run_wb_with_history(&cfg, &trace);
    let hist = h.borrow();
    check_history(&hist).expect("even the crash run is single-copy for surviving data");
    let lost = hist
        .events
        .iter()
        .filter_map(|e| match e {
            HistoryEvent::Discard {
                last_durable,
                last_lost,
                ..
            } => Some(last_lost.0 - last_durable.0),
            _ => None,
        })
        .sum::<u64>();
    println!("\nwith a crash at t = 100 s: {lost} buffered writes were lost forever");
    println!("(write-through would have lost zero — \"no write that has been made");
    println!(" visible to any client can be lost\", §2. That is the trade.)");
}
