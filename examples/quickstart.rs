//! Quickstart: a lease-consistent distributed file cache in ~30 lines.
//!
//! Run with: `cargo run --example quickstart`

use leases::clock::Dur;
use leases::rt::RtSystem;

fn main() {
    // One server, two client caches, real threads, real clocks.
    let sys = RtSystem::builder()
        .term(Dur::from_millis(500)) // the lease term
        .file("/doc/report.tex", b"\\documentclass{article}...".as_ref())
        .clients(2)
        .start();

    let report = sys.lookup("/doc/report.tex").unwrap();
    let (alice, bob) = (sys.client(0), sys.client(1));

    // Alice reads twice: the first fetches, the second is a local hit
    // under the lease — no server contact at all.
    let (_, _, from_cache) = alice.read_detailed(report).unwrap();
    println!("alice read #1: from_cache = {from_cache}");
    let (_, _, from_cache) = alice.read_detailed(report).unwrap();
    println!("alice read #2: from_cache = {from_cache}");

    // Bob writes. The server first obtains Alice's approval (she holds a
    // lease), which invalidates her copy; the write then commits.
    let v = bob
        .write(report, b"\\documentclass{book}...".as_ref())
        .unwrap();
    println!("bob wrote version {v}");

    // Alice's next read revalidates and sees Bob's data: single-copy
    // semantics, with caching.
    let data = alice.read(report).unwrap();
    println!("alice now sees: {}", String::from_utf8_lossy(&data[..22]));
    assert!(data.starts_with(b"\\documentclass{book}"));

    let stats = alice.stats().unwrap();
    println!(
        "alice's cache: {} hits, {} invalidations, {} approvals honoured",
        stats.hits, stats.invalidations, stats.approvals
    );
    sys.shutdown();
    println!("done: consistent caching with no lock manager and no cache-state recovery");
}
