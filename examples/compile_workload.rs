//! The paper's core experiment as a demo: replay the V compile trace
//! through the simulated file system at several lease terms and watch the
//! consistency traffic collapse.
//!
//! Run with: `cargo run --release --example compile_workload`

use leases::clock::Dur;
use leases::vsys::{run_trace, SystemConfig, TermSpec};
use leases::workload::{TraceStats, VTrace};

fn main() {
    let trace = VTrace::calibrated(1989).generate();
    let stats = TraceStats::from_trace(&trace);
    println!("workload: recompiling the V file server (synthetic reconstruction)");
    println!(
        "  {} reads, {} writes over {:.0} s (R = {:.3}/s, {}% installed)\n",
        stats.reads,
        stats.writes,
        stats.duration_secs,
        stats.read_rate,
        (stats.installed_read_fraction * 100.0) as u32
    );

    println!(
        "{:>9}  {:>12}  {:>9}  {:>11}",
        "term", "cons. msgs", "hit rate", "delay (ms)"
    );
    for term_s in [0u64, 1, 2, 5, 10, 30, 120] {
        let cfg = SystemConfig {
            term: TermSpec::Fixed(Dur::from_secs(term_s)),
            warmup: Dur::from_secs(60),
            ..SystemConfig::default()
        };
        let r = run_trace(&cfg, &trace);
        println!(
            "{:>8}s  {:>12}  {:>9.3}  {:>11.3}",
            term_s,
            r.consistency_msgs,
            r.hit_rate(),
            r.mean_delay_ms()
        );
    }
    println!();
    println!("the knee is at a few seconds — the paper's conclusion: \"a lease term of");
    println!("10 seconds results in a server load within 5 percent of that achievable");
    println!("with infinite term\", while keeping every fault-delay bounded by 10 s.");
}
