//! Section 3.3: leases over a wide-area network.
//!
//! "Larger propagation delay between clients and servers means that the
//! impact of lease extensions and invalidations on response time is
//! greater." This example runs the same compile workload over the paper's
//! 100 ms round-trip network and shows how the term choice shifts.
//!
//! Run with: `cargo run --release --example wide_area`

use leases::analytic::Params;
use leases::clock::Dur;
use leases::net::NetParams;
use leases::vsys::{run_trace, SystemConfig, TermSpec};
use leases::workload::VTrace;

fn main() {
    let trace = VTrace::calibrated(42).generate();
    println!("same workload, two networks:\n");
    println!(
        "{:>9}  {:>16}  {:>16}",
        "term", "LAN delay (ms)", "WAN delay (ms)"
    );
    for term_s in [0u64, 2, 10, 30, 60] {
        let run = |net: NetParams| {
            let cfg = SystemConfig {
                term: TermSpec::Fixed(Dur::from_secs(term_s)),
                net,
                warmup: Dur::from_secs(60),
                ..SystemConfig::default()
            };
            run_trace(&cfg, &trace).mean_delay_ms()
        };
        println!(
            "{:>8}s  {:>16.2}  {:>16.2}",
            term_s,
            run(NetParams::v_lan()),
            run(NetParams::wan_100ms())
        );
    }

    println!();
    let wan = Params::v_system_wan();
    println!("the model agrees (degradation of response vs an infinite term,");
    println!("baseline response 99.5 ms):");
    for t in [10.0, 30.0, 60.0] {
        println!(
            "  {:>4.0} s term -> {:>5.1}%",
            t,
            wan.response_degradation(t, 0.0995) * 100.0
        );
    }
    println!();
    println!("paper: \"with a significant increase in propagation delay, slightly longer");
    println!("lease terms may be appropriate, but terms in the 10-30 second range still");
    println!("appear to be adequate.\"");
}
