//! In-tree shim for `bytes` (the build environment is offline).
//!
//! [`Bytes`] is a cheaply-clonable immutable byte buffer. The real crate
//! avoids copying via refcounted slices of a shared allocation; this shim
//! keeps the same API surface the workspace uses (`new`, `from_static`,
//! `From<Vec<u8>>`, deref to `[u8]`) over an `Arc<[u8]>`, which preserves
//! the O(1)-clone property that the lease runtime relies on when fanning a
//! grant's data out to many clients.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Creates `Bytes` from a static slice (copied once here; the real
    /// crate borrows, but callers only rely on the value semantics).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes(Arc::from(bytes))
    }

    /// Creates `Bytes` by copying a slice (one allocation, as in the
    /// real crate).
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes(Arc::from(bytes))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::from(s.as_bytes())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Bytes {
        Bytes::from(&v[..])
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.0[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bytes {
    fn to_value(&self) -> serde::Value {
        serde::Value::Seq(
            self.0
                .iter()
                .map(|&b| serde::Value::U64(b as u64))
                .collect(),
        )
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Bytes {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        <Vec<u8> as serde::Deserialize>::from_value(v).map(Bytes::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.clone(), b);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(vec![1, 2]).to_vec(), vec![1, 2]);
    }
}
