//! In-tree shim for `proptest` (the build environment is offline).
//!
//! Provides the subset the workspace's property tests use: the `proptest!`
//! macro (with `#![proptest_config(...)]`), `Strategy` + `prop_map`,
//! integer/float range strategies, `any::<T>()`, `Just`, `prop_oneof!`,
//! `collection::vec`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from the real crate: cases are generated from a fixed seed
//! derived from the test name (fully deterministic across runs), and there
//! is **no shrinking** — a failure reports the raw inputs of the failing
//! case instead of a minimized one.

use std::ops::Range;

pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// A `prop_assert*` failed: the property is violated.
        Fail(String),
        /// A `prop_assume!` rejected the inputs: skip, don't fail.
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (assumed-away) case.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result type each generated test body returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration; only `cases` is meaningful in this shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for API compatibility; the shim does not shrink.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 1024,
            }
        }
    }

    /// Deterministic per-test RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test name and case index so every run of the
        /// suite explores the same cases.
        pub fn for_case(name: &str, case: u64) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternatives (built by `prop_oneof!`).
    pub struct Union<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }
}

use strategy::Strategy;
use test_runner::TestRng;

// ------------------------------------------------------ range strategies --

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = ((self.end as i128) - (self.start as i128)) as u128;
                let off = (rng.next_u64() as u128) % width;
                ((self.start as i128) + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = ((hi as i128) - (lo as i128)) as u128 + 1;
                let off = (rng.next_u64() as u128) % width;
                ((lo as i128) + off as i128) as $t
            }
        }

        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ------------------------------------------------------------------ any --

/// Types with a whole-domain default strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The default strategy for `T`: any representable value.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// --------------------------------------------------------------- tuples --

macro_rules! impl_tuple_strategy {
    ($($n:tt $s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(0 A);
impl_tuple_strategy!(0 A, 1 B);
impl_tuple_strategy!(0 A, 1 B, 2 C);
impl_tuple_strategy!(0 A, 1 B, 2 C, 3 D);
impl_tuple_strategy!(0 A, 1 B, 2 C, 3 D, 4 E);
impl_tuple_strategy!(0 A, 1 B, 2 C, 3 D, 4 E, 5 F);

// ----------------------------------------------------------- collection --

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`; `None` about a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps `element`'s values in `Some`, mixing in `None`s.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy { inner: element }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The usual imports for writing property tests.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---------------------------------------------------------------- macros --

/// Declares property tests. Each function runs `cases` times with fresh
/// deterministic inputs; `prop_assert*` failures report the case's inputs.
#[macro_export]
macro_rules! proptest {
    (
        @impl [$cfg:expr]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __inputs = [
                        $(format!(
                            "{} = {:?}",
                            stringify!($arg),
                            &$arg
                        )),+
                    ]
                    .join(", ");
                    let __result: $crate::test_runner::TestCaseResult =
                        (|| { $body Ok(()) })();
                    match __result {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "property `{}` failed at case {}: {}\n  inputs: {}",
                                stringify!($name),
                                __case,
                                __msg,
                                __inputs
                            );
                        }
                    }
                }
            }
        )+
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)+
    ) => {
        $crate::proptest!(@impl [$cfg] $($rest)+);
    };
    ($($rest:tt)+) => {
        $crate::proptest!(
            @impl [$crate::test_runner::ProptestConfig::default()]
            $($rest)+
        );
    };
}

/// Uniformly picks one of the listed strategies per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let __alts: Vec<Box<dyn $crate::strategy::Strategy<Value = _>>> =
            vec![$(Box::new($strat)),+];
        $crate::strategy::Union(__alts)
    }};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = &$left;
        let __r = &$right;
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Fails the current case if the two sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Skips the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_maps_compose(
            x in 3u64..10,
            v in crate::collection::vec(any::<u8>(), 1..5),
            pick in prop_oneof![Just(0u32), 1u32..4],
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(pick < 4);
            let doubled = (0u8..4).prop_map(|n| n * 2);
            let mut rng = crate::test_runner::TestRng::for_case("inner", 0);
            let d = crate::strategy::Strategy::generate(&doubled, &mut rng);
            prop_assert_eq!(d % 2, 0);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let mut a = crate::test_runner::TestRng::for_case("t", 1);
        let mut b = crate::test_runner::TestRng::for_case("t", 1);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
