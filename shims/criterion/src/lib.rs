//! In-tree shim for `criterion` (the build environment is offline).
//!
//! API-compatible with the subset the workspace's benches use. Instead of
//! criterion's full statistical machinery it runs each benchmark on a time
//! budget (`LEASE_BENCH_MS` per benchmark, default 300 ms after a short
//! warm-up) and prints mean and min ns/iteration. Good enough to compare
//! implementations on one machine, which is what `EXPERIMENTS.md` records.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How per-iteration setup cost is amortized in [`Bencher::iter_batched`].
/// The shim runs setup once per measured batch regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine state: many iterations per batch are fine.
    SmallInput,
    /// Large routine state: fewer iterations per batch.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id carrying a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying just a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

fn budget() -> Duration {
    // `cargo bench -- --quick` mirrors real criterion's quick mode: a
    // compile-and-run smoke pass with a minimal time budget per benchmark.
    let default = if std::env::args().any(|a| a == "--quick") {
        20
    } else {
        300
    };
    let ms = std::env::var("LEASE_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default);
    Duration::from_millis(ms)
}

/// Collects timing for one benchmark body.
pub struct Bencher {
    /// (total time measured, iterations, best single batch ns/iter)
    samples: Vec<(Duration, u64)>,
}

impl Bencher {
    /// Measures `routine` repeatedly until the time budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let deadline = Instant::now() + budget();
        // Calibrate a batch size aiming at ~1ms per batch.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            self.samples.push((dt, batch));
            if Instant::now() >= deadline {
                break;
            }
            if dt < Duration::from_millis(1) && batch < u64::MAX / 2 {
                batch *= 2;
            }
        }
    }

    /// Like [`Bencher::iter`] but rebuilds input with `setup` outside the
    /// measured region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + budget();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push((t0.elapsed(), 1));
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        let total: Duration = self.samples.iter().map(|(d, _)| *d).sum();
        let iters: u64 = self.samples.iter().map(|(_, n)| *n).sum();
        if iters == 0 {
            println!("{name}: no samples");
            return;
        }
        let mean = total.as_nanos() as f64 / iters as f64;
        let min = self
            .samples
            .iter()
            .map(|(d, n)| d.as_nanos() as f64 / *n as f64)
            .fold(f64::INFINITY, f64::min);
        println!("{name}: mean {mean:.1} ns/iter, min {min:.1} ns/iter ({iters} iters)");
    }
}

/// The benchmark driver handed to every `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b); // warm-up + measurement happen inside iter()
        b.report(&name.into());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group; ids are printed as `group/id`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into()));
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Ends the group (printing happened per-benchmark).
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        std::env::set_var("LEASE_BENCH_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("smoke/iter", |b| b.iter(|| black_box(2u64 + 2)));
        let mut g = c.benchmark_group("smoke");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput);
        });
        g.finish();
    }
}
