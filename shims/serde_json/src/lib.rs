//! In-tree shim for `serde_json` (the build environment is offline).
//!
//! Serializes through the `serde` shim's [`serde::Value`] tree: `to_string`
//! lowers a value and prints JSON; `from_str` parses JSON into a tree and
//! lifts it with `Deserialize`. Output is plain JSON (string escapes for
//! control chars, `\"`, `\\`), so files written here parse anywhere.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// -------------------------------------------------------------- printing --

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                out.push_str("null"); // JSON has no NaN/inf; match serde_json
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_value(out, x, indent, depth + 1);
            }
            if !xs.is_empty() {
                newline(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(m) => {
            out.push('{');
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, x, indent, depth + 1);
            }
            if !m.is_empty() {
                newline(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing --

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if self.bytes[self.pos..].starts_with(w.as_bytes()) {
            self.pos += w.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_word("null") => Ok(Value::Null),
            Some(b't') if self.eat_word("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut xs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(xs));
                }
                loop {
                    xs.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(xs));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut m = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(m));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    m.push((k, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(m));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = vec![(1u32, "a\"b\n".to_string()), (2, "x".to_string())];
        let s = to_string(&v).unwrap();
        let back: Vec<(u32, String)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_misc() {
        assert_eq!(from_str::<f64>("1").unwrap(), 1.0);
        assert_eq!(from_str::<f64>("2.5e1").unwrap(), 25.0);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u8>("1 2").is_err());
    }

    #[test]
    fn pretty_has_indentation() {
        let s = to_string_pretty(&vec![1u8, 2]).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }
}
