//! In-tree shim for `rand` (the build environment is offline).
//!
//! Provides the subset the workspace uses: the `RngCore`/`SeedableRng`/`Rng`
//! traits, `rngs::SmallRng` (xoshiro256++ seeded via SplitMix64, like the
//! real crate's 64-bit `SmallRng`), `gen::<f64>()`, `gen_range`, and
//! `gen_bool`. Determinism matters more than statistical perfection here —
//! the simulator requires seed-stable streams, which this provides.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by this shim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = chunk.len().min(dest.len() - i);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
    /// Fallible [`RngCore::fill_bytes`]; this shim never fails.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (expanded with SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the generator's "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = ((self.end as i128) - (self.start as i128)) as u128;
                let off = (rng.next_u64() as u128) % width;
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = ((hi as i128) - (lo as i128)) as u128 + 1;
                let off = (rng.next_u64() as u128) % width;
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast RNG: xoshiro256++ (what the real crate's 64-bit
    /// `SmallRng` uses), seeded from a `u64` via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::SmallRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(5..10);
            assert!((5..10).contains(&x));
            let y: i32 = r.gen_range(-4..=4);
            assert!((-4..=4).contains(&y));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
