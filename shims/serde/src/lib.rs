//! In-tree shim for `serde` (the build environment is offline).
//!
//! Instead of serde's visitor-based, format-agnostic data model, this shim
//! serializes through a concrete JSON-shaped [`Value`] tree: `Serialize`
//! lowers a type to a `Value`, `Deserialize` lifts it back. That is all the
//! workspace needs (its only format is JSON via the `serde_json` shim), and
//! it keeps the derive macro — see `shims/serde_derive` — small enough to
//! write without `syn`.
//!
//! Conventions match serde's defaults where it matters for round-tripping:
//! structs and struct variants become maps, newtype structs are transparent,
//! unit variants become strings, sequences become arrays, `Option` uses
//! null. `#[serde(skip)]` fields are omitted and rebuilt with `Default`.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing tree every type serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative (or explicitly signed) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A (de)serialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// The value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, or explains why the value does not fit.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn expected(what: &str, got: &Value) -> Error {
    Error(format!("expected {what}, got {got:?}"))
}

// ------------------------------------------------------------ integers --

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    _ => return Err(expected(stringify!($t), v)),
                };
                <$t>::try_from(n).map_err(|_| expected(stringify!($t), v))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => {
                        i64::try_from(*n).map_err(|_| expected(stringify!($t), v))?
                    }
                    _ => return Err(expected(stringify!($t), v)),
                };
                <$t>::try_from(n).map_err(|_| expected(stringify!($t), v))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

// -------------------------------------------------------------- floats --

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // JSON prints `1.0` as `1`, so integers must lift back to floats.
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(expected("f64", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

// ------------------------------------------------------- bool, strings --

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(expected("single-char string", v)),
        }
    }
}

// --------------------------------------------------------- containers --

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(xs) => xs.iter().map(T::from_value).collect(),
            _ => Err(expected("sequence", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($($n:tt $t:ident),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let Value::Seq(xs) = v else {
                    return Err(expected("tuple sequence", v));
                };
                let mut it = xs.iter();
                let out = ($(
                    {
                        let _ = $n;
                        $t::from_value(it.next().ok_or_else(|| Error::msg("tuple too short"))?)?
                    },
                )+);
                if it.next().is_some() {
                    return Err(Error::msg("tuple too long"));
                }
                Ok(out)
            }
        }
    };
}
impl_tuple!(0 A);
impl_tuple!(0 A, 1 B);
impl_tuple!(0 A, 1 B, 2 C);
impl_tuple!(0 A, 1 B, 2 C, 3 D);

impl<K: Serialize + ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(expected("map", v)),
        }
    }
}

impl<K: Serialize + ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(7u64.to_value(), Value::U64(7));
        assert_eq!(u64::from_value(&Value::U64(7)).unwrap(), 7);
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert_eq!(i64::from_value(&Value::U64(5)).unwrap(), 5);
        assert_eq!(f64::from_value(&Value::U64(2)).unwrap(), 2.0);
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3].to_value();
        assert_eq!(Vec::<u32>::from_value(&v).unwrap(), vec![1, 2, 3]);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let t = (1u8, "x".to_string()).to_value();
        assert_eq!(
            <(u8, String)>::from_value(&t).unwrap(),
            (1u8, "x".to_string())
        );
    }
}
