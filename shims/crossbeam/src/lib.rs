//! In-tree shim for `crossbeam` (the build environment is offline).
//!
//! Implements the `channel` module subset the workspace uses: MPMC
//! `unbounded`/`bounded` channels over `Mutex` + `Condvar` (bounded `send`
//! genuinely blocks when full — the lease service's mailbox backpressure
//! depends on that), and a `select!` macro supporting the
//! two-receivers-plus-`default(timeout)` form. Not lock-free like the real
//! crate, but semantically equivalent for these uses.
//!
//! **Shim extension:** `Sender::send_many`/`try_send_many` and
//! `Receiver::recv_many` are batch primitives real crossbeam does not
//! have. The lease service's batched message path needs "many messages,
//! one lock/futex round" semantics; with the real crate those calls would
//! be loops over `send`/`try_recv` (still correct, just without the
//! amortization this Mutex-based shim gets from batching).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    pub use crate::select;

    /// Receiving on an empty channel whose senders are all gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Outcome of [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Sending on a channel whose receivers are all gone (returns the value).
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Outcome of [`Sender::try_send`].
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Bounded channel at capacity (returns the value).
        Full(T),
        /// All receivers dropped (returns the value).
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when an item arrives or the last sender leaves.
        on_item: Condvar,
        /// Signalled when space frees up or the last receiver leaves.
        on_space: Condvar,
    }

    /// The sending half; clonable (MPMC).
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages; `send`
    /// blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            on_item: Condvar::new(),
            on_space: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Blocks until the value is queued (or every receiver is gone).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.chan.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                if inner.cap.is_none_or(|c| inner.queue.len() < c) {
                    inner.queue.push_back(value);
                    self.chan.on_item.notify_one();
                    return Ok(());
                }
                inner = self.chan.on_space.wait(inner).unwrap();
            }
        }

        /// Queues every value in `values`, taking the channel lock once
        /// per run of available space instead of once per value — the
        /// batched-ingress primitive the lease service's `send_batch`
        /// amortizes its per-message cost through. Blocks while the
        /// channel is full, like [`Sender::send`]. On disconnection the
        /// first unsent value comes back in the error; any values already
        /// queued stay queued (receivers may still drain them).
        ///
        /// (Not part of real crossbeam's API; see the shim note below.)
        pub fn send_many<I>(&self, values: I) -> Result<(), SendError<T>>
        where
            I: IntoIterator<Item = T>,
        {
            let mut values = values.into_iter();
            let mut inner = self.chan.inner.lock().unwrap();
            let mut pushed = false;
            loop {
                if inner.receivers == 0 {
                    if pushed {
                        self.chan.on_item.notify_all();
                    }
                    return match values.next() {
                        Some(v) => Err(SendError(v)),
                        None => Ok(()),
                    };
                }
                while inner.cap.is_none_or(|c| inner.queue.len() < c) {
                    match values.next() {
                        Some(v) => {
                            inner.queue.push_back(v);
                            pushed = true;
                        }
                        None => {
                            if pushed {
                                self.chan.on_item.notify_all();
                            }
                            return Ok(());
                        }
                    }
                }
                // Full: wake the receiver(s) for what we queued, then wait
                // for space.
                self.chan.on_item.notify_all();
                pushed = false;
                inner = self.chan.on_space.wait(inner).unwrap();
            }
        }

        /// Queues as many leading values of `values` as fit right now,
        /// under one lock acquisition, draining the accepted prefix from
        /// the `Vec`. Returns how many were accepted; the refused suffix
        /// stays in `values` for the caller's backpressure handling.
        /// `Err(Disconnected)` means no receiver remains (nothing drained).
        pub fn try_send_many(&self, values: &mut Vec<T>) -> Result<usize, TrySendError<()>> {
            let mut inner = self.chan.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(()));
            }
            let room = match inner.cap {
                Some(c) => c.saturating_sub(inner.queue.len()),
                None => values.len(),
            };
            let n = room.min(values.len());
            if n > 0 {
                inner.queue.extend(values.drain(..n));
                self.chan.on_item.notify_all();
            }
            Ok(n)
        }

        /// Queues the value only if there is room right now.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.chan.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if inner.cap.is_some_and(|c| inner.queue.len() >= c) {
                return Err(TrySendError::Full(value));
            }
            inner.queue.push_back(value);
            self.chan.on_item.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.inner.lock().unwrap().senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.chan.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                self.chan.on_item.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives (or every sender is gone).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.chan.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.chan.on_space.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.chan.on_item.wait(inner).unwrap();
            }
        }

        /// Like [`Receiver::recv`], giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.chan.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.chan.on_space.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .chan
                    .on_item
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }

        /// Moves up to `max` already-queued messages into `buf` under one
        /// lock acquisition — the batch-drain primitive shard workers use
        /// so a wakeup costs one lock, not one per message. Returns how
        /// many were moved (0 when the queue is empty; disconnection is
        /// surfaced by the next blocking receive).
        pub fn recv_many(&self, buf: &mut Vec<T>, max: usize) -> usize {
            let mut inner = self.chan.inner.lock().unwrap();
            let n = max.min(inner.queue.len());
            if n > 0 {
                buf.extend(inner.queue.drain(..n));
                self.chan.on_space.notify_all();
            }
            n
        }

        /// Takes a message only if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.chan.inner.lock().unwrap();
            if let Some(v) = inner.queue.pop_front() {
                self.chan.on_space.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.inner.lock().unwrap().receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.chan.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                self.chan.on_space.notify_all();
            }
        }
    }
}

/// A `select!` supporting the one form this workspace uses: two `recv` arms
/// plus `default(timeout)`. Implemented by polling with sub-millisecond
/// sleeps; the decision is made inside an internal loop but the arm bodies
/// run *outside* it, so a `break` in an arm still targets the caller's loop.
#[macro_export]
macro_rules! select {
    (
        recv($r1:expr) -> $m1:ident => $b1:expr,
        recv($r2:expr) -> $m2:ident => $b2:expr,
        default($d:expr) => $bd:expr $(,)?
    ) => {{
        enum __Sel<A, B> {
            R1(A),
            R2(B),
            Default,
        }
        let __deadline = ::std::time::Instant::now() + $d;
        let __choice = loop {
            match $r1.try_recv() {
                Ok(__v) => break __Sel::R1(Ok(__v)),
                Err($crate::channel::TryRecvError::Disconnected) => {
                    break __Sel::R1(Err($crate::channel::RecvError))
                }
                Err($crate::channel::TryRecvError::Empty) => {}
            }
            match $r2.try_recv() {
                Ok(__v) => break __Sel::R2(Ok(__v)),
                Err($crate::channel::TryRecvError::Disconnected) => {
                    break __Sel::R2(Err($crate::channel::RecvError))
                }
                Err($crate::channel::TryRecvError::Empty) => {}
            }
            let __now = ::std::time::Instant::now();
            if __now >= __deadline {
                break __Sel::Default;
            }
            ::std::thread::sleep(::std::cmp::min(
                __deadline - __now,
                ::std::time::Duration::from_micros(500),
            ));
        };
        match __choice {
            __Sel::R1($m1) => $b1,
            __Sel::R2($m2) => $b2,
            __Sel::Default => $bd,
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        let h = std::thread::spawn(move || tx.send(2));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn select_three_ways() {
        let (tx1, rx1) = unbounded::<u8>();
        let (_tx2, rx2) = unbounded::<u8>();
        tx1.send(7).unwrap();
        let got = crate::select! {
            recv(rx1) -> m => m.unwrap(),
            recv(rx2) -> m => m.unwrap(),
            default(Duration::from_millis(5)) => 0,
        };
        assert_eq!(got, 7);
        let got = crate::select! {
            recv(rx1) -> m => m.map(|_| 1).unwrap_or(2),
            recv(rx2) -> m => m.map(|_| 3).unwrap_or(4),
            default(Duration::from_millis(5)) => 0,
        };
        assert_eq!(got, 0);
    }
}
