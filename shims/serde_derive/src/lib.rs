//! In-tree shim for `serde_derive` (the build environment is offline, so
//! `syn`/`quote` are unavailable; the item is parsed by hand from the raw
//! token stream and the impls are emitted as source text).
//!
//! Supported grammar — which is exactly what this workspace uses:
//! non-generic `struct`s (named, tuple, unit) and non-generic `enum`s
//! (unit, tuple, and struct variants). On named struct fields the shim
//! honours `#[serde(skip)]`, `#[serde(default)]` (absent field → `Default`
//! on deserialize), `#[serde(default = "path")]` (absent field → `path()`),
//! and `#[serde(skip_serializing_if = "Option::is_none")]` (the only
//! supported predicate). Anything else panics with a clear message rather
//! than silently generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (see the `serde` shim's `Value` data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- model --

#[derive(Default, Clone)]
struct FieldAttrs {
    /// `#[serde(skip)]`: never serialized, rebuilt with `Default`.
    skip: bool,
    /// `#[serde(default)]`: absent in the input → `Default::default()`.
    default: bool,
    /// `#[serde(default = "path")]`: absent in the input → `path()`.
    default_fn: Option<String>,
    /// `#[serde(skip_serializing_if = "Option::is_none")]`: omitted from
    /// the output map when `None`.
    skip_if_none: bool,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum Body {
    Unit,
    /// Tuple struct/variant: field count and per-field skip flags (unused
    /// for now, but parsed so `#[serde(skip)]` misuse is at least visible).
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    body: Body,
}

enum Item {
    Struct {
        name: String,
        body: Body,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// --------------------------------------------------------------- parser --

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = ident_at(&toks, &mut i).expect("expected `struct` or `enum`");
    let name = ident_at(&toks, &mut i).expect("expected item name");
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }
    match kw.as_str() {
        "struct" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
                other => panic!("unexpected token after `struct {name}`: {other:?}"),
            };
            Item::Struct { name, body }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = toks.get(i) else {
                panic!("expected enum body for `{name}`");
            };
            Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            }
        }
        other => panic!("serde shim derive supports struct/enum, got `{other}`"),
    }
}

/// Advances past attributes (`#[...]`) and a visibility qualifier; returns
/// the recognised `#[serde(...)]` field attributes.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
                    parse_serde_attr(g.stream(), &mut attrs);
                }
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return attrs,
        }
    }
}

/// Folds one `#[serde(...)]` attribute into `attrs`; non-serde attributes
/// (doc comments, `#[allow]`, ...) are ignored. Unknown serde options
/// panic — generating code that silently drops them would corrupt data.
fn parse_serde_attr(attr: TokenStream, attrs: &mut FieldAttrs) {
    let toks: Vec<TokenTree> = attr.into_iter().collect();
    let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) = (toks.first(), toks.get(1))
    else {
        return;
    };
    if id.to_string() != "serde" {
        return;
    }
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut k = 0;
    while k < inner.len() {
        match &inner[k] {
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "skip" => attrs.skip = true,
                "default" => match (inner.get(k + 1), inner.get(k + 2)) {
                    // `default = "path"`: call `path()` when absent. The
                    // literal is a quoted function path, quotes stripped.
                    (Some(TokenTree::Punct(p)), Some(TokenTree::Literal(l)))
                        if p.as_char() == '=' =>
                    {
                        let lit = l.to_string();
                        let path = lit
                            .strip_prefix('"')
                            .and_then(|s| s.strip_suffix('"'))
                            .unwrap_or_else(|| {
                                panic!("serde shim: default = needs a quoted path, got {lit}")
                            })
                            .to_string();
                        attrs.default_fn = Some(path);
                        k += 2;
                    }
                    _ => attrs.default = true,
                },
                "skip_serializing_if" => {
                    let lit = match (inner.get(k + 1), inner.get(k + 2)) {
                        (Some(TokenTree::Punct(p)), Some(TokenTree::Literal(l)))
                            if p.as_char() == '=' =>
                        {
                            l.to_string()
                        }
                        other => panic!(
                            "serde shim: skip_serializing_if needs `= \"predicate\"`, got {other:?}"
                        ),
                    };
                    if lit != "\"Option::is_none\"" {
                        panic!(
                            "serde shim: only skip_serializing_if = \"Option::is_none\" \
                             is supported, got {lit}"
                        );
                    }
                    attrs.skip_if_none = true;
                    k += 2;
                }
                other => panic!("serde shim: unsupported serde field attribute `{other}`"),
            },
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("serde shim: unexpected token in serde attribute: {other:?}"),
        }
        k += 1;
    }
}

fn ident_at(toks: &[TokenTree], i: &mut usize) -> Option<String> {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Some(id.to_string())
        }
        _ => None,
    }
}

/// Skips a type (or any expression) up to a top-level `,`, tracking angle
/// brackets so `HashMap<K, V>` does not split early.
fn skip_to_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = toks.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let attrs = skip_attrs_and_vis(&toks, &mut i);
        let Some(name) = ident_at(&toks, &mut i) else {
            panic!("expected field name, got {:?}", toks.get(i));
        };
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        skip_to_comma(&toks, &mut i);
        i += 1; // the comma (or one past the end)
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_to_comma(&toks, &mut i);
        i += 1;
        n += 1;
    }
    n
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        let Some(name) = ident_at(&toks, &mut i) else {
            panic!("expected variant name, got {:?}", toks.get(i));
        };
        let vbody = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Body::Unit,
        };
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => panic!("expected `,` after variant `{name}`, got {other:?}"),
        }
        variants.push(Variant { name, body: vbody });
    }
    variants
}

// -------------------------------------------------------------- codegen --

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, body } => {
            let body_src = match body {
                Body::Unit => "serde::Value::Null".to_string(),
                Body::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Body::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("serde::Value::Seq(vec![{}])", elems.join(", "))
                }
                Body::Named(fields) => named_to_map(fields, |f| format!("&self.{f}")),
            };
            impl_serialize(name, &body_src)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    Body::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Body::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Seq(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => serde::Value::Map(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Body::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = named_to_map(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => serde::Value::Map(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn named_to_map(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut src = String::from("{ let mut __m: Vec<(String, serde::Value)> = Vec::new();\n");
    for f in fields.iter().filter(|f| !f.attrs.skip) {
        let a = access(&f.name);
        let push = format!(
            "__m.push((\"{}\".to_string(), serde::Serialize::to_value({a})));",
            f.name
        );
        if f.attrs.skip_if_none {
            src.push_str(&format!("if !Option::is_none({a}) {{ {push} }}\n"));
        } else {
            src.push_str(&push);
            src.push('\n');
        }
    }
    src.push_str("serde::Value::Map(__m) }");
    src
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, body } => {
            let body_src = match body {
                Body::Unit => format!("Ok({name})"),
                Body::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
                }
                Body::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| {
                            format!(
                                "serde::Deserialize::from_value(__xs.get({k}).ok_or_else(|| \
                                 serde::Error::msg(\"tuple struct {name} too short\"))?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let serde::Value::Seq(__xs) = __v else {{\n\
                             return Err(serde::Error::msg(\"expected sequence for {name}\"));\n\
                         }};\n\
                         Ok({name}({}))",
                        elems.join(", ")
                    )
                }
                Body::Named(fields) => {
                    format!("Ok({name} {{ {} }})", named_from_map(name, fields, "__v"))
                }
            };
            impl_deserialize(name, &body_src)
        }
        Item::Enum { name, variants } => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    Body::Unit => {
                        str_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"))
                    }
                    Body::Tuple(n) => {
                        let build = if *n == 1 {
                            format!("{name}::{vn}(serde::Deserialize::from_value(__inner)?)")
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!(
                                        "serde::Deserialize::from_value(__xs.get({k}).ok_or_else(|| \
                                         serde::Error::msg(\"variant {vn} too short\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{{ let serde::Value::Seq(__xs) = __inner else {{\n\
                                     return Err(serde::Error::msg(\"expected sequence for {name}::{vn}\"));\n\
                                 }};\n\
                                 {name}::{vn}({}) }}",
                                elems.join(", ")
                            )
                        };
                        map_arms.push_str(&format!("\"{vn}\" => return Ok({build}),\n"));
                    }
                    Body::Named(fields) => {
                        let build = format!(
                            "{name}::{vn} {{ {} }}",
                            named_from_map(&format!("{name}::{vn}"), fields, "__inner")
                        );
                        map_arms.push_str(&format!("\"{vn}\" => return Ok({build}),\n"));
                    }
                }
            }
            let body_src = format!(
                "if let serde::Value::Str(__s) = __v {{\n\
                     match __s.as_str() {{\n\
                         {str_arms}\
                         __other => return Err(serde::Error::msg(format!(\
                             \"unknown variant `{{__other}}` of {name}\"))),\n\
                     }}\n\
                 }}\n\
                 if let serde::Value::Map(__m) = __v {{\n\
                     if __m.len() == 1 {{\n\
                         let (__k, __inner) = &__m[0];\n\
                         match __k.as_str() {{\n\
                             {map_arms}\
                             __other => return Err(serde::Error::msg(format!(\
                                 \"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 Err(serde::Error::msg(\"expected variant string or map for {name}\"))"
            );
            impl_deserialize(name, &body_src)
        }
    }
}

fn named_from_map(ctx: &str, fields: &[Field], src: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if f.attrs.skip {
            out.push_str(&format!("{}: ::core::default::Default::default(),", f.name));
        } else if let Some(path) = &f.attrs.default_fn {
            out.push_str(&format!(
                "{}: match {src}.get(\"{}\") {{\n\
                     Some(__f) => serde::Deserialize::from_value(__f)?,\n\
                     None => {path}(),\n\
                 }},",
                f.name, f.name
            ));
        } else if f.attrs.default || f.attrs.skip_if_none {
            // A field its own serializer may omit must tolerate absence
            // too, or the shim could not round-trip its own output.
            out.push_str(&format!(
                "{}: match {src}.get(\"{}\") {{\n\
                     Some(__f) => serde::Deserialize::from_value(__f)?,\n\
                     None => ::core::default::Default::default(),\n\
                 }},",
                f.name, f.name
            ));
        } else {
            out.push_str(&format!(
                "{}: serde::Deserialize::from_value({src}.get(\"{}\").ok_or_else(|| \
                 serde::Error::msg(\"missing field `{}` in {ctx}\"))?)?,",
                f.name, f.name, f.name
            ));
        }
    }
    out
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
