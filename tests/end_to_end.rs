//! Workspace-level integration tests: the public API exercised across
//! every crate, the way a downstream user would.

use leases::analytic::Params;
use leases::clock::{Dur, Time};
use leases::faults::check_history;
use leases::rt::RtSystem;
use leases::vsys::{run_trace, run_trace_with_history, SystemConfig, TermSpec};
use leases::workload::{PoissonWorkload, TraceStats, VTrace};

#[test]
fn facade_reexports_are_usable() {
    // Model, workload, simulation, and oracle glued through the facade.
    let p = Params::v_system();
    assert!(p.relative_load(10.0) < 0.15);
    let trace = PoissonWorkload::v_rates(2, 1, Dur::from_secs(60), 1).generate();
    let cfg = SystemConfig::default();
    let (_, h) = run_trace_with_history(&cfg, &trace);
    check_history(&h.history.borrow()).expect("consistent");
}

#[test]
fn model_and_simulation_agree_on_the_headline_number() {
    // The paper's headline: a 10 s term removes ~90% of consistency
    // traffic. Check that the simulated system agrees with the closed-form
    // model to within a few points on the Poisson workload it models.
    let trace = PoissonWorkload::v_rates(1, 1, Dur::from_secs(4000), 5).generate();
    let run = |term: Dur| {
        let cfg = SystemConfig {
            term: TermSpec::Fixed(term),
            warmup: Dur::from_secs(120),
            ..SystemConfig::default()
        };
        run_trace(&cfg, &trace).consistency_msgs as f64
    };
    let measured = run(Dur::from_secs(10)) / run(Dur::ZERO);
    let model = Params::v_system().relative_load(10.0);
    assert!(
        (measured - model).abs() < 0.05,
        "simulation {measured:.3} vs model {model:.3}"
    );
}

#[test]
fn trace_knee_is_sharper_than_poisson_knee() {
    // §3.2: "actual file access is burstier than that given by a Poisson
    // distribution. This burstiness implies that short terms should
    // perform even better than our estimates indicate."
    let trace = VTrace::calibrated(8).generate();
    let stats = TraceStats::from_trace(&trace);
    assert!(stats.burstiness > 2.0);
    let run = |term: Dur| {
        let cfg = SystemConfig {
            term: TermSpec::Fixed(term),
            warmup: Dur::from_secs(60),
            ..SystemConfig::default()
        };
        run_trace(&cfg, &trace).consistency_msgs as f64
    };
    let measured_2s = run(Dur::from_secs(2)) / run(Dur::ZERO);
    let model_2s = Params::v_system().relative_load(2.0);
    assert!(
        measured_2s < model_2s - 0.1,
        "trace at 2 s ({measured_2s:.3}) should beat the Poisson model ({model_2s:.3})"
    );
}

#[test]
fn simulated_and_realtime_deployments_share_semantics() {
    // The same protocol core behind both deployments: a write by one
    // client invalidates the other's cache in either world.
    // Simulated:
    use leases::workload::{FileClass, FileSpec, Trace, TraceOp, TraceRecord};
    let trace = Trace::new(
        vec![FileSpec {
            id: 1,
            class: FileClass::Regular,
            path: None,
        }],
        vec![
            TraceRecord {
                at: Time::from_secs(1),
                client: 1,
                op: TraceOp::Read { file: 1 },
            },
            TraceRecord {
                at: Time::from_secs(2),
                client: 0,
                op: TraceOp::Write { file: 1 },
            },
            TraceRecord {
                at: Time::from_secs(3),
                client: 1,
                op: TraceOp::Read { file: 1 },
            },
        ],
    );
    let (_, h) = run_trace_with_history(&SystemConfig::default(), &trace);
    check_history(&h.history.borrow()).expect("sim consistent");

    // Real time:
    let sys = RtSystem::builder()
        .term(Dur::from_millis(400))
        .file("/f", b"v1".as_ref())
        .clients(2)
        .start();
    let f = sys.lookup("/f").unwrap();
    sys.client(1).read(f).unwrap();
    sys.client(0).write(f, b"v2".as_ref()).unwrap();
    let data = sys.client(1).read(f).unwrap();
    assert_eq!(&data[..], b"v2");
    sys.shutdown();
}

#[test]
fn adaptive_terms_beat_fixed_terms_on_mixed_workloads() {
    // A workload with both read-mostly and write-hot files: the adaptive
    // policy should not pay more write delay than a long fixed term, and
    // not more extension traffic than a zero term.
    use leases::workload::{FileClass, FileSpec, Trace, TraceOp, TraceRecord};
    let mut records = Vec::new();
    for s in 1..600u64 {
        // File 1: read-mostly by both clients.
        records.push(TraceRecord {
            at: Time::from_millis(s * 500),
            client: (s % 2) as u32,
            op: TraceOp::Read { file: 1 },
        });
        // File 2: write-hot, ping-ponged between clients.
        if s % 4 == 0 {
            records.push(TraceRecord {
                at: Time::from_millis(s * 500 + 100),
                client: ((s / 4) % 2) as u32,
                op: TraceOp::Write { file: 2 },
            });
            records.push(TraceRecord {
                at: Time::from_millis(s * 500 + 200),
                client: ((s / 4 + 1) % 2) as u32,
                op: TraceOp::Read { file: 2 },
            });
        }
    }
    let trace = Trace::new(
        vec![
            FileSpec {
                id: 1,
                class: FileClass::Regular,
                path: None,
            },
            FileSpec {
                id: 2,
                class: FileClass::Regular,
                path: None,
            },
        ],
        records,
    );
    let run = |term: TermSpec| {
        let cfg = SystemConfig {
            term,
            warmup: Dur::from_secs(30),
            ..SystemConfig::default()
        };
        run_trace(&cfg, &trace)
    };
    let fixed30 = run(TermSpec::Fixed(Dur::from_secs(30)));
    let adaptive = run(TermSpec::Adaptive {
        theta: 0.1,
        min: Dur::from_secs(1),
        max: Dur::from_secs(60),
    });
    assert!(adaptive.write_delay.mean <= fixed30.write_delay.mean + 1e-9);
    assert_eq!(adaptive.op_failures, 0);
}

#[test]
fn zero_term_equals_check_on_every_read() {
    let trace = PoissonWorkload::v_rates(2, 1, Dur::from_secs(120), 9).generate();
    let cfg = SystemConfig {
        term: TermSpec::Fixed(Dur::ZERO),
        ..SystemConfig::default()
    };
    let r = run_trace(&cfg, &trace);
    assert_eq!(r.hits, 0);
    // One request-reply pair per read — except that a read's no-data reply
    // can race the same client's own write (which drops the cache entry as
    // its implicit approval), forcing one refetch pair for that read. Each
    // write can strand at most one reply this way.
    assert!(r.consistency_msgs >= 2 * r.remote_reads);
    assert!(r.consistency_msgs <= 2 * (r.remote_reads + r.writes));
}
