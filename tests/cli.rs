//! Smoke tests of the `leases-sim` command-line tool.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_leases-sim"))
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("leases-sim"));
    assert!(text.contains("sweep"));
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn model_prints_curves() {
    let out = bin().args(["model", "--sharing", "10"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("relative load"));
    assert!(text.contains("alpha = 4.32"));
}

#[test]
fn trace_roundtrips_through_a_file() {
    let dir = std::env::temp_dir().join(format!("leases-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    let out = bin()
        .args([
            "trace",
            "--kind",
            "poisson",
            "--clients",
            "2",
            "--duration",
            "60",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["stats", "--trace", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("rate of reads"));

    let out = bin()
        .args(["run", "--trace", path.to_str().unwrap(), "--term", "5"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("single-copy oracle   : PASS"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_rejects_bad_flags() {
    let out = bin().args(["run", "--term"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--term needs a value"));
}

#[test]
fn sweep_covers_terms_consistently() {
    let out = bin()
        .args([
            "sweep",
            "--kind",
            "poisson",
            "--clients",
            "2",
            "--duration",
            "60",
            "--terms",
            "0,5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.matches("PASS").count(), 2, "{text}");
}

#[test]
fn writeback_mode_runs() {
    let out = bin()
        .args([
            "run",
            "--writeback",
            "--kind",
            "poisson",
            "--clients",
            "2",
            "--duration",
            "60",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));
}
